"""Bench: regenerate Table 6 (model assertions catch human-label errors).

Paper shape: of 469 Scale labels, 32 were classification errors and the
tracker-consistency assertion caught 12.5% of them — a useful minority,
far from zero and far from all (single-frame objects are invisible to a
consistency check).
"""

from conftest import run_registry


def test_table6_human_labels(benchmark):
    result = run_registry(benchmark, "table6", seed=0, n_video_frames=2000, label_stride=10)
    print("\n" + result.format_table())
    assert result.n_labels > 300
    assert 0 < result.n_errors < result.n_labels
    assert 0 < result.n_errors_caught <= result.n_errors
    assert 0.03 <= result.catch_rate <= 0.6
