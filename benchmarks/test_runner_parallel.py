"""Bench: the registry runner's ``--jobs`` trial parallelism on Figure 4.

Figure 4(a) decomposes into 8 independent (strategy, trial) units; with
4 workers the wall clock should be at least halved versus the serial
path, and — because every unit derives its randomness from child seeds,
never from a shared generator — the averaged curves must be
bit-identical regardless of placement.

The speedup assertion needs real cores: with fewer than 4 the equality
half still runs and asserts, and the timing half only prints (a 4-worker
pool cannot be expected to halve wall clock on 1-3 cores).
"""

import os
import time

import pytest


from repro.experiments import run_experiment

#: Full reproduction runs take minutes; excluded from the fast tier via -m "not slow".
pytestmark = pytest.mark.slow

#: Smaller than the headline fig4 bench so serial + parallel fit one bench.
FIG4_BENCH_CONFIG = dict(
    seed=0,
    n_rounds=3,
    budget_per_round=25,
    n_pool=300,
    n_test=100,
    n_trials=2,
)


def test_fig4_jobs4_bit_identical_and_faster(benchmark):
    t0 = time.perf_counter()
    serial = run_experiment("fig4_video", cache=False, jobs=1, **FIG4_BENCH_CONFIG)
    serial_s = time.perf_counter() - t0

    def parallel_run():
        return run_experiment("fig4_video", cache=False, jobs=4, **FIG4_BENCH_CONFIG)

    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    parallel_s = benchmark.stats.stats.total

    assert parallel.result == serial.result, (
        "jobs=4 must reproduce the serial curves bit-identically"
    )

    cores = os.cpu_count() or 1
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    print(f"\nPARALLEL_SPEEDUP serial={serial_s:.1f}s jobs4={parallel_s:.1f}s {speedup:.2f}x ({cores} cores)")
    if cores >= 4:
        assert speedup >= 2.0, f"expected >= 2x speedup with 4 workers, got {speedup:.2f}x"
    else:
        print(f"PARALLEL_SPEEDUP not asserted: {cores} cores < 4")
