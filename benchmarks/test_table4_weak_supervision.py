"""Bench: regenerate Table 4 (weak supervision, no human labels).

Paper shape: weak supervision improves the pretrained model in every
domain (video 34.4→49.9 mAP, AVs 10.6→14.1 mAP, ECG 70.7→72.1%);
magnitudes depend on the substrate, the direction must hold for the
detection domains and be ≥ −1 point for ECG (the paper's own gain is
+1.4 points and within run-to-run noise here).
"""

from conftest import run_registry


def test_table4_weak_supervision(benchmark):
    result = run_registry(benchmark, "table4", seed=0)
    print("\n" + result.format_table())

    video = result.result_for("video analytics")
    assert video.weakly_supervised_metric > video.pretrained_metric

    av = result.result_for("AVs")
    assert av.weakly_supervised_metric > av.pretrained_metric

    ecg = result.result_for("ECG")
    assert ecg.weakly_supervised_metric >= ecg.pretrained_metric - 1.0
