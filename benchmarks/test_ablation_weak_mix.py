"""Ablation bench: the flagged/random mix in video weak supervision.

The paper trains on 1,000 frames — 750 flicker-flagged and 250 random.
Sweeping the flagged fraction shows why: flagged frames carry the
corrections, random frames keep coverage.
"""

from conftest import run_once

from repro.domains.video import (
    bootstrap_detector,
    make_video_task_data,
    run_video_weak_supervision,
)
from repro.experiments.reporting import format_table
import pytest

#: Full reproduction runs take minutes; excluded from the fast tier via -m "not slow".
pytestmark = pytest.mark.slow


def _sweep():
    # Use the exact Table 4 configuration (same derived data seed, same
    # 800-frame pool), where the pretrained detector has real weak-label
    # headroom; bootstrap quality varies strongly across world seeds.
    from repro.utils.rng import as_generator

    table4_video_seed = int(as_generator(0).integers(2**31 - 1))
    data = make_video_task_data(table4_video_seed, n_pool=800, n_test=200)
    detector = bootstrap_detector(data, seed=0)
    rows = []
    total = 800
    for flagged_fraction in (0.0, 0.75, 1.0):
        n_flagged = int(total * flagged_fraction)
        result = run_video_weak_supervision(
            data,
            detector=detector.clone(),
            n_flagged=n_flagged,
            n_random=total - n_flagged,
            fine_tune_epochs=30,
            seed=1,
        )
        rows.append((flagged_fraction, result))
    return rows


def test_weak_mix_ablation(benchmark):
    rows = run_once(benchmark, _sweep)
    print(
        "\n"
        + format_table(
            ["Flagged fraction", "Pretrained mAP%", "Weak mAP%"],
            [
                (f, f"{r.pretrained_metric:.1f}", f"{r.weakly_supervised_metric:.1f}")
                for f, r in rows
            ],
            title="Ablation: video weak-supervision flagged/random mix",
        )
    )
    by_fraction = {f: r for f, r in rows}
    # The paper's 75% flagged mix must not degrade the pretrained model
    # and must be at least as good as an all-random weak set.
    assert (
        by_fraction[0.75].weakly_supervised_metric
        >= by_fraction[0.75].pretrained_metric - 1.0
    )
    assert (
        by_fraction[0.75].weakly_supervised_metric
        >= by_fraction[0.0].weakly_supervised_metric - 1.5
    )
