"""Benchmark helpers.

Every bench runs its experiment exactly once under pytest-benchmark
(``pedantic(rounds=1)``): the experiments are end-to-end reproductions
measured for wall time, not micro-kernels to be re-sampled.
"""


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under the benchmark timer and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def run_registry(benchmark, name, *, jobs=1, **config_fields):
    """Run a registered experiment once under the timer; return its result.

    Goes through :func:`repro.experiments.run_experiment` — the same path
    the ``python -m repro`` CLI uses — with the artifact cache disabled so
    the timer always measures a real run.
    """
    from repro.experiments import run_experiment

    run = benchmark.pedantic(
        run_experiment,
        args=(name,),
        kwargs={"jobs": jobs, "cache": False, **config_fields},
        rounds=1,
        iterations=1,
    )
    return run.result
