"""Benchmark helpers.

Every bench runs its experiment exactly once under pytest-benchmark
(``pedantic(rounds=1)``): the experiments are end-to-end reproductions
measured for wall time, not micro-kernels to be re-sampled.
"""


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under the benchmark timer and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
