"""Bench: regenerate Table 1 (task/model/assertion summary)."""

from conftest import run_registry


def test_table1_summary(benchmark):
    result = run_registry(benchmark, "table1")
    print("\n" + result.format_table())
    assert len(result.rows) == 4
    names = " ".join(r.assertions for r in result.rows)
    for assertion in ("flicker", "appear", "multibox", "agree", "ECG", "news"):
        assert assertion in names
