"""Bench: regenerate Table 1 (task/model/assertion summary)."""

from conftest import run_once

from repro.experiments import run_table1


def test_table1_summary(benchmark):
    result = run_once(benchmark, run_table1)
    print("\n" + result.format_table())
    assert len(result.rows) == 4
    names = " ".join(r.assertions for r in result.rows)
    for assertion in ("flicker", "appear", "multibox", "agree", "ECG", "news"):
        assert assertion in names
