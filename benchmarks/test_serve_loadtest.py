"""Bench: the network serving front-end under closed- and open-loop load.

Runs the same saturation sweep ``python -m repro loadtest`` exposes —
real TCP sockets, concurrent clients, a fresh server per point — on the
TV-news domain (model-free raw units, so the timer sees the serving
stack: framing, admission, batch coalescing, the service fan-out).

Asserted, per point: the no-silent-drops ledger holds exactly
(offered == accepted + rejected; completed + failed == accepted), every
measured latency is finite, and closed-loop throughput grows (>= 1.2x)
from 1 client to 4 — the batching front-end must extract concurrency,
not serialize it away. The open-loop saturation point additionally
proves the bounded queue pushes back explicitly under a deliberately
tiny ``max_pending``.

A second sweep axis covers the sharded fleet: 1-vs-2-shard closed-loop
points where each multi-shard point stands up real worker processes
behind the consistent-hash router and drives it through the identical
wire protocol (``repro loadtest --shards``).

The ``BENCH_SERVE`` lines are machine-readable for the nightly CI job
summary; the committed ``BENCH_serve.json`` at the repo root records the
shards sweep for point-by-point comparison across PRs.
"""

import math

import pytest

from conftest import run_once

from repro.serve import LoadTestConfig, run_loadtest

#: Full reproduction runs take minutes; excluded from the fast tier via -m "not slow".
pytestmark = pytest.mark.slow

CLOSED_CONFIG = LoadTestConfig(
    domain="tvnews",
    client_counts=(1, 4),
    mode="closed",
    duration=2.0,
    warmup=0.5,
)

# Matches the committed BENCH_serve.json sweep (repo root): regenerate
# it with `python -m repro loadtest tvnews --clients 1,4 --shards 1,2
# --duration 3 --warmup 0.5 --out BENCH_serve.json`.
SHARDS_CONFIG = LoadTestConfig(
    domain="tvnews",
    client_counts=(1, 4),
    shard_counts=(1, 2),
    mode="closed",
    duration=3.0,
    warmup=0.5,
)

SATURATION_CONFIG = LoadTestConfig(
    domain="tvnews",
    client_counts=(4,),
    mode="open",
    rate=3000.0,
    duration=1.0,
    warmup=0.0,
    max_pending=8,
    max_delay=0.02,
)


def check_point(point) -> None:
    assert point.ledger_ok, point.as_dict()
    assert point.completed + point.failed == point.accepted
    assert point.failed == 0
    if point.n_samples:
        for value in point.latency_ms.values():
            assert math.isfinite(value) and value > 0


def test_closed_loop_sweep_scales_with_clients(benchmark):
    result = run_once(benchmark, run_loadtest, CLOSED_CONFIG, echo=print)
    one, four = result.points
    for point in result.points:
        check_point(point)
        assert point.n_samples > 0
    # batching must extract concurrency from 4 closed-loop clients
    assert four.items_per_s >= 1.2 * one.items_per_s


def test_shard_sweep_holds_the_ledger_across_the_fleet_stack():
    """The 1-vs-2-shard sweep: 2-shard points stand up real worker
    processes behind the consistent-hash router, driven through the
    identical wire protocol. Per point: the merged fleet ledger must
    balance exactly (a lost unit anywhere in router forwarding would
    show up here), latencies must be finite, and every (shards,
    clients) grid cell must produce samples."""
    result = run_loadtest(SHARDS_CONFIG, echo=print)
    points = {(p.shards, p.clients): p for p in result.points}
    assert set(points) == {(1, 1), (1, 4), (2, 1), (2, 4)}
    for point in result.points:
        check_point(point)
        assert point.n_samples > 0


def test_open_loop_saturation_pushes_back_explicitly():
    result = run_loadtest(SATURATION_CONFIG, echo=print)
    (point,) = result.points
    assert point.ledger_ok, point.as_dict()
    assert point.completed + point.failed == point.accepted
    assert point.rejected > 0  # the bounded queue refused, loudly
    assert point.accepted > 0  # ... while still doing real work
