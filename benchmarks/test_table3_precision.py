"""Bench: regenerate Table 3 (assertion precision on sampled fires).

Paper claim: "model assertions can be written with 88-100% precision
across all domains when only counting errors in the model outputs", and
≥ the output-only precision when identifier errors also count.
"""

from conftest import run_registry


def test_table3_precision(benchmark):
    result = run_registry(benchmark, "table3", seed=0)
    print("\n" + result.format_table())
    for row in result.rows:
        assert row.n_sampled >= 5, f"{row.assertion} produced too few fires"
        # Paper band: 88–100% on model outputs (small slack for sampling).
        assert row.precision_output_only >= 0.80, row.assertion
        if row.precision_id_and_output is not None:
            assert row.precision_id_and_output >= row.precision_output_only - 1e-9
