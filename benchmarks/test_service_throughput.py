"""Bench: multi-stream ``MonitorService`` ingest vs N serial solo runs.

The serving layer's promise is that interleaving N independent streams
through one service costs what N solo runs cost (no cross-stream
interference) while keeping reports bit-identical. Measured on the
TV-news domain (model-free raw units, so the timer sees serving overhead
rather than detector inference):

- **solo**: N separate single-stream services, each ingesting its feed
  end to end (the per-stream baseline);
- **interleaved**: one service, round-robin ``ingest_batch`` with the
  thread fan-out (the deployment path).

Asserted: per-stream reports from the interleaved run equal the solo
runs bit-for-bit, and interleaved throughput stays within 2× of the solo
aggregate (fan-out overhead must not swamp serving). The
``SERVICE_THROUGHPUT`` line is machine-readable for the nightly CI job
summary.
"""

import time

import numpy as np
import pytest

from conftest import run_once

from repro.serve import MonitorService, ServiceConfig

pytestmark = pytest.mark.slow

N_STREAMS = 8
N_RAW_PER_STREAM = 40  # scenes; each expands to several stream items


def build_feeds():
    from repro.domains.registry import get_domain

    domain = get_domain("tvnews")
    feeds = {}
    for k in range(N_STREAMS):
        stream = domain.iter_stream(domain.build_world(seed=k))
        feeds[f"feed-{k}"] = [next(stream) for _ in range(N_RAW_PER_STREAM)]
    return feeds


def run_comparison() -> dict:
    feeds = build_feeds()
    results: dict = {}

    solo_reports = {}
    started = time.perf_counter()
    for stream_id, raws in feeds.items():
        service = MonitorService("tvnews")
        for raw in raws:
            service.ingest(stream_id, raw)
        solo_reports[stream_id] = service.report(stream_id)
    solo_elapsed = time.perf_counter() - started

    service = MonitorService("tvnews", config=ServiceConfig(parallel=True))
    started = time.perf_counter()
    for round_index in range(N_RAW_PER_STREAM):
        service.ingest_batch(
            [(stream_id, feeds[stream_id][round_index]) for stream_id in feeds]
        )
    interleaved_elapsed = time.perf_counter() - started

    n_items = sum(report.n_items for report in solo_reports.values())
    results["n_items"] = n_items
    results["solo"] = n_items / solo_elapsed
    results["interleaved"] = n_items / interleaved_elapsed

    # Correctness: interleaved == solo, bit for bit, on every stream.
    for stream_id, solo in solo_reports.items():
        report = service.report(stream_id)
        assert report.assertion_names == solo.assertion_names
        assert np.array_equal(report.severities, solo.severities)
        assert report.records == solo.records
    return results


def test_service_throughput(benchmark):
    results = run_once(benchmark, run_comparison)
    ratio = results["interleaved"] / results["solo"]
    print(
        "\nSERVICE_THROUGHPUT "
        f"streams={N_STREAMS} raw/stream={N_RAW_PER_STREAM} "
        f"items={results['n_items']} | "
        f"solo={results['solo']:,.0f} items/s | "
        f"interleaved={results['interleaved']:,.0f} items/s "
        f"({ratio:.2f}x solo)"
    )
    # Interleaving must not collapse under fan-out overhead; parallel
    # speedups are hardware-dependent, so only the floor is asserted.
    assert ratio >= 0.5, (
        f"interleaved multi-stream ingest is {ratio:.2f}x the solo baseline "
        "(need ≥ 0.5x)"
    )
