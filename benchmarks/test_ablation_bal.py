"""Ablation bench: BAL design choices (DESIGN.md §5).

Sweeps the ε-greedy exploration floor (the paper fixes 25%), the
severity-rank weighting exponent (1.0 in the paper; 0.0 = uniform within
an assertion), and the fallback baseline, on the fast ECG task.
"""

import numpy as np
from conftest import run_once

from repro.core import BALStrategy, run_active_learning
from repro.domains.ecg import ECGActiveLearningTask, make_ecg_task_data
from repro.experiments.reporting import format_table
import pytest

#: Full reproduction runs take minutes; excluded from the fast tier via -m "not slow".
pytestmark = pytest.mark.slow


def _run_variants(variants, n_trials=3, n_rounds=4, budget=100):
    results = {}
    for label, kwargs in variants:
        finals = []
        for trial in range(n_trials):
            data = make_ecg_task_data(trial, n_train=120, n_pool=1200, n_test=400)
            task = ECGActiveLearningTask(data, fine_tune_epochs=15, seed=trial)
            strategy = BALStrategy(seed=trial, **kwargs)
            run = run_active_learning(
                task, strategy, n_rounds=n_rounds, budget_per_round=budget
            )
            finals.append(run.final_metric)
        results[label] = float(np.mean(finals))
    return results


def test_bal_exploration_fraction_ablation(benchmark):
    variants = [
        ("eps=0.00", dict(exploration_fraction=0.0)),
        ("eps=0.25 (paper)", dict(exploration_fraction=0.25)),
        ("eps=0.50", dict(exploration_fraction=0.5)),
    ]
    results = run_once(benchmark, _run_variants, variants)
    print(
        "\n"
        + format_table(
            ["Variant", "Final accuracy%"],
            [(k, f"{v:.1f}") for k, v in results.items()],
            title="Ablation: BAL exploration fraction (ECG)",
        )
    )
    values = list(results.values())
    assert max(values) - min(values) < 8.0  # robust to the ε choice
    assert all(v > 60.0 for v in values)


def test_bal_rank_power_and_fallback_ablation(benchmark):
    variants = [
        ("rank=1, fb=random (paper)", dict(rank_power=1.0, fallback="random")),
        ("rank=0 (uniform)", dict(rank_power=0.0, fallback="random")),
        ("rank=2 (aggressive)", dict(rank_power=2.0, fallback="random")),
        ("fb=uncertainty", dict(rank_power=1.0, fallback="uncertainty")),
    ]
    results = run_once(benchmark, _run_variants, variants)
    print(
        "\n"
        + format_table(
            ["Variant", "Final accuracy%"],
            [(k, f"{v:.1f}") for k, v in results.items()],
            title="Ablation: BAL rank weighting and fallback (ECG)",
        )
    )
    assert all(v > 60.0 for v in results.values())
