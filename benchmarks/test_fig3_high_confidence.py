"""Bench: regenerate Figure 3 (assertions find high-confidence errors).

Paper claim: the top-ranked errors caught by the video assertions sit in
high confidence percentiles (up to the 94th), so confidence-based
monitoring would not flag them. Flicker error confidence is the mean of
the surrounding boxes, per the paper.
"""

from conftest import run_registry


def test_fig3_high_confidence_errors(benchmark):
    result = run_registry(benchmark, "fig3", seed=0, n_pool=800)
    print("\n" + result.format_table())
    assert result.n_boxes > 0
    # The flicker assertion's top error must be high-confidence.
    assert result.top_percentile("flicker") >= 80.0
    # At least one other assertion also surfaces above-median-confidence errors.
    others = max(result.top_percentile("appear"), result.top_percentile("multibox"))
    assert others >= 50.0
