"""Bench: streaming engine throughput vs the legacy per-item path.

Setup mirrors the acceptance bar for the incremental engine: 8
registered assertions (4 per-item functions, 2 windowed functions, one
attribute-consistency and one temporal-consistency assertion sharing a
spec) at ``window_size=64``. Three paths are timed over the same
synthetic stream:

- **legacy**: ``OMG(engine="legacy").observe`` — re-evaluates every
  assertion over the trailing window per item (the pre-streaming
  runtime);
- **streaming**: ``OMG().observe`` — stateful evaluators, O(assertions)
  amortized per item;
- **batch**: ``OMG().observe_batch`` in chunks of 256.

Asserted: streaming is ≥ 5× legacy items/sec, batch ≥ streaming-single
within tolerance, and all three paths produce identical severity
matrices. The ``STREAMING_THROUGHPUT`` line is machine-readable for the
nightly CI job summary.
"""

import time

import numpy as np
import pytest

from conftest import run_once

from repro.core.assertion import FunctionAssertion
from repro.core.consistency import ConsistencySpec, generate_assertions
from repro.core.database import AssertionDatabase
from repro.core.runtime import OMG
from repro.core.types import make_stream

#: Not long-running, but the ≥5× assertion is wall-clock-sensitive: keep
#: it out of the fast per-push CI tier; the nightly job runs it explicitly.
pytestmark = pytest.mark.slow

N_ITEMS = 3000
WINDOW_SIZE = 64
CHUNK = 256
MIN_SPEEDUP = 5.0


def build_database() -> AssertionDatabase:
    """The 8-assertion mix from the acceptance criteria."""
    database = AssertionDatabase()
    for j in range(4):
        database.add(
            FunctionAssertion(lambda inp, outs, j=j: float(len(outs) > 1 + j), f"count_gt_{j + 1}")
        )
    database.add(
        FunctionAssertion(
            lambda ins, outs: float(sum(len(o) for o in outs) > 6), "busy_w3", window=3
        )
    )
    database.add(
        FunctionAssertion(
            lambda ins, outs: float(len(outs) == 8 and len(outs[0]) == len(outs[-1])),
            "echo_w8",
            window=8,
        )
    )
    spec = ConsistencySpec(
        id_fn=lambda o: o.get("id"),
        attrs_fn=lambda o: {"color": o["color"]},
        temporal_threshold=2.5,
        name="track",
    )
    for assertion in generate_assertions(spec, attr_keys=["color"], temporal_modes=["both"]):
        database.add(assertion)
    return database


def build_stream():
    rng = np.random.default_rng(0)
    outputs, timestamps = [], []
    t = 0.0
    for _ in range(N_ITEMS):
        t += float(rng.uniform(0.5, 2.0))
        timestamps.append(t)
        outputs.append(
            [
                {"id": int(rng.integers(0, 6)), "color": str(rng.choice(["r", "g", "b"]))}
                for _ in range(int(rng.integers(0, 4)))
            ]
        )
    return outputs, timestamps


def _throughput(elapsed: float) -> float:
    return N_ITEMS / elapsed


def run_comparison() -> dict:
    outputs, timestamps = build_stream()
    items = make_stream(outputs, timestamps=timestamps)
    results: dict = {}

    legacy = OMG(build_database(), window_size=WINDOW_SIZE, engine="legacy")
    started = time.perf_counter()
    for item in items:
        legacy.observe(None, list(item.outputs), timestamp=item.timestamp)
    results["legacy"] = _throughput(time.perf_counter() - started)

    streaming = OMG(build_database(), window_size=WINDOW_SIZE)
    started = time.perf_counter()
    for item in items:
        streaming.observe(None, list(item.outputs), timestamp=item.timestamp)
    results["streaming"] = _throughput(time.perf_counter() - started)

    batched = OMG(build_database(), window_size=WINDOW_SIZE)
    started = time.perf_counter()
    for pos in range(0, N_ITEMS, CHUNK):
        batched.observe_batch(
            None, outputs[pos : pos + CHUNK], timestamps=timestamps[pos : pos + CHUNK]
        )
    results["batch"] = _throughput(time.perf_counter() - started)

    # Correctness cross-check: both online paths agree with each other
    # and with the offline monitor on every column.
    offline = OMG(build_database(), window_size=WINDOW_SIZE).monitor(items)
    online = streaming.online_report()
    assert np.array_equal(online.severities, batched.online_report().severities)
    assert np.array_equal(online.severities, offline.severities)
    return results


def test_streaming_throughput(benchmark):
    results = run_once(benchmark, run_comparison)
    speedup = results["streaming"] / results["legacy"]
    batch_speedup = results["batch"] / results["legacy"]
    print(
        "\nSTREAMING_THROUGHPUT "
        f"window={WINDOW_SIZE} assertions=8 items={N_ITEMS} | "
        f"legacy={results['legacy']:,.0f} items/s | "
        f"streaming={results['streaming']:,.0f} items/s ({speedup:.1f}x) | "
        f"batch={results['batch']:,.0f} items/s ({batch_speedup:.1f}x)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"streaming path is only {speedup:.1f}x legacy (need ≥ {MIN_SPEEDUP}x)"
    )
    assert results["batch"] >= 0.8 * results["streaming"]
