"""Bench: regenerate Figure 5 (ECG active learning, single assertion).

Paper claim: "with just a single assertion, model-assertion based active
learning can match uncertainty sampling and outperform random sampling."
"""

from conftest import run_registry


def test_fig5_ecg_active_learning(benchmark):
    result = run_registry(
        benchmark,
        "fig5",
        seed=0,
        n_rounds=5,
        budget_per_round=100,
        n_pool=2000,
        n_test=500,
        n_trials=8,
    )
    print("\n" + result.format_table())
    bal = result.curves["bal"]
    random = result.curves["random"]
    uncertainty = result.curves["uncertainty"]
    # BAL matches uncertainty sampling by the final round …
    assert bal[-1] >= uncertainty[-1] - 1.0
    # … and is competitive with random sampling (paper: outperforms).
    assert bal[-1] >= random[-1] - 1.0
    # everyone learns something
    for curve in result.curves.values():
        assert curve[-1] > result.initial_metric
