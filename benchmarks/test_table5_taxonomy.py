"""Bench: regenerate Table 5 (assertion-class taxonomy)."""

from conftest import run_once

from repro.experiments import run_table5


def test_table5_taxonomy(benchmark):
    result = run_once(benchmark, run_table5)
    print("\n" + result.format_table())
    assert result.n_classes == 4
    assert result.n_subclasses == 9
