"""Bench: regenerate Table 5 (assertion-class taxonomy)."""

from conftest import run_registry


def test_table5_taxonomy(benchmark):
    result = run_registry(benchmark, "table5")
    print("\n" + result.format_table())
    assert result.n_classes == 4
    assert result.n_subclasses == 9
