"""Bench: regenerate Figures 4/9 (active learning, night-street + AV).

Paper shape: all strategies improve substantially over the pretrained
model; BAL is competitive with (within a small band of) the best
baseline by the final round.

Substrate note (see EXPERIMENTS.md): our stand-in detector is a
feature-based model for which any labeled night sample carries most of
the adaptation signal, so the four strategies converge within ~1–2 mAP —
narrower separation than the paper's deep-detector gaps. The structural
claims asserted here are the ones that transfer: large gains over the
pretrained model for every strategy, BAL ending within tolerance of the
best strategy, and monotone-ish improvement across rounds.
"""

from conftest import run_registry
import pytest

#: Full reproduction runs take minutes; excluded from the fast tier via -m "not slow".
pytestmark = pytest.mark.slow


def _check_shape(result, tolerance):
    print("\n" + result.format_table())
    for name, curve in result.curves.items():
        assert len(curve) == 5
        # every strategy improves well beyond the pretrained model
        assert curve[-1] > result.initial_metric + 5.0, name
        # learning curves trend upward (first → last)
        assert curve[-1] >= curve[0] - 2.0, name
    best_final = max(curve[-1] for curve in result.curves.values())
    assert result.final("bal") >= best_final - tolerance
    assert result.final("bal") >= result.curves["random"][-1] - tolerance


def test_fig4_video_active_learning(benchmark):
    result = run_registry(
        benchmark,
        "fig4_video",
        seed=0,
        n_rounds=5,
        budget_per_round=25,
        n_pool=500,
        n_test=150,
        n_trials=2,
    )
    # night-street reproduces the paper's ordering: BAL leads, so the
    # tolerance is tight.
    _check_shape(result, tolerance=2.0)


def test_fig4_av_active_learning(benchmark):
    result = run_registry(
        benchmark,
        "fig4_av",
        seed=0,
        n_rounds=5,
        budget_per_round=25,
        n_bootstrap_scenes=10,
        n_pool_scenes=20,
        n_test_scenes=6,
        n_trials=2,
    )
    # The AV task has high trial variance at this scale (two trials, 120
    # test samples): strategies land within a ±4–5 mAP band.
    _check_shape(result, tolerance=5.0)
