"""Bench: regenerate Table 2 (assertion lines of code).

Paper claim: every assertion's main body ≤ 25 LOC; ≤ 60 LOC including
(double-counted) shared helpers.
"""

from conftest import run_registry


def test_table2_loc(benchmark):
    result = run_registry(benchmark, "table2")
    print("\n" + result.format_table())
    assert result.max_body_loc <= 25
    assert result.max_total_loc <= 60
    assert {r.assertion for r in result.rows} == {
        "news",
        "ECG",
        "flicker",
        "appear",
        "multibox",
        "agree",
    }
