"""Bench: regenerate Table 2 (assertion lines of code).

Paper claim: every assertion's main body ≤ 25 LOC; ≤ 60 LOC including
(double-counted) shared helpers.
"""

from conftest import run_once

from repro.experiments import run_table2


def test_table2_loc(benchmark):
    result = run_once(benchmark, run_table2)
    print("\n" + result.format_table())
    assert result.max_body_loc <= 25
    assert result.max_total_loc <= 60
    assert {r.assertion for r in result.rows} == {
        "news",
        "ECG",
        "flicker",
        "appear",
        "multibox",
        "agree",
    }
