"""Bench: the closed improvement loop — BAL label-efficiency + throughput.

Paper claims exercised end to end (fires from *live* monitored streams,
not offline pools):

- §5.4 / Figure 5: with a fixed label budget, BAL-selected labels reach
  higher held-out accuracy than random selection on ECG;
- §5.4 / Figure 4 trends: on night-street, BAL's labels concentrate on
  assertion-flagged frames, yielding fewer held-out assertion fires per
  item than random at the same budget, while mAP improves over the
  pretrained detector;
- the loop keeps serving while retraining: items/s with retraining
  enabled is reported on the machine-readable ``IMPROVE_LOOP`` line for
  the nightly CI job summary.

Margins are means over seeds: single closed-loop runs are noisy (the
pool is whatever the streams happened to carry), matching the paper's
trial averaging (Appendix C).
"""

import dataclasses
import time

import numpy as np
import pytest

from repro.improve import ImproveConfig, ImprovementLoop

pytestmark = pytest.mark.slow

ECG_SEEDS = (0, 1, 2)
VIDEO_SEEDS = (0, 1, 2)


def run_loop(config, domain_config=None):
    loop = ImprovementLoop(config, domain_config=domain_config)
    started = time.perf_counter()
    result = loop.run()
    elapsed = time.perf_counter() - started
    n_items = sum(r.n_items for r in result.rounds)
    return loop, result, n_items / elapsed


def test_improve_loop_ecg_bal_beats_random(benchmark):
    from repro.domains.ecg.domain import EcgDomainConfig

    base = ImproveConfig(
        domain="ecg",
        n_streams=2,
        items_per_round=40,
        budget=40,
        n_rounds=5,
        fallback="uncertainty",
    )
    domain_config = EcgDomainConfig(n_eval=400)

    finals = {"bal": [], "random": []}
    initials = []
    rates = []

    def battery():
        for policy in finals:
            for seed in ECG_SEEDS:
                config = dataclasses.replace(base, policy=policy, seed=seed)
                _loop, result, rate = run_loop(config, domain_config)
                finals[policy].append(result.final_metric)
                if policy == "bal":
                    initials.append(result.initial_metric)
                    rates.append(rate)

    benchmark.pedantic(battery, rounds=1, iterations=1)

    bal = float(np.mean(finals["bal"]))
    random = float(np.mean(finals["random"]))
    initial = float(np.mean(initials))
    print(
        f"\nIMPROVE_LOOP ecg policy=bal final={bal:.2f} random={random:.2f} "
        f"initial={initial:.2f} items_per_s={np.mean(rates):.0f} "
        f"budget={base.budget} rounds={base.n_rounds} seeds={len(ECG_SEEDS)}"
    )
    # BAL-selected labels beat random selection at the same budget …
    assert bal >= random - 0.5
    # … and the closed loop genuinely learns from its own fires.
    assert bal >= initial + 4.0


def test_improve_loop_video_bal_fires_and_map(benchmark):
    from repro.detection.detector import Detector
    from repro.domains.video.pipeline import VideoPipeline
    from repro.worlds.traffic import TrafficWorld, TrafficWorldConfig

    night = TrafficWorldConfig(profile="night", class_probabilities=(0.70, 0.30))
    eval_images = [
        frame.image for frame in TrafficWorld(night, seed=123456).generate(80)
    ]

    def held_out_fires_per_item(state):
        detector = Detector(seed=0)
        detector.set_state(state)
        report, _ = VideoPipeline().monitor(detector.detect_frames(eval_images))
        return report.total_fires() / report.n_items

    base = ImproveConfig(
        domain="video", n_streams=2, items_per_round=12, budget=10, n_rounds=4
    )
    fires = {"bal": [], "random": []}
    maps = {"bal": [], "random": []}
    initials = []
    rates = []

    def battery():
        for policy in fires:
            for seed in VIDEO_SEEDS:
                config = dataclasses.replace(base, policy=policy, seed=seed)
                loop, result, rate = run_loop(config)
                fires[policy].append(
                    held_out_fires_per_item(loop.registry.latest().state)
                )
                maps[policy].append(result.final_metric)
                if policy == "bal":
                    initials.append(result.initial_metric)
                    rates.append(rate)

    benchmark.pedantic(battery, rounds=1, iterations=1)

    bal_fires = float(np.mean(fires["bal"]))
    random_fires = float(np.mean(fires["random"]))
    bal_map = float(np.mean(maps["bal"]))
    initial_map = float(np.mean(initials))
    print(
        f"\nIMPROVE_LOOP video policy=bal fires_per_item={bal_fires:.3f} "
        f"random={random_fires:.3f} map={bal_map:.1f} initial_map={initial_map:.1f} "
        f"items_per_s={np.mean(rates):.1f} budget={base.budget} "
        f"rounds={base.n_rounds} seeds={len(VIDEO_SEEDS)}"
    )
    # Fewer held-out fires per item than random at the same budget.
    assert bal_fires <= random_fires + 0.05
    # Retraining on fire-selected labels lifts held-out mAP sharply.
    assert bal_map >= initial_map + 8.0
