"""Ablation bench: the temporal threshold T of consistency assertions.

The paper sets T = 30 s for ECG (ESC guidance). Sweeping T shows the
monitoring trade-off: a larger window flags more oscillations (higher
recall of unstable records) while precision stays high because any
oscillation inside a constant-rhythm record is a real error.
"""

import numpy as np
from conftest import run_once

from repro.domains.ecg import bootstrap_ecg_classifier, make_ecg_task_data, record_severities
from repro.experiments.reporting import format_table
import pytest

#: Full reproduction runs take minutes; excluded from the fast tier via -m "not slow".
pytestmark = pytest.mark.slow


def _sweep(thresholds=(10.0, 30.0, 60.0)):
    data = make_ecg_task_data(0, n_train=120, n_pool=800, n_test=100)
    model = bootstrap_ecg_classifier(data, seed=1)
    rows = []
    for t in thresholds:
        severities = record_severities(model, data.pool, temporal_threshold=t)[:, 0]
        flagged = np.flatnonzero(severities > 0)
        errors = sum(
            1
            for i in flagged
            if np.any(model.predict_windows(data.pool[i])[0] != data.pool[i].label)
        )
        precision = errors / len(flagged) if len(flagged) else 1.0
        rows.append((t, len(flagged), precision))
    return rows


def test_temporal_threshold_ablation(benchmark):
    rows = run_once(benchmark, _sweep)
    print(
        "\n"
        + format_table(
            ["T (s)", "Records flagged", "Precision"],
            [(t, n, f"{100 * p:.0f}%") for t, n, p in rows],
            title="Ablation: ECG consistency window T",
        )
    )
    flagged_counts = [n for _, n, _ in rows]
    # Wider windows can only flag more (oscillations are a superset).
    assert flagged_counts == sorted(flagged_counts)
    assert all(p >= 0.95 for _, _, p in rows)
