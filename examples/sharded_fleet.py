"""Sharded monitor fleet: consistent-hash routing + live migration.

One process caps how many monitored streams a
:class:`~repro.serve.MonitorService` can hold; the :mod:`repro.fleet`
package is the step from "a service" to "a fleet". This example runs
the whole stack in-process (two worker shards behind a
:class:`~repro.fleet.FleetRouter` on an ephemeral port — the production
flavor, ``python -m repro fleet tvnews --shards 2``, runs each shard as
its own OS process):

1. a plain :class:`~repro.serve.ServiceClient` dials the *router*
   exactly as it would a single server — the NDJSON wire protocol is
   identical — and streams six tvnews feeds; the consistent-hash ring
   places each feed on a shard deterministically;
2. mid-run, one feed is **live-migrated** between shards: the router
   freezes the feed (buffering its units), snapshots the session at a
   raw-unit boundary on the source shard, restores it on the target,
   flips the routing pin, and flushes the buffer — zero units lost or
   reordered, and the final report is bit-identical to a run that
   never migrated;
3. the merged ``fleet_report`` / ``stats`` views stack every shard's
   rows exactly as one big unsharded service would;
4. a coordinated fleet snapshot (quiesce all shards → one versioned
   payload) is restored onto a *fresh* fleet, which keeps serving.

Run:  python examples/sharded_fleet.py
"""

import asyncio

from repro.fleet import FleetRouter
from repro.serve import MonitorServer, MonitorService, ServiceClient

N_SHARDS = 2
N_FEEDS = 6
UNITS_BEFORE_MIGRATION = 4
UNITS_AFTER_MIGRATION = 4


async def start_fleet():
    """Two in-process worker shards behind a started router."""
    servers = {}
    for index in range(N_SHARDS):
        server = MonitorServer(MonitorService("tvnews"))
        await server.start()
        servers[f"shard-{index}"] = server
    router = FleetRouter(
        "tvnews",
        {name: (server.host, server.port) for name, server in servers.items()},
    )
    await router.start()
    return router, servers


async def stop_fleet(router, servers):
    await router.stop()
    for server in servers.values():
        await server.stop()


async def main() -> None:
    router, servers = await start_fleet()
    print(
        f"Fleet of {N_SHARDS} shards behind {router.host}:{router.port} "
        "(one NDJSON endpoint, same protocol as a single server)"
    )

    domain = MonitorService("tvnews").domain
    streams = {
        f"feed-{k}": domain.iter_stream(domain.build_world(seed=k))
        for k in range(N_FEEDS)
    }
    client = await ServiceClient.connect(router.host, router.port)

    # 1. Interleaved ingest: the ring decides placement per stream.
    for _ in range(UNITS_BEFORE_MIGRATION):
        await client.ingest_batch(
            [(feed, next(stream)) for feed, stream in streams.items()]
        )
    placement = {
        name: server.service.stream_ids() for name, server in servers.items()
    }
    for name, feeds in sorted(placement.items()):
        print(f"  {name}: {', '.join(feeds) or '(empty)'}")

    # 2. Live migration, mid-run, at a raw-unit boundary.
    feed = "feed-0"
    source = router.table.owner(feed)
    target = next(name for name in servers if name != source)
    move = await client.request(
        "migrate", stream_id=feed, to=target, tick=UNITS_BEFORE_MIGRATION
    )
    print(
        f"Migrated {feed}: {move['from']} -> {move['to']} "
        f"at unit {move['n_raw']} (moved={move['moved']})"
    )

    for _ in range(UNITS_AFTER_MIGRATION):
        await client.ingest_batch(
            [(feed, next(stream)) for feed, stream in streams.items()]
        )

    # 3. Merged views: one fleet report, one summed ledger.
    fleet = await client.fleet_report()
    stats = await client.stats()
    print(fleet.format_table())
    total = N_FEEDS * (UNITS_BEFORE_MIGRATION + UNITS_AFTER_MIGRATION)
    assert stats["offered"] == stats["accepted"] == stats["completed"] == total
    print(
        f"Ledger: offered={stats['offered']} completed={stats['completed']} "
        f"failed={stats['failed']} across {len(stats['shards'])} shards"
    )

    # Proof: an unsharded, never-migrated service over the same units
    # produces the identical aggregate.
    direct = MonitorService("tvnews")
    fresh = {
        f"feed-{k}": domain.iter_stream(domain.build_world(seed=k))
        for k in range(N_FEEDS)
    }
    for _ in range(UNITS_BEFORE_MIGRATION + UNITS_AFTER_MIGRATION):
        direct.ingest_batch([(f, next(s)) for f, s in fresh.items()])
    assert (
        fleet.aggregate.total_fires() == direct.fleet_report().aggregate.total_fires()
    )
    print("Bit-identity with the unsharded run: OK")

    # 4. Coordinated snapshot -> fresh fleet -> keep serving.
    payload = await client.snapshot()
    await client.close()
    await stop_fleet(router, servers)

    router, servers = await start_fleet()
    client = await ServiceClient.connect(router.host, router.port)
    restored = await client.restore(payload)
    print(f"Restored {len(restored)} feeds onto a fresh fleet: {restored}")
    await client.ingest_batch(
        [(feed, next(stream)) for feed, stream in streams.items()]
    )
    report = await client.report("feed-0")
    print(
        f"feed-0 keeps serving after restore: {report.n_items} items monitored"
    )
    await client.close()
    await stop_fleet(router, servers)


if __name__ == "__main__":
    asyncio.run(main())
