"""The closed improvement loop: fires feed labels, labels feed models.

The paper's second contribution is using assertion fires to *improve*
models — bandit-driven active learning (§3) and consistency weak
supervision (§4.2). This example runs that lifecycle live on the ECG
domain:

1. two monitored ECG streams flow through a ``MonitorService``; every
   30 s-oscillation fire lands in the ``FireStore`` and scores the
   record that caused it;
2. each round, the BAL bandit spends a small oracle budget on the
   records most likely to improve the model;
3. a ``RetrainWorker`` fine-tunes the classifier on the growing labeled
   set, the result is published to the ``ModelRegistry``, and the
   serving fleet **hot-swaps** to the new version at a raw-unit
   boundary — monitor state (the oscillation evaluator's temporal runs)
   carries over untouched;
4. mid-run, the whole loop (fleet, fire store, bandit posteriors,
   labeled ledger, every model version) is checkpointed to JSON and
   restored into a fresh loop, which finishes the run bit-identically.

Run:  python examples/closed_loop_improvement.py
"""

import json

from repro.improve import ImproveConfig, ImprovementLoop

ROUNDS_BEFORE_SNAPSHOT = 2
ROUNDS_AFTER_SNAPSHOT = 2


def main() -> None:
    config = ImproveConfig(
        domain="ecg",
        policy="bal",
        n_streams=2,
        items_per_round=8,
        budget=8,
        seed=0,
        swap_tick=3,  # adopt new versions mid-stream, three units in
    )
    loop = ImprovementLoop(config)
    print(
        f"Bootstrap model v{loop.adopted_version}: "
        f"{loop.initial_metric:.2f} {loop.adapter.metric_name} held out.\n"
    )

    for _ in range(ROUNDS_BEFORE_SNAPSHOT):
        loop.run_round()

    # Checkpoint the *entire* loop — serving fleet, fire store, bandit
    # posteriors, labeled set, and every model version — as plain JSON.
    payload = json.loads(json.dumps(loop.snapshot()))
    resumed = ImprovementLoop.from_snapshot(payload)
    print(
        f"Checkpointed the loop after {len(loop.rounds)} rounds "
        f"({len(json.dumps(payload)) / 1024:.0f} KiB of JSON: "
        f"{len(loop.fire_store)} fires, {len(loop.queue)} labels, "
        f"{len(loop.registry)} model versions) and restored it.\n"
    )

    # Both loops finish the run; the resumed one never misses a beat.
    for driver in (loop, resumed):
        for _ in range(ROUNDS_AFTER_SNAPSHOT):
            driver.run_round()
        driver.finish()
    original, restored = loop.result(), resumed.result()
    assert json.dumps(original.versions) == json.dumps(restored.versions)
    print("Original and resumed loops agree bit-for-bit after resuming.\n")

    print(original.format_table())
    swaps = sum(1 for r in original.rounds if r.version_end != r.version_start)
    print(
        f"\n{original.metric_name}: {original.initial_metric:.2f} → "
        f"{original.final_metric:.2f} with {original.n_labeled} oracle "
        f"labels; {swaps} hot-swaps happened mid-stream (unit boundary "
        f"{config.swap_tick}) without touching monitor state."
    )


if __name__ == "__main__":
    main()
