"""Active learning with BAL: selecting which data to label (§3).

Runs the paper's data-collection loop on the ECG task: per round, the
model predicts over the unlabeled pool, assertions score every record,
and the strategy picks which records to send for labeling. BAL allocates
budget across assertions by their marginal reduction in fire counts,
with a 25% exploration floor and severity-rank sampling (Algorithm 2).

Run:  python examples/active_learning_loop.py
"""

from repro.core import BALStrategy, RandomStrategy, UncertaintyStrategy, run_active_learning
from repro.domains.ecg import ECGActiveLearningTask, make_ecg_task_data


def main() -> None:
    print("Building the ECG active-learning task (2000-record pool) ...")
    data = make_ecg_task_data(seed=0, n_train=120, n_pool=2000, n_test=500)

    strategies = [
        RandomStrategy(seed=0),
        UncertaintyStrategy(),
        BALStrategy(seed=0, fallback="uncertainty"),
    ]
    print("Running 5 rounds x 100 labels for each strategy ...\n")
    header = f"{'round':>5}  " + "  ".join(f"{s.name:>12}" for s in strategies)
    curves = {}
    for strategy in strategies:
        task = ECGActiveLearningTask(data, fine_tune_epochs=15, seed=0)
        result = run_active_learning(task, strategy, n_rounds=5, budget_per_round=100)
        curves[strategy.name] = [result.initial_metric] + result.metrics

    print(header)
    for r in range(6):
        row = f"{r:>5}  " + "  ".join(
            f"{curves[s.name][r]:>12.1f}" for s in strategies
        )
        print(row)

    print(
        "\nround 0 = pretrained accuracy. BAL samples from assertion-flagged "
        "records, reallocating budget toward assertions whose fire counts "
        "shrink — and falls back to uncertainty sampling when none do."
    )


if __name__ == "__main__":
    main()
