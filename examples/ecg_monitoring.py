"""Medical classification: the 30-second ECG consistency assertion.

Atrial fibrillation calls require at least 30 s of signal (ESC
guidelines), so rhythm predictions that oscillate A→B→A inside a 30 s
window are suspect. The assertion flags oscillating records; weak
supervision relabels their windows to the majority class and fine-tunes
the classifier with no human labels (§2.2, §4.1, §5.5).

Run:  python examples/ecg_monitoring.py
"""

import numpy as np

from repro.domains.ecg import (
    bootstrap_ecg_classifier,
    make_ecg_assertion,
    make_ecg_task_data,
    record_severities,
    run_ecg_weak_supervision,
)
from repro.domains.ecg.task import record_stream
from repro.worlds.ecg import ECG_CLASSES


def main() -> None:
    print("Generating ECG records and training the window classifier ...")
    data = make_ecg_task_data(seed=0, n_train=120, n_pool=1000, n_test=400)
    model = bootstrap_ecg_classifier(data, seed=1)
    print(f"  record-level accuracy: {model.accuracy(data.test):.1f}%")

    print("\nMonitoring pool records with the 30s consistency assertion ...")
    severities = record_severities(model, data.pool)[:, 0]
    flagged = np.flatnonzero(severities > 0)
    print(f"  {len(flagged)} / {len(data.pool)} records show rhythm oscillation")

    # Show one oscillating record.
    assertion = make_ecg_assertion(30.0)
    idx = int(flagged[0])
    record = data.pool[idx]
    classes, _ = model.predict_windows(record)
    sequence = " ".join(ECG_CLASSES[c][:2] for c in classes)
    print(f"\nExample record {record.record_id} (true rhythm: {record.label_name}):")
    print(f"  window predictions: {sequence}")
    items = record_stream(record, classes)
    for violation in assertion.violations(items):
        print(
            f"  -> {violation.kind} violation: a class persisted only "
            f"{violation.duration:.0f}s (< 30s)"
        )

    print("\nWeak supervision: majority-class relabeling of flagged records ...")
    result = run_ecg_weak_supervision(data, model=model, n_weak=800, seed=2)
    print(
        f"  accuracy {result.pretrained_metric:.1f}% -> "
        f"{result.weakly_supervised_metric:.1f}% with {result.n_weak_labels} weak labels"
    )
    print(
        "  (gains here are small and seed-dependent, as in the paper: "
        "70.7% -> 72.1%)"
    )


if __name__ == "__main__":
    main()
