"""Declarative assertion suites, end to end.

1. Author a custom assertion as *pure data* (a spec referencing a named
   predicate) and append it to a domain's built-in suite.
2. Serve a multi-stream fleet compiled from that suite.
3. Hot-reconfigure the running fleet with ``apply_suite`` — the built-in
   assertions keep their fire history while the new one joins cold.
4. Round-trip the suite through a JSON file (what
   ``python -m repro assertions show --json`` and ``--suite`` exchange).

Run with:  PYTHONPATH=src python examples/declarative_assertions.py
"""

import os
import tempfile

from repro.core import (
    PerItemSpec,
    SuiteEntry,
    lint_suite,
    load_suite,
    register_predicate,
    save_suite,
)
from repro.core.seeding import derive_seed
from repro.domains.registry import get_domain
from repro.serve import MonitorService


# A named predicate: specs reference it by name, so the suite itself
# stays serializable data.
@register_predicate("example.crowded")
def crowded(inp, outputs, threshold=1):
    """Severity = faces beyond ``threshold`` in one sample."""
    return float(max(0, len(outputs) - threshold))


def main() -> None:
    domain = get_domain("tvnews")
    builtin = domain.assertion_suite()
    print(f"builtin suite: {builtin.name} v{builtin.version} "
          f"-> {builtin.assertion_names()}")

    grown = builtin.with_entry(
        SuiteEntry(
            spec=PerItemSpec(
                name="crowded",
                predicate="example.crowded",
                params={"threshold": 1},
                description="unusually many faces in one sample",
                taxonomy_class="domain knowledge",
            ),
            tags=("example",),
        )
    )
    assert lint_suite(grown) == []
    print(f"grown suite:   {grown.name} v{grown.version} "
          f"-> {grown.assertion_names()}")

    # A fleet on the *builtin* suite, mid-flight.
    service = MonitorService("tvnews")
    iterators = {
        f"channel-{k}": domain.iter_stream(
            domain.build_world(derive_seed(0, "example", k))
        )
        for k in range(3)
    }
    for _ in range(4):
        service.ingest_batch([(sid, next(it)) for sid, it in iterators.items()])
    print("\nbefore reconfiguration:")
    print(service.fleet_report().format_table())

    # Live reconfiguration at the raw-unit boundary (tick 4): the three
    # news assertions keep their evaluator state and fire history; the
    # new `crowded` column starts cold.
    diffs = service.apply_suite(grown, tick=4)
    first = next(iter(diffs.values()))
    print(f"\napply_suite diff per stream: added={first['added']} "
          f"kept={len(first['kept'])} removed={first['removed']}")
    for _ in range(4):
        service.ingest_batch([(sid, next(it)) for sid, it in iterators.items()])
    print("\nafter reconfiguration:")
    print(service.fleet_report().format_table())

    # Suites are files: what the `assertions` CLI and `--suite` exchange.
    path = os.path.join(tempfile.mkdtemp(prefix="repro-suite-"), "grown.json")
    save_suite(grown, path)
    assert load_suite(path) == grown
    print(f"\nsuite round-tripped through {path}")
    print("serve it from the CLI with:")
    print(f"  python -m repro stream tvnews --suite {path} --items 4")


if __name__ == "__main__":
    main()
