"""Multi-stream serving: one ``MonitorService``, many monitored feeds.

The paper pitches model assertions as one runtime abstraction shared
across deployments (Figure 2); the ROADMAP's north star is serving heavy
traffic. This example puts both together on the TV-news domain (chosen
because its "model" is precomputed — no training, instant startup):

1. four independent news feeds stream scenes into one service,
   interleaved, with the batch ingest fanning streams across threads;
2. assertion fires route to a corrective-action hook tagged with the
   stream they came from;
3. the whole fleet is checkpointed to JSON mid-run, restored into a
   *fresh* service, and both services continue side by side — their
   reports stay bit-identical, which is what makes rolling restarts of
   a monitoring tier safe;
4. the fleet report aggregates per-stream severities into one table.

Run:  python examples/multi_stream_service.py
"""

import json

import numpy as np

from repro.serve import MonitorService, ServiceConfig

N_STREAMS = 4
ROUNDS_BEFORE_SNAPSHOT = 6
ROUNDS_AFTER_SNAPSHOT = 6


def main() -> None:
    service = MonitorService("tvnews", config=ServiceConfig(parallel=True))
    domain = service.domain

    fires = []
    service.on_fire(fires.append)

    # One independently seeded world per feed.
    streams = {
        f"feed-{k}": domain.iter_stream(domain.build_world(seed=k))
        for k in range(N_STREAMS)
    }

    print(f"Interleaving {N_STREAMS} news feeds through one service ...")
    for _ in range(ROUNDS_BEFORE_SNAPSHOT):
        service.ingest_batch(
            [(stream_id, next(stream)) for stream_id, stream in streams.items()]
        )

    # Checkpoint the fleet: plain JSON, restorable bit-exactly.
    payload = json.loads(json.dumps(service.snapshot()))
    restored = MonitorService.from_snapshot(payload)
    print(
        f"Checkpointed {len(service)} sessions "
        f"({len(json.dumps(payload)) / 1024:.0f} KiB of JSON) and restored "
        "them into a fresh service."
    )

    # Both services continue; the restored one never misses a beat.
    for _ in range(ROUNDS_AFTER_SNAPSHOT):
        pairs = [(stream_id, next(stream)) for stream_id, stream in streams.items()]
        service.ingest_batch(pairs)
        restored.ingest_batch(pairs)
    for stream_id in streams:
        assert np.array_equal(
            service.report(stream_id).severities,
            restored.report(stream_id).severities,
        )
    print("Original and restored fleets agree bit-for-bit after resuming.\n")

    print(service.fleet_report().format_table())
    if fires:
        by_stream = {}
        for fire in fires:
            by_stream.setdefault(fire.stream_id, []).append(fire.record)
        noisiest = max(by_stream, key=lambda s: len(by_stream[s]))
        print(
            f"\n{len(fires)} corrective-action callbacks routed with "
            f"provenance; noisiest stream: {noisiest!r} "
            f"({len(by_stream[noisiest])} fires)."
        )


if __name__ == "__main__":
    main()
