"""Quickstart: registering and running model assertions with OMG.

Covers the three entry points from the paper:

1. ``add_assertion`` — arbitrary Python functions as assertions (§2.1);
2. ``add_consistency_assertion`` — the ``Id``/``Attrs``/``T`` API (§4.1);
3. corrections — weak labels proposed for failing outputs (§4.2).

Run:  python examples/quickstart.py
"""

from repro import OMG
from repro.core import harvest_weak_labels
from repro.core.types import make_stream


def main() -> None:
    omg = OMG()

    # ------------------------------------------------------------------
    # 1. A custom assertion: an arbitrary function over (input, outputs).
    #    Severity 0 = abstain; anything positive flags a likely error.
    # ------------------------------------------------------------------
    @omg.assertion
    def too_many_objects(frame, detections):
        """A hallway camera should never see more than three people."""
        return float(max(0, len(detections) - 3))

    # ------------------------------------------------------------------
    # 2. Consistency assertions from the high-level API: outputs that
    #    share an identifier must agree on their attributes, and must not
    #    appear/disappear for intervals shorter than T seconds.
    # ------------------------------------------------------------------
    omg.add_consistency_assertion(
        id_fn=lambda person: person["id"],
        attrs_fn=lambda person: {"badge_color": person["badge_color"]},
        temporal_threshold=3.0,  # seconds
        attr_keys=["badge_color"],
        name="hallway",
    )

    # A stream of model outputs: person 7's badge color flips in the
    # middle sample, and person 9 blips into a single frame.
    frames = [
        [{"id": 7, "badge_color": "blue"}],
        [{"id": 7, "badge_color": "red"}, {"id": 9, "badge_color": "green"}],
        [{"id": 7, "badge_color": "blue"}],
        [{"id": 7, "badge_color": "blue"}] * 5,  # crowd: 5 detections of one id
    ]
    report = omg.monitor_outputs(frames)

    print("Assertions:", report.assertion_names)
    print("Fire counts:", report.fire_counts())
    for record in report.records:
        print(
            f"  item {record.item_index}: {record.assertion_name} "
            f"severity={record.severity:.0f}"
        )

    # ------------------------------------------------------------------
    # 3. Weak labels: the consistency corrections repair the stream —
    #    badge color back to the majority value, the blip removed.
    # ------------------------------------------------------------------
    items = make_stream(frames)
    weak = harvest_weak_labels(omg, items)
    print(f"\nWeak supervision changed {weak.n_changed} item(s):")
    for item in weak.items:
        print(f"  t={item.timestamp:.0f}s -> {list(item.outputs)}")

    # ------------------------------------------------------------------
    # Online monitoring: corrective actions fire as data streams in.
    # ------------------------------------------------------------------
    alerts = []
    omg.on_fire(lambda record: alerts.append(record.assertion_name))
    omg.observe(None, [{"id": 1, "badge_color": "blue"}] * 6)
    print("\nOnline corrective actions triggered by:", alerts)


if __name__ == "__main__":
    main()
