"""Network serving: monitored streams over TCP, end to end in-process.

The ROADMAP's north star is serving heavy traffic; this example runs the
whole network stack — :class:`~repro.serve.MonitorServer` (asyncio,
newline-delimited JSON over TCP, request batching, bounded-queue
backpressure) and :class:`~repro.serve.ServiceClient` — against the
TV-news domain on an ephemeral localhost port:

1. three clients connect and concurrently stream scenes into their own
   feeds; the server coalesces their pipelined requests into service
   batches under a max-delay flush, yet every feed's units apply in
   send order;
2. assertion fires come back on the ingest responses, decoded to the
   same :class:`AssertionRecord` objects a direct ``service.ingest``
   returns (floats bit-exact through the wire);
3. a fleet report and the server's accounting ledger (offered ==
   accepted + rejected — rejections are explicit ``overloaded``
   errors, never silent drops) are fetched over the same connection;
4. the fleet is checkpointed over the wire, the server is torn down,
   and a *fresh* server restores the snapshot and keeps serving —
   the rolling-restart story, now over TCP.

The same server runs standalone via ``python -m repro serve tvnews``,
and ``python -m repro loadtest`` drives it with closed/open-loop load
(see the README's "Network serving & load testing").

Run:  python examples/network_serving.py
"""

import asyncio

from repro.serve import MonitorServer, MonitorService, ServerConfig, ServiceClient

N_CLIENTS = 3
UNITS_BEFORE_SNAPSHOT = 5
UNITS_AFTER_SNAPSHOT = 5


async def drive_feed(client: ServiceClient, stream_id: str, stream, n_units: int):
    """One client's closed loop: send a unit, await fires, repeat."""
    fired = 0
    for _ in range(n_units):
        records = await client.ingest(stream_id, next(stream))
        fired += len(records)
    return fired


async def main() -> None:
    service = MonitorService("tvnews")
    domain = service.domain
    server = MonitorServer(
        service, ServerConfig(port=0, max_batch=16, max_delay=0.005)
    )
    await server.start()
    print(f"Serving tvnews on {server.host}:{server.port} (ephemeral port)")

    # One independently seeded world per feed, one TCP client per feed.
    streams = {
        f"feed-{k}": domain.iter_stream(domain.build_world(seed=k))
        for k in range(N_CLIENTS)
    }
    clients = {
        stream_id: await ServiceClient.connect(server.host, server.port)
        for stream_id in streams
    }

    fired = await asyncio.gather(
        *(
            drive_feed(clients[sid], sid, streams[sid], UNITS_BEFORE_SNAPSHOT)
            for sid in streams
        )
    )
    print(f"Concurrent ingest done; fires per feed: {dict(zip(streams, fired))}")

    reporter = next(iter(clients.values()))
    stats = await reporter.stats()
    print(
        f"Ledger: offered={stats['offered']} accepted={stats['accepted']} "
        f"rejected={stats['rejected']} batches={stats['batches']}"
    )
    assert stats["offered"] == stats["accepted"] + stats["rejected"]

    # Checkpoint the fleet over the wire, then restart the server.
    checkpoint = await reporter.snapshot()
    for client in clients.values():
        await client.close()
    await server.stop()
    print("Server stopped; restoring the fleet into a fresh server ...")

    service2 = MonitorService("tvnews")
    server2 = MonitorServer(service2, ServerConfig(port=0))
    await server2.start()
    client = await ServiceClient.connect(server2.host, server2.port)
    restored = await client.restore(checkpoint)
    print(f"Restored streams: {restored}")

    for sid in streams:
        await drive_feed(client, sid, streams[sid], UNITS_AFTER_SNAPSHOT)
    fleet = await client.fleet_report()
    print(fleet.format_table())

    await client.close()
    await server2.stop()


if __name__ == "__main__":
    asyncio.run(main())
