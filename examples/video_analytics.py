"""Video analytics: the Figure 1 story on the night-street world.

A detector bootstrapped on daytime footage is deployed on night video.
Objects flicker in and out (Figure 1, top row); the consistency API's
correction rule re-imputes the missing boxes by interpolating the
surrounding frames (Figure 1, bottom row). We measure mAP before and
after correction against the simulator's exact ground truth.

Run:  python examples/video_analytics.py
"""

from repro.core import harvest_weak_labels
from repro.domains.registry import get_domain
from repro.domains.video import bootstrap_detector, make_video_task_data
from repro.geometry.box2d import Box2D
from repro.metrics import evaluate_detections


def main() -> None:
    print("Generating the night-street world and pretraining the detector ...")
    data = make_video_task_data(seed=0, n_pool=300, n_test=100)
    detector = bootstrap_detector(data, seed=0)

    pipeline = get_domain("video").build_pipeline()
    frames = data.pool
    detections = detector.detect_frames([f.image for f in frames])

    report, items = pipeline.monitor(detections)
    print("\nRuntime monitoring over", len(items), "frames:")
    for name, count in report.fire_counts().items():
        print(f"  {name:<9} fired on {count} frames")

    # Show one flicker in detail, Figure-1 style.
    violations = pipeline.flicker.violations(items)
    if violations:
        v = violations[0]
        print(
            f"\nExample flicker: track {v.identifier} disappears at frame "
            f"{v.start_pos} for {v.duration:.2f}s and reappears — the object "
            "did not leave; the detector blinked."
        )

    # Figure 1 bottom row: the flicker correction interpolates the missing
    # box from the surrounding frames. Apply just those "add" corrections
    # and measure recall of previously-missed objects.
    print("\nApplying the flicker correction rule (Figure 1, bottom row) ...")
    from repro.core.types import apply_corrections

    adds = [c for c in pipeline.flicker.corrections(items) if c.kind == "add"]
    corrected_items = apply_corrections(items, adds)
    print(f"  {len(adds)} boxes imputed into flicker gaps")

    truths = [f.ground_truth for f in frames]

    def to_boxes(stream):
        return [
            [
                Box2D(o["box"].x1, o["box"].y1, o["box"].x2, o["box"].y2, o["label"], o["score"])
                for o in item.outputs
            ]
            for item in stream
        ]

    before = evaluate_detections(to_boxes(items), truths).mean_ap_percent
    after = evaluate_detections(to_boxes(corrected_items), truths).mean_ap_percent
    print(f"\nmAP on the monitored video: {before:.1f}% -> {after:.1f}% with imputed boxes")

    # The full correction set (adds + removals + class fixes) is what weak
    # supervision retrains on (§5.5).
    weak = harvest_weak_labels(pipeline.omg, items)
    print(f"(full weak-label harvest touches {weak.n_changed} frames; see Table 4)")


if __name__ == "__main__":
    main()
