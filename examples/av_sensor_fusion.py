"""Autonomous vehicles: the LIDAR/camera ``agree`` assertion.

Two independent, imperfect models observe the same scenes — a BEV LIDAR
detector and a camera detector. The ``agree`` assertion projects 3-D
LIDAR detections onto the image plane and flags samples where the two
models disagree; the custom weak-supervision rule imputes camera boxes
from LIDAR where the camera went blind (§2.2, §5.1, §5.5).

Run:  python examples/av_sensor_fusion.py
"""

from repro.domains.av import (
    bootstrap_av_models,
    make_av_task_data,
    run_av_weak_supervision,
)
from repro.domains.registry import get_domain


def main() -> None:
    print("Generating AV scenes (LIDAR + camera at 2 Hz) ...")
    data = make_av_task_data(
        seed=0, n_bootstrap_scenes=10, n_pool_scenes=12, n_test_scenes=5
    )
    camera, lidar = bootstrap_av_models(data, seed=0)

    pipeline = get_domain("av").build_pipeline()
    samples = data.pool_samples[:60]
    camera_dets, lidar_dets = pipeline.run_models(samples, camera, lidar)
    report, items = pipeline.monitor(samples, camera_dets, lidar_dets)

    print(f"\nMonitored {len(items)} samples:")
    for name, count in report.fire_counts().items():
        print(f"  {name:<9} fired on {count} samples")

    # Inspect one disagreement.
    for item in items:
        flagged = pipeline.agree.disagreeing_outputs(item)
        if flagged:
            output = item.outputs[flagged[0]]
            sensor = output["sensor"]
            other = "camera" if sensor == "lidar" else "LIDAR"
            print(
                f"\nExample: sample {item.index} — the {sensor} model reports a "
                f"vehicle the {other} model does not see. At least one of them "
                "is wrong (§2.2)."
            )
            break

    print("\nWeak supervision: imputing camera boxes from 3-D LIDAR detections ...")
    result = run_av_weak_supervision(data, camera=camera, lidar=lidar, seed=1)
    print(
        f"  camera mAP {result.pretrained_metric:.1f}% -> "
        f"{result.weakly_supervised_metric:.1f}% "
        f"({100 * result.relative_improvement:+.0f}% relative), no human labels"
    )


if __name__ == "__main__":
    main()
