"""Streaming deployment: OMG's incremental online engine on the AV world.

The offline :meth:`OMG.monitor` pass (see ``av_sensor_fusion.py``) is
what active learning consumes; a *deployed* monitor instead sees one
model invocation at a time. This example drives the AV pipeline the way
a car would: scenes stream out of the simulator lazily
(:meth:`AVWorld.iter_scenes`), both detectors run per scene, and fused
outputs are fed to the streaming engine scene-by-scene via
:meth:`AVPipeline.observe_batch`. A corrective-action callback fires the
moment an assertion trips — the paper's "shutting down an autopilot"
hook (§1) — and at the end the accumulated online report is checked
against a full offline pass: identical, by the streaming-equivalence
invariant.

Run:  python examples/streaming_monitor.py
"""

import time

import numpy as np

from repro.domains.av import AVPipeline, bootstrap_av_models, make_av_task_data
from repro.worlds.av import AVWorld, AVWorldConfig


def main() -> None:
    print("Bootstrapping the two AV detectors (LIDAR + camera) ...")
    data = make_av_task_data(
        seed=0, n_bootstrap_scenes=10, n_pool_scenes=4, n_test_scenes=2
    )
    camera_model, lidar_model = bootstrap_av_models(data, seed=0)

    config = AVWorldConfig()
    pipeline = AVPipeline(config.camera)

    # Corrective action: a real deployment might disengage the autopilot;
    # we just collect alerts as they stream in.
    alerts = []
    pipeline.omg.on_fire(alerts.append)

    print("Streaming fresh scenes through the online engine ...\n")
    all_samples = []
    n_processed = 0
    started = time.perf_counter()
    for scene in AVWorld(config, seed=7).iter_scenes(12):
        samples = list(scene.samples)
        camera_dets, lidar_dets = pipeline.run_models(samples, camera_model, lidar_model)
        report = pipeline.observe_batch(samples, camera_dets, lidar_dets)
        n_processed += report.n_items
        all_samples.extend(samples)
    elapsed = time.perf_counter() - started

    online = pipeline.omg.online_report()
    print(
        f"Observed {n_processed} samples in {elapsed:.2f}s "
        f"({n_processed / elapsed:,.0f} samples/s, detectors included)"
    )
    for name, count in online.fire_counts().items():
        print(f"  {name:<9} fired on {count} samples")
    if alerts:
        first = alerts[0]
        print(
            f"\nFirst corrective action: sample {first.item_index}, "
            f"{first.assertion_name} severity {first.severity:.0f}"
        )

    # The invariant that makes the streaming engine trustworthy: the
    # online severity matrix equals a full offline monitoring pass.
    camera_dets, lidar_dets = pipeline.run_models(all_samples, camera_model, lidar_model)
    offline, _ = AVPipeline(config.camera).monitor(all_samples, camera_dets, lidar_dets)
    assert np.array_equal(online.severities, offline.severities)
    print("\nOnline report == offline monitor pass: exact match.")


if __name__ == "__main__":
    main()
