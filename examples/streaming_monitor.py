"""Streaming deployment: one AV stream served through ``MonitorService``.

The offline :meth:`OMG.monitor` pass (see ``av_sensor_fusion.py``) is
what active learning consumes; a *deployed* monitor instead sees one
model invocation at a time. This example drives the AV domain the way a
car would, through the unified serving contract: ``get_domain("av")``
builds the world (simulator + both bootstrapped detectors), raw fused
samples stream out of :meth:`Domain.iter_stream`, and
:class:`~repro.serve.MonitorService` ingests them into a keyed session.
A corrective-action callback fires the moment an assertion trips — the
paper's "shutting down an autopilot" hook (§1), now tagged with the
stream it came from — and at the end the accumulated online report is
checked against a full offline pass: identical, by the
streaming-equivalence invariant.

Run:  python examples/streaming_monitor.py
"""

import itertools
import time

import numpy as np

from repro.serve import MonitorService


def main() -> None:
    service = MonitorService("av")
    domain = service.domain

    # Corrective action: a real deployment might disengage the autopilot;
    # we just collect alerts (with stream provenance) as they stream in.
    alerts = []
    service.on_fire(alerts.append)

    print("Bootstrapping the two AV detectors (LIDAR + camera) ...")
    world = domain.build_world(seed=7)

    print("Streaming fresh samples through the serving layer ...\n")
    raws = []
    started = time.perf_counter()
    for raw in itertools.islice(domain.iter_stream(world), 240):
        service.ingest("car-0", raw)
        raws.append(raw)
    elapsed = time.perf_counter() - started

    online = service.report("car-0")
    print(
        f"Observed {online.n_items} samples in {elapsed:.2f}s "
        f"({online.n_items / elapsed:,.0f} samples/s, detectors included)"
    )
    for name, count in online.fire_counts().items():
        print(f"  {name:<9} fired on {count} samples")
    if alerts:
        first = alerts[0]
        print(
            f"\nFirst corrective action: stream {first.stream_id!r}, sample "
            f"{first.record.item_index}, {first.record.assertion_name} "
            f"severity {first.record.severity:.0f}"
        )

    # The invariant that makes the serving layer trustworthy: the online
    # severity matrix equals a full offline monitoring pass.
    pipeline = domain.build_pipeline()
    offline = pipeline.monitor(
        [raw["sample"] for raw in raws],
        [raw["camera"] for raw in raws],
        [raw["lidar"] for raw in raws],
    )
    assert np.array_equal(online.severities, offline.report.severities)
    print("\nOnline report == offline monitor pass: exact match.")


if __name__ == "__main__":
    main()
