"""Tests for BAL (Algorithm 2) and CC-MAB (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bal import BAL
from repro.core.ccmab import CCMAB


def severity_matrix(n=40, d=3, seed=0):
    rng = np.random.default_rng(seed)
    sev = np.zeros((n, d))
    for m in range(d):
        idx = rng.choice(n, size=10, replace=False)
        sev[idx, m] = rng.uniform(0.5, 5.0, size=10)
    return sev


class TestBALRound0:
    def test_selects_only_triggering_points(self):
        sev = severity_matrix()
        bal = BAL(seed=0)
        selection = bal.select(sev, 8)
        assert not selection.used_fallback
        assert np.all(sev[selection.indices].sum(axis=1) > 0)

    def test_budget_respected_and_unique(self):
        sev = severity_matrix()
        selection = BAL(seed=0).select(sev, 8)
        assert len(selection.indices) == 8
        assert len(set(selection.indices.tolist())) == 8

    def test_no_fires_falls_back_to_random(self):
        bal = BAL(seed=0)
        selection = bal.select(np.zeros((20, 2)), 5)
        assert selection.used_fallback
        assert len(selection.indices) == 5

    def test_selectable_mask_respected(self):
        sev = severity_matrix()
        mask = np.zeros(sev.shape[0], dtype=bool)
        mask[:10] = True
        selection = BAL(seed=0).select(sev, 5, selectable=mask)
        assert np.all(selection.indices < 10)


class TestBALGuidedRounds:
    def test_reductions_computed(self):
        sev = severity_matrix()
        bal = BAL(seed=0)
        bal.select(sev, 5)
        sev2 = sev.copy()
        sev2[sev2[:, 0] > 0, 0] = 0.0  # assertion 0 fully fixed
        selection = bal.select(sev2, 5)
        assert selection.reductions[0] == pytest.approx(1.0)

    def test_all_stalled_triggers_fallback(self):
        sev = severity_matrix()
        bal = BAL(seed=0, fallback="random")
        bal.select(sev, 5)
        selection = bal.select(sev, 5)  # identical fires: zero reduction
        assert selection.used_fallback

    def test_improving_assertion_attracts_budget(self):
        rng = np.random.default_rng(1)
        n = 200
        sev = np.zeros((n, 2))
        sev[:80, 0] = 1.0
        sev[80:160, 1] = 1.0
        bal = BAL(seed=0, exploration_fraction=0.0)
        bal.select(sev, 10)
        sev2 = sev.copy()
        sev2[:40, 0] = 0.0  # assertion 0 halved; assertion 1 unchanged
        selection = bal.select(sev2, 40)
        from_a0 = int((sev2[selection.indices, 0] > 0).sum())
        from_a1 = int((sev2[selection.indices, 1] > 0).sum())
        assert not selection.used_fallback
        assert from_a0 > from_a1

    def test_uncertainty_fallback_requires_scores(self):
        bal = BAL(seed=0, fallback="uncertainty")
        with pytest.raises(ValueError):
            bal.select(np.zeros((10, 1)), 3)

    def test_uncertainty_fallback_picks_top(self):
        bal = BAL(seed=0, fallback="uncertainty")
        unc = np.linspace(0, 1, 10)
        selection = bal.select(np.zeros((10, 1)), 3, uncertainty=unc)
        assert sorted(selection.indices.tolist()) == [7, 8, 9]

    def test_assertion_count_change_raises(self):
        bal = BAL(seed=0)
        bal.select(np.zeros((10, 2)), 2)
        with pytest.raises(ValueError):
            bal.select(np.zeros((10, 3)), 2)

    def test_reset(self):
        bal = BAL(seed=0)
        bal.select(severity_matrix(), 5)
        bal.reset()
        assert bal.round_index == 0
        selection = bal.select(severity_matrix(), 5)
        assert selection.reductions.size == 0  # treated as round 0 again


class TestBALProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        budget=st.integers(min_value=1, max_value=15),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_indices_always_valid_and_unique(self, budget, seed):
        sev = severity_matrix(seed=seed)
        selection = BAL(seed=seed).select(sev, budget)
        idx = selection.indices
        assert len(set(idx.tolist())) == len(idx)
        assert np.all((idx >= 0) & (idx < sev.shape[0]))
        assert len(idx) <= budget

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BAL(fallback="bogus")
        with pytest.raises(ValueError):
            BAL(exploration_fraction=1.5)
        with pytest.raises(ValueError):
            BAL(rank_power=-1)
        with pytest.raises(ValueError):
            BAL().select(np.zeros(5), 1)
        with pytest.raises(ValueError):
            BAL().select(np.zeros((5, 1)), -1)

    def test_rank_weighting_prefers_high_severity(self):
        # One assertion, strongly skewed severities: with rank weighting the
        # top-severity points should be picked far more often.
        n = 50
        sev = np.zeros((n, 1))
        sev[:, 0] = np.arange(n, dtype=float) + 1.0
        counts = np.zeros(n)
        for seed in range(40):
            bal = BAL(seed=seed, exploration_fraction=0.0, rank_power=2.0)
            bal.select(sev, 1)  # round 0 (uniform)
            sev2 = sev.copy()
            sev2[0, 0] = 0.0  # tiny reduction so round 1 is guided
            selection = bal.select(sev2, 5)
            counts[selection.indices] += 1
        top_half = counts[n // 2 :].sum()
        bottom_half = counts[: n // 2].sum()
        assert top_half > bottom_half


class TestCCMAB:
    def test_cube_indexing(self):
        bandit = CCMAB(n_dims=2, horizon=100)
        assert bandit.cube_of(np.array([0.0, 0.0])) == (0, 0)
        top = bandit.cube_of(np.array([1.0, 1.0]))
        assert all(b == bandit.n_bins - 1 for b in top)

    def test_explores_then_exploits(self):
        rng = np.random.default_rng(0)
        bandit = CCMAB(n_dims=1, horizon=200, seed=0)

        def reward(ctx):
            return float(ctx[0])  # higher context = higher reward

        chosen_late = []
        for t in range(200):
            contexts = rng.uniform(0, 1, size=(8, 1))
            picks = bandit.select(contexts, 2)
            rewards = np.array([reward(contexts[i]) for i in picks])
            bandit.update(contexts, picks, rewards)
            if t >= 150:
                chosen_late.extend(contexts[picks, 0].tolist())
        # After exploration, CC-MAB should prefer high-context arms.
        assert np.mean(chosen_late) > 0.55

    def test_budget_bounds(self):
        bandit = CCMAB(n_dims=1, horizon=10, seed=0)
        picks = bandit.select(np.zeros((3, 1)), 10)
        assert len(picks) == 3
        assert bandit.select(np.zeros((3, 1)), 0).shape == (0,)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CCMAB(n_dims=0, horizon=10)
        with pytest.raises(ValueError):
            CCMAB(n_dims=1, horizon=0)
        with pytest.raises(ValueError):
            CCMAB(n_dims=1, horizon=10, alpha=0)

    def test_update_shape_mismatch(self):
        bandit = CCMAB(n_dims=1, horizon=10)
        with pytest.raises(ValueError):
            bandit.update(np.zeros((3, 1)), np.array([0, 1]), np.array([1.0]))
