"""Tests for repro.core.types: stream items and correction application."""

import numpy as np
import pytest

from repro.core.types import Correction, StreamItem, apply_corrections, make_stream


class TestStreamItem:
    def test_outputs_normalized_to_tuple(self):
        item = StreamItem(0, 0.0, outputs=[1, 2])
        assert item.outputs == (1, 2)

    def test_with_outputs(self):
        item = StreamItem(3, 1.5, input="x", outputs=(1,))
        new = item.with_outputs([7, 8])
        assert new.outputs == (7, 8)
        assert new.index == 3 and new.timestamp == 1.5 and new.input == "x"


class TestMakeStream:
    def test_default_timestamps_are_indices(self):
        items = make_stream([[1], [2], [3]])
        assert [i.timestamp for i in items] == [0.0, 1.0, 2.0]

    def test_fps(self):
        items = make_stream([[1], [2]], fps=10.0)
        assert items[1].timestamp == pytest.approx(0.1)

    def test_explicit_timestamps(self):
        items = make_stream([[1], [2]], timestamps=[0.0, 5.0])
        assert items[1].timestamp == 5.0

    def test_decreasing_timestamps_raise(self):
        with pytest.raises(ValueError):
            make_stream([[1], [2]], timestamps=[1.0, 0.0])

    def test_both_fps_and_timestamps_raise(self):
        with pytest.raises(ValueError):
            make_stream([[1]], timestamps=[0.0], fps=1.0)

    def test_inputs_length_checked(self):
        with pytest.raises(ValueError):
            make_stream([[1], [2]], inputs=["a"])


class TestCorrection:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            Correction(kind="bogus", item_index=0, assertion_name="a")

    def test_modify_requires_fields(self):
        with pytest.raises(ValueError):
            Correction(kind="modify", item_index=0, assertion_name="a", output_index=0)
        with pytest.raises(ValueError):
            Correction(kind="modify", item_index=0, assertion_name="a", proposed_output=1)

    def test_add_requires_proposed(self):
        with pytest.raises(ValueError):
            Correction(kind="add", item_index=0, assertion_name="a")


class TestApplyCorrections:
    def items(self):
        return make_stream([["a", "b"], ["c"]])

    def test_modify(self):
        fixed = apply_corrections(
            self.items(),
            [Correction("modify", 0, "x", output_index=1, proposed_output="B")],
        )
        assert fixed[0].outputs == ("a", "B")
        assert fixed[1].outputs == ("c",)

    def test_remove(self):
        fixed = apply_corrections(
            self.items(), [Correction("remove", 0, "x", output_index=0)]
        )
        assert fixed[0].outputs == ("b",)

    def test_add(self):
        fixed = apply_corrections(
            self.items(), [Correction("add", 1, "x", proposed_output="d")]
        )
        assert fixed[1].outputs == ("c", "d")

    def test_remove_beats_modify(self):
        fixed = apply_corrections(
            self.items(),
            [
                Correction("modify", 0, "x", output_index=0, proposed_output="A"),
                Correction("remove", 0, "y", output_index=0),
            ],
        )
        assert fixed[0].outputs == ("b",)

    def test_untouched_items_identical(self):
        items = self.items()
        fixed = apply_corrections(items, [])
        assert [f.outputs for f in fixed] == [i.outputs for i in items]

    def test_indices_resolved_against_original(self):
        # Removing output 0 must not shift the index of a modify on output 1.
        fixed = apply_corrections(
            self.items(),
            [
                Correction("remove", 0, "x", output_index=0),
                Correction("modify", 0, "y", output_index=1, proposed_output="B"),
            ],
        )
        assert fixed[0].outputs == ("B",)
