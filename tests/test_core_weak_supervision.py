"""Tests for weak-label harvesting and the taxonomy registry."""

import numpy as np
import pytest

from repro.core.consistency import ConsistencySpec, TemporalConsistencyAssertion
from repro.core.runtime import OMG
from repro.core.taxonomy import (
    ASSERTION_CLASSES,
    TAXONOMY,
    entries_for_class,
    format_taxonomy_table,
)
from repro.core.types import Correction, make_stream
from repro.core.weak_supervision import (
    WeakSupervisionResult,
    harvest_weak_labels,
)


def out(identifier, cls="car"):
    return {"id": identifier, "cls": cls}


def build_omg():
    omg = OMG()
    omg.add_consistency_assertion(
        id_fn=lambda o: o.get("id"),
        attrs_fn=lambda o: {"cls": o["cls"]},
        temporal_threshold=3.0,
        attr_keys=["cls"],
        name="ws",
    )
    return omg


class TestHarvestWeakLabels:
    def test_attribute_corrections_applied(self):
        omg = build_omg()
        items = make_stream([[out(1, "car")], [out(1, "truck")], [out(1, "car")]])
        weak = harvest_weak_labels(omg, items)
        assert weak.n_changed == 1
        assert weak.items[1].outputs[0]["cls"] == "car"
        assert weak.changed_indices.tolist() == [1]

    def test_clean_stream_untouched(self):
        omg = build_omg()
        items = make_stream([[out(1)], [out(1)], [out(1)]])
        weak = harvest_weak_labels(omg, items)
        assert weak.n_changed == 0
        assert weak.corrections == []

    def test_extra_rules_merged(self):
        omg = build_omg()
        items = make_stream([[out(1)], [out(1)], [out(1)]])

        def rule(stream_items):
            return [
                Correction(
                    "add", 0, "custom", proposed_output={"id": 99, "cls": "car"}
                )
            ]

        weak = harvest_weak_labels(omg, items, extra_rules=[rule])
        assert weak.n_changed == 1
        assert len(weak.items[0].outputs) == 2

    def test_corrected_outputs_parallel_to_items(self):
        omg = build_omg()
        items = make_stream([[out(1)], [out(1, "truck")], [out(1)]])
        weak = harvest_weak_labels(omg, items)
        assert len(weak.corrected_outputs()) == len(items)


class TestWeakSupervisionResult:
    def test_relative_improvement(self):
        result = WeakSupervisionResult("video", 34.4, 49.9)
        assert result.relative_improvement == pytest.approx(0.4506, abs=1e-3)
        assert result.absolute_improvement == pytest.approx(15.5)

    def test_zero_baseline(self):
        assert WeakSupervisionResult("x", 0.0, 1.0).relative_improvement == float("inf")
        assert WeakSupervisionResult("x", 0.0, 0.0).relative_improvement == 0.0


class TestTaxonomy:
    def test_four_classes(self):
        assert ASSERTION_CLASSES == (
            "consistency",
            "domain knowledge",
            "perturbation",
            "input validation",
        )

    def test_nine_subclasses(self):
        assert len(TAXONOMY) == 9

    def test_entries_for_class(self):
        subs = [e.sub_class for e in entries_for_class("consistency")]
        assert subs == ["multi-source", "multi-modal", "multi-view"]

    def test_unknown_class_raises(self):
        with pytest.raises(KeyError):
            entries_for_class("bogus")

    def test_format_contains_all_rows(self):
        text = format_taxonomy_table()
        for entry in TAXONOMY:
            assert entry.sub_class in text

    def test_every_entry_has_examples(self):
        assert all(len(e.examples) >= 1 for e in TAXONOMY)
