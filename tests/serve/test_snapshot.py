"""Snapshot/restore: a checkpointed monitor (or a whole service fleet)
resumes bit-identically to an uninterrupted run, through real JSON."""

import json

import numpy as np
import pytest

from repro.domains.registry import get_domain
from repro.serve import (
    MonitorService,
    load_service_snapshot,
    save_service_snapshot,
)
from tests.serve.test_service import (
    SyntheticDomain,
    assert_reports_equal,
    raw_units,
)


def json_round_trip(payload):
    return json.loads(json.dumps(payload))


class TestOMGSnapshot:
    def make_monitor(self):
        return SyntheticDomain().build_monitor()

    def feed(self, monitor, raws, start=0, stop=None):
        for raw in raws[start:stop]:
            monitor.observe(None, raw)

    def test_snapshot_restore_continue_is_bit_identical(self):
        raws = raw_units(7, 60)
        for cut in (0, 1, 17, 59, 60):
            uninterrupted = self.make_monitor()
            self.feed(uninterrupted, raws)

            first = self.make_monitor()
            self.feed(first, raws, stop=cut)
            payload = json_round_trip(first.snapshot())

            resumed = self.make_monitor()
            resumed.restore(payload)
            self.feed(resumed, raws, start=cut)

            a, b = uninterrupted.online_report(), resumed.online_report()
            assert_reports_equal(a, b)
            assert resumed.n_observed == uninterrupted.n_observed
            assert resumed.online_records == uninterrupted.online_records

    def test_restore_validates_window_size(self):
        monitor = self.make_monitor()
        payload = monitor.snapshot()
        payload["window_size"] = 99
        with pytest.raises(ValueError, match="window_size"):
            monitor.restore(payload)

    def test_restore_validates_assertions(self):
        monitor = self.make_monitor()
        payload = monitor.snapshot()
        other = self.make_monitor()
        other.add_assertion(lambda inp, outputs: 0.0, name="extra")
        with pytest.raises(ValueError, match="assertions"):
            other.restore(payload)

    def test_restore_validates_format(self):
        monitor = self.make_monitor()
        payload = monitor.snapshot()
        payload["format"] = 999
        with pytest.raises(ValueError, match="format"):
            monitor.restore(payload)

    def test_legacy_engine_cannot_snapshot(self):
        from repro.core.runtime import OMG

        legacy = OMG(engine="legacy")
        with pytest.raises(RuntimeError):
            legacy.snapshot()
        with pytest.raises(RuntimeError):
            legacy.restore({})

    def test_pre_stream_snapshot_restores_empty_state(self):
        monitor = self.make_monitor()
        payload = json_round_trip(monitor.snapshot())
        resumed = self.make_monitor()
        resumed.restore(payload)
        raws = raw_units(3, 10)
        self.feed(resumed, raws)
        fresh = self.make_monitor()
        self.feed(fresh, raws)
        assert_reports_equal(resumed.online_report(), fresh.online_report())


class TestServiceSnapshot:
    def test_fleet_snapshot_mid_stream(self):
        units = {f"s{k}": raw_units(40 + k, 24) for k in range(3)}

        uninterrupted = MonitorService(SyntheticDomain())
        checkpointed = MonitorService(SyntheticDomain())
        for i in range(12):
            pairs = [(sid, units[sid][i]) for sid in units]
            uninterrupted.ingest_batch(pairs)
            checkpointed.ingest_batch(pairs)

        payload = json_round_trip(checkpointed.snapshot())
        resumed = MonitorService(SyntheticDomain())
        resumed.restore(payload)
        assert resumed.stream_ids() == checkpointed.stream_ids()

        for i in range(12, 24):
            pairs = [(sid, units[sid][i]) for sid in units]
            uninterrupted.ingest_batch(pairs)
            resumed.ingest_batch(pairs)
        for sid in units:
            assert_reports_equal(uninterrupted.report(sid), resumed.report(sid))
        np.testing.assert_array_equal(
            uninterrupted.fleet_report().aggregate.severities,
            resumed.fleet_report().aggregate.severities,
        )

    def test_restore_enforces_the_lru_bound(self):
        from repro.serve import ServiceConfig

        wide = MonitorService(SyntheticDomain())
        raw = raw_units(0, 1)[0]
        for k in range(5):
            wide.ingest(f"s{k}", raw)
        payload = json_round_trip(wide.snapshot())

        narrow = MonitorService(
            SyntheticDomain(), config=ServiceConfig(max_sessions=2)
        )
        narrow.restore(payload)
        assert len(narrow) == 2
        # the most-recently-used sessions survive
        assert narrow.stream_ids() == ["s3", "s4"]

    def test_restore_evicts_replaced_live_sessions_through_hooks(self):
        source = MonitorService(SyntheticDomain())
        source.ingest("persisted", raw_units(0, 1)[0])
        payload = json_round_trip(source.snapshot())

        warm = MonitorService(SyntheticDomain())
        warm.ingest("live-a", raw_units(1, 1)[0])
        warm.ingest("live-b", raw_units(2, 1)[0])
        evicted = []
        warm.on_evict(lambda session: evicted.append(session.stream_id))
        warm.restore(payload)
        assert sorted(evicted) == ["live-a", "live-b"]
        assert warm.stream_ids() == ["persisted"]

    def test_restore_rejects_wrong_domain(self):
        service = MonitorService(SyntheticDomain())
        payload = service.snapshot()
        other = MonitorService("tvnews")
        with pytest.raises(ValueError, match="domain"):
            other.restore(payload)

    def test_snapshot_file_round_trip(self, tmp_path):
        path = str(tmp_path / "fleet.json")
        service = MonitorService("tvnews")
        domain = service.domain
        stream = domain.iter_stream(domain.build_world(seed=4))
        raws = [next(stream) for _ in range(6)]
        for raw in raws[:3]:
            service.ingest("feed", raw)
        save_service_snapshot(service, path, extra={"cli": {"seed": 4}})

        restored = load_service_snapshot(path)
        for raw in raws[3:]:
            service.ingest("feed", raw)
            restored.ingest("feed", raw)
        assert_reports_equal(service.report("feed"), restored.report("feed"))

    def test_load_rejects_non_snapshot_json(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="snapshot"):
            load_service_snapshot(str(path))

    def test_load_rejects_omg_level_snapshots(self, tmp_path):
        # OMG.snapshot() shares the format tag but is not a fleet
        # snapshot; it must fail cleanly, not KeyError deep in restore.
        path = tmp_path / "omg.json"
        path.write_text(json.dumps(SyntheticDomain().build_monitor().snapshot()))
        with pytest.raises(ValueError, match="snapshot"):
            load_service_snapshot(str(path))
        with pytest.raises(ValueError, match="OMG-level"):
            MonitorService(SyntheticDomain()).restore(json.loads(path.read_text()))

    def test_extra_keys_cannot_shadow_payload(self, tmp_path):
        service = MonitorService(SyntheticDomain())
        with pytest.raises(ValueError, match="collides"):
            save_service_snapshot(
                service, str(tmp_path / "x.json"), extra={"domain": "zzz"}
            )


class TestVideoDomainSnapshot:
    """The video domain carries live tracker state across checkpoints."""

    def flicker_frames(self):
        from repro.geometry.box2d import make_box

        return (
            [[make_box(10 + t, 20, 10, 8, label="car", score=0.9)] for t in range(3)]
            + [[]]
            + [[make_box(14 + t, 20, 10, 8, label="car", score=0.9)] for t in range(3)]
        )

    def domain_config(self):
        from repro.domains.video.domain import VideoDomainConfig
        from repro.domains.video.pipeline import VideoPipelineConfig

        return VideoDomainConfig(
            pipeline=VideoPipelineConfig(fps=1.0, temporal_threshold=3.0)
        )

    @pytest.mark.parametrize("cut", [1, 3, 5])
    def test_tracker_state_survives_snapshot(self, cut):
        frames = self.flicker_frames()
        cfg = self.domain_config()

        uninterrupted = MonitorService("video", domain_config=cfg)
        for frame in frames:
            uninterrupted.ingest("cam", frame)

        first = MonitorService("video", domain_config=cfg)
        for frame in frames[:cut]:
            first.ingest("cam", frame)
        payload = json_round_trip(first.snapshot())
        resumed = MonitorService.from_snapshot(payload, domain_config=cfg)
        for frame in frames[cut:]:
            resumed.ingest("cam", frame)

        assert_reports_equal(uninterrupted.report("cam"), resumed.report("cam"))
        # the flicker retroactively lands on the gap frame in both
        assert resumed.report("cam").flagged_indices("flicker").tolist() == [3]

    def test_matches_offline_pipeline_monitor(self):
        frames = self.flicker_frames()
        cfg = self.domain_config()
        service = MonitorService("video", domain_config=cfg)
        for frame in frames:
            service.ingest("cam", frame)
        offline = get_domain("video", cfg).build_pipeline().monitor(frames)
        np.testing.assert_array_equal(
            service.report("cam").severities, offline.report.severities
        )


class TestEcgDomainSnapshot:
    def test_offset_state_survives_snapshot(self):
        service = MonitorService("ecg")
        domain = service.domain
        stream = domain.iter_stream(domain.build_world(seed=6))
        raws = [next(stream) for _ in range(4)]

        uninterrupted = MonitorService("ecg")
        for raw in raws:
            uninterrupted.ingest("p", raw)

        for raw in raws[:2]:
            service.ingest("p", raw)
        payload = json_round_trip(service.snapshot())
        resumed = MonitorService.from_snapshot(payload)
        for raw in raws[2:]:
            resumed.ingest("p", raw)
        assert_reports_equal(uninterrupted.report("p"), resumed.report("p"))
