"""Subprocess smoke tests for ``python -m repro stream`` (the CI fast
tier runs this file's happy path)."""

import json

import pytest

from tests.experiments.test_cli import run_cli


class TestStreamCommand:
    def test_tvnews_smoke(self):
        out = run_cli(
            "stream", "tvnews", "--streams", "2", "--items", "3", "--seed", "0"
        ).stdout
        assert "tvnews-0" in out and "tvnews-1" in out
        assert "TOTAL" in out

    def test_json_output(self):
        payload = json.loads(
            run_cli(
                "stream", "tvnews", "--streams", "2", "--items", "2", "--json"
            ).stdout
        )
        assert payload["domain"] == "tvnews"
        assert set(payload["streams"]) == {"tvnews-0", "tvnews-1"}
        assert payload["fleet"]["n_items"] == sum(
            s["n_items"] for s in payload["streams"].values()
        )

    def test_snapshot_resume_accumulates(self, tmp_path):
        path = str(tmp_path / "fleet.json")
        first = json.loads(
            run_cli(
                "stream", "tvnews", "--streams", "2", "--items", "2",
                "--seed", "5", "--snapshot", path, "--json",
            ).stdout
        )
        assert not first["resumed"]
        second = json.loads(
            run_cli(
                "stream", "tvnews", "--streams", "2", "--items", "2",
                "--seed", "5", "--snapshot", path, "--json",
            ).stdout
        )
        assert second["resumed"]
        for stream_id in first["streams"]:
            assert (
                second["streams"][stream_id]["n_raw"]
                == first["streams"][stream_id]["n_raw"] + 2
            )
            assert (
                second["streams"][stream_id]["n_items"]
                > first["streams"][stream_id]["n_items"]
            )

    def test_resume_rejects_conflicting_pinned_flags(self, tmp_path):
        path = str(tmp_path / "fleet.json")
        run_cli("stream", "tvnews", "--streams", "2", "--items", "1",
                "--seed", "5", "--snapshot", path)
        conflict = run_cli(
            "stream", "tvnews", "--items", "1", "--seed", "9",
            "--snapshot", path, check=False,
        )
        assert conflict.returncode != 0
        assert "--seed 9 conflicts" in conflict.stderr
        # dropping the pinned flags resumes fine
        run_cli("stream", "tvnews", "--items", "1", "--snapshot", path)

    def test_resume_requires_cli_provenance(self, tmp_path):
        import subprocess, sys, os
        from pathlib import Path

        import repro

        # a snapshot written by library code (no "cli" block)
        src = str(Path(repro.__file__).resolve().parent.parent)
        path = str(tmp_path / "lib.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        subprocess.run(
            [sys.executable, "-c",
             "import sys;"
             "from repro.serve import MonitorService, save_service_snapshot;"
             f"save_service_snapshot(MonitorService('tvnews'), {path!r})"],
            check=True, env=env,
        )
        proc = run_cli("stream", "tvnews", "--snapshot", path, check=False)
        assert proc.returncode != 0
        assert "provenance" in proc.stderr

    def test_unknown_domain_fails_listing_names(self):
        proc = run_cli("stream", "nope", check=False)
        assert proc.returncode != 0
        assert "tvnews" in proc.stderr

    def test_bad_counts_rejected(self):
        assert run_cli("stream", "tvnews", "--streams", "0", check=False).returncode != 0
        assert run_cli("stream", "tvnews", "--items", "0", check=False).returncode != 0
