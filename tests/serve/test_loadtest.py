"""The load harness: sweep mechanics, the accounting ledger, and the
BENCH_serve.json payload shape (kept fast via the deterministic
``items`` mode; the real timed sweep lives in benchmarks/)."""

import json

import pytest

from repro.serve import LoadTestConfig, run_loadtest, write_bench
from repro.serve.loadtest import LoadTestPoint


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="mode"):
            LoadTestConfig(mode="sideways")
        with pytest.raises(ValueError, match="client_counts"):
            LoadTestConfig(client_counts=())
        with pytest.raises(ValueError, match="client_counts"):
            LoadTestConfig(client_counts=(1, 0))
        with pytest.raises(ValueError, match="duration"):
            LoadTestConfig(duration=0.0)
        with pytest.raises(ValueError, match="warmup"):
            LoadTestConfig(warmup=-1.0)
        with pytest.raises(ValueError, match="closed-loop"):
            LoadTestConfig(mode="open", items=5)
        with pytest.raises(ValueError, match="rate"):
            LoadTestConfig(mode="open", rate=0.0)


class TestClosedLoopSweep:
    def test_items_mode_is_deterministic_work_with_full_ledger(self):
        config = LoadTestConfig(
            client_counts=(1, 2), items=10, warmup=0.0, pool_units=4
        )
        echoed = []
        result = run_loadtest(config, echo=echoed.append)
        assert [p.clients for p in result.points] == [1, 2]
        assert len(echoed) == 2 and all(
            line.startswith("BENCH_SERVE ") for line in echoed
        )
        for point in result.points:
            assert point.offered == point.clients * 10  # exactly the work asked
            assert point.ledger_ok
            assert point.accepted == point.offered  # closed loop never overloads
            assert point.completed + point.failed == point.accepted
            assert point.failed == 0
            assert point.n_samples == point.accepted  # warmup=0: all measured
            assert point.items_per_s > 0
            lat = point.latency_ms
            assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]

    def test_warmup_excludes_early_latencies(self):
        # A warmup longer than the whole run leaves zero samples — the
        # percentiles degrade to None instead of crashing.
        config = LoadTestConfig(
            client_counts=(1,), items=3, warmup=60.0, pool_units=2
        )
        point = run_loadtest(config).points[0]
        assert point.offered == 3 and point.ledger_ok
        assert point.n_samples == 0
        assert point.latency_ms["p50"] is None


class TestOpenLoop:
    def test_open_loop_tracks_offered_rate_and_ledger(self):
        config = LoadTestConfig(
            client_counts=(2,), mode="open", rate=150.0,
            duration=0.4, warmup=0.0, pool_units=4,
        )
        point = run_loadtest(config).points[0]
        # ~rate * duration sent (scheduling jitter allowed), all accounted
        assert 0.4 * config.rate * config.duration <= point.offered
        assert point.ledger_ok
        assert point.completed + point.failed == point.accepted

    def test_saturation_rejects_explicitly_never_silently(self):
        config = LoadTestConfig(
            client_counts=(2,), mode="open", rate=2000.0, duration=0.4,
            warmup=0.0, pool_units=4, max_pending=3, max_delay=0.02,
        )
        point = run_loadtest(config).points[0]
        assert point.rejected > 0  # the bounded queue pushed back
        assert point.ledger_ok  # offered == accepted + rejected, exactly


class TestBenchPayload:
    def test_write_bench_payload_shape(self, tmp_path):
        config = LoadTestConfig(client_counts=(1,), items=4, warmup=0.0,
                                pool_units=2)
        result = run_loadtest(config)
        path = str(tmp_path / "BENCH_serve.json")
        payload = write_bench(result, path)
        assert json.load(open(path)) == payload
        assert payload["bench"] == "serve_loadtest"
        assert payload["domain"] == "tvnews"
        assert payload["config"]["client_counts"] == [1]
        (point,) = payload["points"]
        assert point["ledger_ok"] is True
        for key in ("clients", "items_per_s", "latency_ms", "offered",
                    "accepted", "rejected", "completed", "failed"):
            assert key in point
        assert set(point["latency_ms"]) == {"p50", "p95", "p99", "mean", "max"}

    def test_summary_line_and_table_render(self):
        point = LoadTestPoint(
            clients=2, mode="closed", shards=2, elapsed=1.0, measured=1.0,
            n_samples=10, items_per_s=10.0,
            latency_ms={"p50": 1.0, "p95": 2.0, "p99": 3.0,
                        "mean": 1.2, "max": 3.5},
            offered=10, accepted=10, rejected=0, completed=10,
            failed=0, batches=4,
        )
        line = point.summary_line()
        assert "clients=2" in line and "p99_ms=3.00" in line
        assert "shards=2" in line
        broken = LoadTestPoint(
            clients=1, mode="open", shards=1, elapsed=1.0, measured=1.0,
            n_samples=0, items_per_s=0.0,
            latency_ms={"p50": None, "p95": None, "p99": None,
                        "mean": None, "max": None},
            offered=5, accepted=3, rejected=1,  # one unit vanished!
            completed=3, failed=0, batches=1,
        )
        assert not broken.ledger_ok
        assert "p50_ms=n/a" in broken.summary_line()
