"""``MonitorService`` semantics: isolation, eviction, batching, fleet
reports, fire routing — on a fast synthetic domain covering every
streaming-evaluator family (per-item, rolling-window, attribute/temporal
consistency, windowed-replay fallback)."""

import json

import numpy as np
import pytest

from repro.core.assertion import FunctionAssertion, ModelAssertion
from repro.core.database import AssertionDatabase
from repro.core.runtime import OMG
from repro.domains.registry import Domain, RawItem
from repro.serve import MonitorService, ServiceConfig, StreamFire

COLORS = ("red", "green", "blue")


class EveryWindowAssertion(ModelAssertion):
    """A custom subclass with no streaming form → windowed-replay path."""

    def evaluate_stream(self, items):
        return [float(len(item.outputs) == 0) for item in items]


class SyntheticDomain(Domain):
    """Random id/color outputs exercising all four assertion families."""

    name = "synthetic"

    def build_monitor(self, config=None) -> OMG:
        omg = OMG(AssertionDatabase(), window_size=8)
        omg.add_assertion(
            lambda inp, outputs: float(max(0, len(outputs) - 2)), name="crowded"
        )
        omg.add_assertion(
            FunctionAssertion(
                lambda inputs, outputs_list: float(
                    sum(len(o) for o in outputs_list) > 6
                ),
                "busy_window",
                window=3,
            )
        )
        omg.add_assertion(EveryWindowAssertion("empty", "no outputs at all"))
        omg.add_consistency_assertion(
            id_fn=lambda o: o["id"],
            attrs_fn=lambda o: {"color": o["color"]},
            temporal_threshold=2.5,
            attr_keys=["color"],
            name="syn",
        )
        return omg

    def build_world(self, seed: int = 0):
        return np.random.default_rng(seed)

    def iter_stream(self, world):
        while True:
            outputs = [
                {
                    "id": int(world.integers(0, 4)),
                    "color": COLORS[int(world.integers(0, len(COLORS)))],
                }
                for _ in range(int(world.integers(0, 4)))
            ]
            yield outputs

    def item_from_raw(self, raw, state=None):
        return [RawItem(list(raw), None)]


def raw_units(seed, n):
    domain = SyntheticDomain()
    stream = domain.iter_stream(domain.build_world(seed))
    return [next(stream) for _ in range(n)]


def assert_reports_equal(a, b):
    assert a.assertion_names == b.assertion_names
    np.testing.assert_array_equal(a.severities, b.severities)
    assert a.records == b.records


class TestIsolationAndDeterminism:
    def test_interleaved_eight_streams_match_eight_solo_runs(self):
        n_streams, n_raw = 8, 30
        units = {f"s{k}": raw_units(k, n_raw) for k in range(n_streams)}

        interleaved = MonitorService(SyntheticDomain())
        for round_index in range(n_raw):
            interleaved.ingest_batch(
                [(sid, units[sid][round_index]) for sid in units], parallel=True
            )

        for sid, raws in units.items():
            solo = MonitorService(SyntheticDomain())
            for raw in raws:
                solo.ingest(sid, raw)
            assert_reports_equal(interleaved.report(sid), solo.report(sid))

    def test_parallel_and_serial_batches_are_bit_identical(self):
        units = {f"s{k}": raw_units(10 + k, 20) for k in range(4)}
        serial = MonitorService(SyntheticDomain())
        threaded = MonitorService(SyntheticDomain())
        for i in range(20):
            pairs = [(sid, units[sid][i]) for sid in units]
            fires_serial = serial.ingest_batch(pairs, parallel=False)
            fires_threaded = threaded.ingest_batch(pairs, parallel=True)
            assert fires_serial == fires_threaded
        for sid in units:
            assert_reports_equal(serial.report(sid), threaded.report(sid))

    def test_online_report_matches_offline_monitor(self):
        from repro.core.types import StreamItem

        domain = SyntheticDomain()
        service = MonitorService(domain)
        raws = raw_units(99, 40)
        for raw in raws:
            service.ingest("only", raw)
        online = service.report("only")
        items = [
            StreamItem(index=i, timestamp=float(i), outputs=tuple(raw))
            for i, raw in enumerate(raws)
        ]
        offline = domain.build_monitor().monitor(items)
        assert online.assertion_names == offline.assertion_names
        np.testing.assert_array_equal(online.severities, offline.severities)


class TestFireRouting:
    def test_on_fire_carries_stream_provenance(self):
        service = MonitorService(SyntheticDomain())
        fires = []
        service.on_fire(fires.append)
        for i, raw in enumerate(raw_units(5, 30)):
            service.ingest(f"s{i % 3}", raw)
        assert fires, "the synthetic stream should trip assertions"
        assert all(isinstance(f, StreamFire) for f in fires)
        assert {f.stream_id for f in fires} <= {"s0", "s1", "s2"}
        # every fire's record names a registered assertion
        names = set(service.report("s0").assertion_names)
        assert {f.record.assertion_name for f in fires} <= names

    def test_on_fire_may_reenter_the_service(self):
        # The paper's corrective-action pattern: a fire on one stream
        # ingests a derived event into another stream of the same service.
        service = MonitorService(SyntheticDomain())
        echoed = []

        def corrective(fire):
            if fire.stream_id == "primary":
                echoed.extend(service.ingest("audit", [{"id": 0, "color": "red"}]))

        service.on_fire(corrective)
        for raw in raw_units(8, 30):
            service.ingest("primary", raw)
        assert "audit" in service.stream_ids()
        assert service.report("audit").n_items > 0

    def test_batch_error_on_one_stream_still_dispatches_siblings(self):
        class ExplodingDomain(SyntheticDomain):
            def item_from_raw(self, raw, state=None):
                if raw == "boom":
                    raise RuntimeError("malformed unit")
                return super().item_from_raw(raw, state)

        service = MonitorService(ExplodingDomain())
        dispatched = []
        service.on_fire(dispatched.append)
        crowded = [{"id": 0, "color": "red"}] * 4  # trips "crowded"
        with pytest.raises(RuntimeError, match="malformed"):
            service.ingest_batch(
                [("good", crowded), ("bad", "boom")], parallel=False
            )
        # the good stream's fires were dispatched despite the sibling error
        assert any(f.stream_id == "good" for f in dispatched)
        assert service.report("good").n_items == 1
        # the failed stream is fail-stop: broken, excluded from fleet
        # views, and loud on any further use until evicted
        assert service.session("bad").broken is not None
        with pytest.raises(RuntimeError, match="broken"):
            service.report("bad")
        with pytest.raises(RuntimeError, match="broken"):
            service.ingest("bad", crowded)
        fleet = service.fleet_report()
        assert list(fleet.stream_reports) == ["good"]
        assert [sid for sid, _ in service.snapshot()["sessions"]] == ["good"]
        service.evict("bad")
        assert service.ingest("bad", crowded) is not None  # fresh session

    def test_batch_fires_arrive_in_pair_order(self):
        service = MonitorService(SyntheticDomain())
        units = {f"s{k}": raw_units(20 + k, 12) for k in range(3)}
        collected = []
        service.on_fire(collected.append)
        returned = []
        for i in range(12):
            returned.extend(
                service.ingest_batch([(sid, units[sid][i]) for sid in units])
            )
        assert collected == returned


class TestEviction:
    def make_clock(self):
        state = {"now": 0.0}

        def clock():
            return state["now"]

        return state, clock

    def test_lru_bound_evicts_least_recently_used(self):
        state, clock = self.make_clock()
        service = MonitorService(
            SyntheticDomain(), config=ServiceConfig(max_sessions=2), clock=clock
        )
        evicted = []
        service.on_evict(lambda session: evicted.append(session.stream_id))
        raw = raw_units(0, 1)[0]
        service.ingest("a", raw)
        state["now"] = 1.0
        service.ingest("b", raw)
        state["now"] = 2.0
        service.ingest("a", raw)  # touch a: b is now LRU
        state["now"] = 3.0
        service.ingest("c", raw)
        assert evicted == ["b"]
        assert service.stream_ids() == ["a", "c"]

    def test_ttl_expires_idle_sessions(self):
        state, clock = self.make_clock()
        service = MonitorService(
            SyntheticDomain(), config=ServiceConfig(session_ttl=10.0), clock=clock
        )
        raw = raw_units(0, 1)[0]
        service.ingest("old", raw)
        state["now"] = 5.0
        service.ingest("young", raw)
        state["now"] = 14.0  # old idle 14s > ttl, young idle 9s
        service.ingest("young", raw)
        assert service.stream_ids() == ["young"]

    def test_ttl_purges_on_reporting_and_snapshot_too(self):
        state, clock = self.make_clock()
        service = MonitorService(
            SyntheticDomain(), config=ServiceConfig(session_ttl=10.0), clock=clock
        )
        evicted = []
        service.on_evict(lambda session: evicted.append(session.stream_id))
        service.ingest("idle", raw_units(0, 1)[0])
        state["now"] = 20.0
        fleet = service.fleet_report()
        assert evicted == ["idle"]
        assert fleet.stream_reports == {}
        service.ingest("fresh", raw_units(0, 1)[0])
        state["now"] = 40.0
        assert service.snapshot()["sessions"] == []
        with pytest.raises(KeyError):
            service.report("fresh")

    def test_batch_within_lru_bound_never_evicts_its_own_members(self):
        state, clock = self.make_clock()
        service = MonitorService(
            SyntheticDomain(), config=ServiceConfig(max_sessions=2), clock=clock
        )
        raw = raw_units(0, 1)[0]
        service.ingest("a", raw)  # LRU
        state["now"] = 1.0
        service.ingest("b", raw)
        state["now"] = 2.0
        evicted = []
        service.on_evict(lambda session: evicted.append(session.stream_id))
        before = service.session("b").n_items
        # "b" is a batch member and must survive; only "a" may be evicted
        # to make room for "c".
        service.ingest_batch([("c", raw), ("b", raw)])
        assert evicted == ["a"]
        assert service.session("b").n_items == before + 1  # history kept

    def test_batch_wider_than_lru_bound_is_rejected(self):
        service = MonitorService(
            SyntheticDomain(), config=ServiceConfig(max_sessions=2)
        )
        raw = raw_units(0, 1)[0]
        with pytest.raises(ValueError, match="max_sessions"):
            service.ingest_batch([("a", raw), ("b", raw), ("c", raw)])

    def test_explicit_evict_returns_session(self):
        service = MonitorService(SyntheticDomain())
        service.ingest("a", raw_units(0, 1)[0])
        session = service.evict("a")
        assert session.stream_id == "a"
        assert "a" not in service
        with pytest.raises(KeyError):
            service.evict("a")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_sessions=0)
        with pytest.raises(ValueError):
            ServiceConfig(session_ttl=0.0)


class TestSnapshotOnEvict:
    def test_eviction_hands_hooks_a_restorable_snapshot(self):
        units = raw_units(7, 24)
        captured = {}

        service = MonitorService(
            SyntheticDomain(),
            config=ServiceConfig(max_sessions=1, snapshot_on_evict=True),
        )
        service.on_evict(
            lambda session: captured.update({session.stream_id: session.evict_snapshot})
        )
        for raw in units[:10]:
            service.ingest("a", raw)
        service.ingest("b", units[0])  # LRU-evicts "a" mid-history
        assert "a" in captured and captured["a"] is not None

        # Re-admit "a" and finish its stream: bit-identical to a solo run
        # that was never evicted.
        service.evict("b")
        service.restore_session("a", captured["a"])
        for raw in units[10:]:
            service.ingest("a", raw)

        solo = MonitorService(SyntheticDomain())
        for raw in units:
            solo.ingest("a", raw)
        assert_reports_equal(service.report("a"), solo.report("a"))

    def test_default_config_captures_no_snapshot(self):
        service = MonitorService(SyntheticDomain())
        service.ingest("a", raw_units(0, 1)[0])
        session = service.evict("a")
        assert session.evict_snapshot is None

    def test_restore_session_refuses_live_stream(self):
        service = MonitorService(
            SyntheticDomain(), config=ServiceConfig(snapshot_on_evict=True)
        )
        service.ingest("a", raw_units(0, 1)[0])
        payload = service.evict("a").evict_snapshot
        service.ingest("a", raw_units(0, 1)[0])  # fresh session, same id
        with pytest.raises(ValueError, match="live"):
            service.restore_session("a", payload)

    def test_broken_session_yields_no_snapshot(self):
        service = MonitorService(
            SyntheticDomain(), config=ServiceConfig(snapshot_on_evict=True)
        )
        with pytest.raises(TypeError):
            service.ingest("a", [object()])  # outputs must be dicts
        session = service.evict("a")
        assert session.broken is not None
        assert session.evict_snapshot is None


class TestFleetReport:
    def test_aggregate_stacks_streams_in_order(self):
        service = MonitorService(SyntheticDomain())
        units = {f"s{k}": raw_units(30 + k, 15) for k in range(3)}
        for sid, raws in units.items():
            for raw in raws:
                service.ingest(sid, raw)
        fleet = service.fleet_report()
        assert list(fleet.stream_reports) == ["s0", "s1", "s2"]
        stacked = np.vstack([r.severities for r in fleet.stream_reports.values()])
        np.testing.assert_array_equal(fleet.aggregate.severities, stacked)
        assert fleet.aggregate.n_items == sum(
            r.n_items for r in fleet.stream_reports.values()
        )
        # aggregate records are offset per stream and tagged with it
        for record in fleet.aggregate.records:
            offset = fleet.row_offsets[record.context]
            row = record.item_index - offset
            report = fleet.stream_reports[record.context]
            assert report.severities[row][
                report.assertion_names.index(record.assertion_name)
            ] == record.severity
        # fleet counts are the column-wise sums of per-stream counts
        for name, count in fleet.fire_counts().items():
            assert count == sum(
                r.fire_counts()[name] for r in fleet.stream_reports.values()
            )
        table = fleet.format_table()
        assert "TOTAL" in table and "s2" in table

    def test_empty_fleet_report(self):
        fleet = MonitorService(SyntheticDomain()).fleet_report()
        assert fleet.aggregate.n_items == 0
        assert fleet.aggregate.assertion_names  # names still resolved
        assert fleet.fire_counts() == {
            name: 0 for name in fleet.aggregate.assertion_names
        }


class TestServiceConstruction:
    def test_domain_config_requires_a_name(self):
        with pytest.raises(ValueError, match="domain_config"):
            MonitorService(SyntheticDomain(), domain_config={"x": 1})

    def test_by_name_uses_registry(self):
        service = MonitorService("tvnews")
        assert service.domain.name == "tvnews"


class TestBatchErrorAggregation:
    """Satellite fix: a multi-stream batch failure names *every* failed
    stream, not just the first group's exception."""

    class TwoBombsDomain(SyntheticDomain):
        def item_from_raw(self, raw, state=None):
            if isinstance(raw, str):
                raise RuntimeError(f"malformed unit {raw}")
            return super().item_from_raw(raw, state)

    def test_aggregate_error_names_every_failed_stream(self):
        from repro.serve import BatchIngestError

        service = MonitorService(self.TwoBombsDomain())
        crowded = [{"id": 0, "color": "red"}] * 4
        with pytest.raises(BatchIngestError) as excinfo:
            service.ingest_batch(
                [("good", crowded), ("bad1", "boom1"), ("bad2", "boom2")],
                parallel=False,
            )
        err = excinfo.value
        assert list(err.failures) == ["bad1", "bad2"]
        assert "boom1" in str(err) and "boom2" in str(err)
        assert "bad1" in str(err) and "bad2" in str(err)
        # backward compatible: still a RuntimeError, siblings unharmed,
        # both failed sessions fail-stopped
        assert isinstance(err, RuntimeError)
        assert service.report("good").n_items == 1
        assert service.session("bad1").broken is not None
        assert service.session("bad2").broken is not None

    def test_outcomes_are_per_pair_and_mark_skipped_tail(self):
        service = MonitorService(self.TwoBombsDomain())
        crowded = [{"id": 0, "color": "red"}] * 4
        outcomes = service.ingest_batch_outcomes(
            [("good", crowded), ("bad", "boom"), ("bad", crowded)],
            parallel=False,
        )
        assert [o.stream_id for o in outcomes] == ["good", "bad", "bad"]
        assert outcomes[0].ok and outcomes[0].fires
        assert not outcomes[1].ok and not outcomes[1].skipped
        assert "boom" in str(outcomes[1].error)
        # the second "bad" unit was never attempted: the session had
        # already broken earlier in the same batch
        assert not outcomes[2].ok and outcomes[2].skipped

    def test_outcomes_match_ingest_batch_fires_when_all_ok(self):
        service_a = MonitorService(SyntheticDomain())
        service_b = MonitorService(SyntheticDomain())
        units = {f"s{k}": raw_units(40 + k, 10) for k in range(3)}
        for i in range(10):
            pairs = [(sid, units[sid][i]) for sid in units]
            fires = service_a.ingest_batch(pairs)
            outcomes = service_b.ingest_batch_outcomes(pairs)
            assert all(o.ok for o in outcomes)
            flat = [f for o in outcomes for f in o.fires]
            assert flat == fires


class TestReentrantHooks:
    """Satellite fixes: hooks that re-enter the service during purge and
    restore must not crash or silently lose sessions."""

    def make_clock(self):
        state = {"now": 0.0}
        return state, (lambda: state["now"])

    def test_purge_survives_on_evict_hook_reentering_the_service(self):
        # The hook's re-entrant call purges the other expired session
        # itself; the outer purge loop must tolerate the id vanishing
        # (pre-fix: KeyError from evicting an already-gone stream).
        state, clock = self.make_clock()
        service = MonitorService(
            SyntheticDomain(), config=ServiceConfig(session_ttl=10.0), clock=clock
        )
        raw = raw_units(0, 1)[0]
        evicted = []

        def reenter(session):
            evicted.append(session.stream_id)
            service.fleet_report()  # re-entrant: purges expired sessions too

        service.on_evict(reenter)
        service.ingest("a", raw)
        service.ingest("b", raw)
        state["now"] = 20.0  # both expired
        service.ingest("fresh", raw)  # triggers the purge
        assert sorted(evicted) == ["a", "b"]
        assert service.stream_ids() == ["fresh"]

    def test_purge_skips_session_recreated_by_hook(self):
        # A hook that *re-creates* an expired stream id yields a fresh,
        # recently-used session; the outer loop must not evict it.
        state, clock = self.make_clock()
        service = MonitorService(
            SyntheticDomain(), config=ServiceConfig(session_ttl=10.0), clock=clock
        )
        raw = raw_units(0, 1)[0]

        def resurrect(session):
            if session.stream_id == "a":
                service.ingest("b", raw)  # re-creates b before its turn

        service.on_evict(resurrect)
        service.ingest("a", raw)
        service.ingest("b", raw)
        state["now"] = 20.0
        service.fleet_report()  # purge runs: evicts a, hook re-creates b
        assert service.stream_ids() == ["b"]
        assert service.session("b").last_used == 20.0

    def test_restore_refuses_sessions_created_by_evict_hooks(self):
        # Pre-fix: `restore` overwrote _sessions wholesale, silently
        # discarding anything an on_evict hook created mid-teardown.
        service = MonitorService(SyntheticDomain())
        raw = raw_units(0, 1)[0]
        service.ingest("a", raw)
        snapshot = service.snapshot()
        service.on_evict(lambda session: service.ingest("sneaky", raw))
        with pytest.raises(RuntimeError, match="sneaky"):
            service.restore(snapshot)

    def test_restore_tolerates_hook_evicting_other_sessions(self):
        # A hook that *evicts* (not creates) during teardown is fine.
        service = MonitorService(SyntheticDomain())
        raw = raw_units(0, 1)[0]
        service.ingest("a", raw)
        snapshot = service.snapshot()
        service.ingest("b", raw)

        def evict_sibling(session):
            if session.stream_id == "a" and "b" in service:
                service.evict("b")

        service.on_evict(evict_sibling)
        service.restore(snapshot)
        assert service.stream_ids() == ["a"]


class TestTtlBoundary:
    """Satellite test: the TTL comparison is strict — a session idle for
    exactly ``session_ttl`` seconds is still alive."""

    def test_exactly_ttl_idle_is_kept_just_over_is_evicted(self):
        state = {"now": 0.0}
        service = MonitorService(
            SyntheticDomain(),
            config=ServiceConfig(session_ttl=10.0),
            clock=lambda: state["now"],
        )
        raw = raw_units(0, 1)[0]
        service.ingest("s", raw)
        state["now"] = 10.0  # idle == ttl: strictly-greater, so alive
        assert service.report("s").n_items == 1
        assert list(service.fleet_report().stream_reports) == ["s"]
        state["now"] = 10.0 + 1e-9  # the instant after: expired
        assert service.snapshot()["sessions"] == []
        with pytest.raises(KeyError):
            service.report("s")
