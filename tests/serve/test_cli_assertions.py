"""Subprocess tests for ``python -m repro assertions`` and ``--suite``.

The CI fast tier runs the lint happy path and the ``stream --suite``
round trip (dump a built-in suite → reload it from disk → identical
fleet report).
"""

import json

import pytest

from tests.experiments.test_cli import run_cli


class TestAssertionsCommand:
    def test_list_covers_all_builtin_suites(self):
        out = run_cli("assertions", "list").stdout
        for fragment in ("av-builtin", "ecg-builtin", "tvnews-builtin",
                         "video-builtin", "multibox", "flicker", "ECG",
                         "news:attr:identity"):
            assert fragment in out

    def test_list_json(self):
        payload = json.loads(run_cli("assertions", "list", "--json").stdout)
        by_target = {row["target"]: row for row in payload}
        assert set(by_target) == {"av", "ecg", "tvnews", "video"}
        assert by_target["video"]["enabled"] == ["multibox", "flicker", "appear"]

    def test_lint_builtin_suites_clean(self):
        out = run_cli("assertions", "lint").stdout
        assert out.count("OK") == 4

    def test_lint_flags_problems_with_nonzero_exit(self, tmp_path):
        # Hand-write a suite referencing a predicate nobody registers.
        suite = {
            "format": 1,
            "suite": {
                "__dataclass__": "AssertionSuite",
                "fields": {
                    "name": "broken",
                    "version": 1,
                    "domain": "",
                    "entries": {"__tuple__": [{
                        "__dataclass__": "SuiteEntry",
                        "fields": {
                            "spec": {
                                "__dataclass__": "PerItemSpec",
                                "fields": {
                                    "name": "ghost",
                                    "predicate": "no.such.predicate",
                                    "params": {},
                                    "description": "",
                                    "taxonomy_class": "domain knowledge",
                                },
                            },
                            "tags": {"__tuple__": []},
                            "enabled": True,
                            "author": "",
                            "weight": 1.0,
                        },
                    }]},
                },
            },
        }
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(suite))
        proc = run_cli("assertions", "lint", str(path), check=False)
        assert proc.returncode == 1
        assert "no.such.predicate" in proc.stdout

    def test_show_json_is_loadable_and_diffs_clean(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(run_cli("assertions", "show", "tvnews", "--json").stdout)
        assert run_cli("assertions", "lint", str(path)).stdout.strip().endswith("OK")
        diff = json.loads(
            run_cli("assertions", "diff", "tvnews", str(path), "--json").stdout
        )
        assert diff["added"] == diff["removed"] == diff["changed"] == []

    def test_unknown_target_lists_domains(self):
        proc = run_cli("assertions", "show", "nope", check=False)
        assert proc.returncode != 0
        assert "tvnews" in proc.stderr

    def test_show_reports_uncompilable_suite_without_traceback(self, tmp_path):
        # A generic (domain-less) suite naming a predicate nobody
        # registers must fail with the CLI's `error:` convention, not a
        # raw KeyError traceback.
        from repro.core.spec import AssertionSuite, PerItemSpec, SuiteEntry, save_suite

        path = str(tmp_path / "ghost.json")
        save_suite(
            AssertionSuite(
                name="ghost-suite",
                entries=(
                    SuiteEntry(
                        spec=PerItemSpec(name="ghost", predicate="no.such.predicate")
                    ),
                ),
            ),
            path,
        )
        proc = run_cli("assertions", "show", path, check=False)
        assert proc.returncode != 0
        assert "error:" in proc.stderr and "does not compile" in proc.stderr
        assert "Traceback" not in proc.stderr


class TestStreamSuiteFlag:
    def test_suite_file_round_trip_is_bit_identical(self, tmp_path):
        """Satellite: dump suite → reload → identical fleet report."""
        path = tmp_path / "suite.json"
        path.write_text(run_cli("assertions", "show", "tvnews", "--json").stdout)
        base = run_cli(
            "stream", "tvnews", "--streams", "2", "--items", "3",
            "--seed", "0", "--json",
        ).stdout
        via_file = run_cli(
            "stream", "tvnews", "--streams", "2", "--items", "3",
            "--seed", "0", "--suite", str(path), "--json",
        ).stdout
        assert json.loads(base) == json.loads(via_file)

    def test_snapshot_resume_pins_the_suite(self, tmp_path):
        suite_path = tmp_path / "suite.json"
        suite_path.write_text(run_cli("assertions", "show", "tvnews", "--json").stdout)
        snap = str(tmp_path / "fleet.json")
        run_cli("stream", "tvnews", "--streams", "2", "--items", "1",
                "--suite", str(suite_path), "--snapshot", snap)
        # resuming with the same suite is fine …
        run_cli("stream", "tvnews", "--items", "1",
                "--suite", str(suite_path), "--snapshot", snap)
        # … and without the flag too (the snapshot carries it)
        run_cli("stream", "tvnews", "--items", "1", "--snapshot", snap)

    def test_snapshot_resume_rejects_a_different_suite(self, tmp_path):
        snap = str(tmp_path / "fleet.json")
        run_cli("stream", "tvnews", "--streams", "2", "--items", "1",
                "--snapshot", snap)
        other = tmp_path / "av.json"
        other.write_text(run_cli("assertions", "show", "tvnews", "--json").stdout)
        # mutate the exported suite so it genuinely differs
        payload = json.loads(other.read_text())
        payload["suite"]["fields"]["version"] = 9
        other.write_text(json.dumps(payload))
        proc = run_cli("stream", "tvnews", "--items", "1",
                       "--suite", str(other), "--snapshot", snap, check=False)
        assert proc.returncode != 0
        assert "conflicts with the snapshot" in proc.stderr
