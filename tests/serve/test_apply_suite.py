"""Live fleet reconfiguration: ``MonitorService.apply_suite``.

The acceptance bar: applying a new suite at a raw-unit boundary ``T`` on
a running 4-stream fleet yields fires after ``T`` identical to a fresh
fleet started on the new suite and fast-forwarded through the same
pre-boundary units — and snapshot → restore across the reconfiguration
boundary stays bit-identical.
"""

import json

import numpy as np
import pytest

from repro.core.seeding import derive_seed
from repro.core.spec import (
    AssertionSuite,
    PerItemSpec,
    SuiteEntry,
    get_predicate,
    register_predicate,
)
from repro.improve.fires import FireStore
from repro.serve import MonitorService

SEED = 7
STREAMS = [f"s{k}" for k in range(4)]


def crowded_scene(inp, outputs, threshold=1):
    """Severity = faces beyond ``threshold`` in one sample."""
    return float(max(0, len(outputs) - threshold))


# This module is imported both top-level by pytest (no tests/__init__.py)
# and as ``tests.serve.test_apply_suite`` by other test files; bind the
# first registration instead of re-registering a duplicate callable.
try:
    crowded_scene = get_predicate("test.crowded_scene")
except KeyError:
    register_predicate("test.crowded_scene", crowded_scene)


def crowded_entry(weight=1.0, threshold=1):
    return SuiteEntry(
        spec=PerItemSpec(
            name="crowded",
            predicate="test.crowded_scene",
            params={"threshold": threshold},
            description="unusually many faces in one sample",
            taxonomy_class="domain knowledge",
        ),
        tags=("test",),
        weight=weight,
    )


def build_fleet(suite=None):
    """A 4-stream tvnews service plus per-stream world iterators."""
    service = MonitorService("tvnews", suite=suite)
    iterators = {
        stream_id: service.domain.iter_stream(
            service.domain.build_world(derive_seed(SEED, "apply-suite", k))
        )
        for k, stream_id in enumerate(STREAMS)
    }
    return service, iterators


def ingest_rounds(service, iterators, n_rounds):
    """Interleave ``n_rounds`` raw units per stream; returns the fires."""
    fires = []
    for _ in range(n_rounds):
        fires.extend(
            service.ingest_batch(
                [(stream_id, next(iterators[stream_id])) for stream_id in STREAMS]
            )
        )
    return fires


def fire_keys(fires):
    return [
        (f.stream_id, f.record.assertion_name, f.record.item_index, f.record.severity)
        for f in fires
    ]


def assert_same_reports(a, b):
    fa, fb = a.fleet_report(), b.fleet_report()
    assert list(fa.stream_reports) == list(fb.stream_reports)
    assert fa.aggregate.assertion_names == fb.aggregate.assertion_names
    np.testing.assert_array_equal(fa.aggregate.severities, fb.aggregate.severities)


class TestApplySuite:
    def test_reconfigured_fleet_matches_fresh_fleet_after_boundary(self):
        T, M = 6, 4
        base_suite = None  # the domain's built-in template
        new_suite = MonitorService("tvnews").domain.assertion_suite().with_entry(
            crowded_entry()
        )

        live, live_iters = build_fleet(base_suite)
        ingest_rounds(live, live_iters, T)
        diffs = live.apply_suite(new_suite, tick=T)
        assert set(diffs) == set(STREAMS)
        for diff in diffs.values():
            assert diff["added"] == ["crowded"]
            assert diff["removed"] == []
            assert sorted(diff["kept"]) == [
                "news:attr:gender",
                "news:attr:hair",
                "news:attr:identity",
            ]
        live_fires = ingest_rounds(live, live_iters, M)

        # Reference: a fleet started fresh on the new suite, fast-forwarded
        # through the same pre-boundary units.
        fresh, fresh_iters = build_fleet(new_suite)
        ingest_rounds(fresh, fresh_iters, T)
        fresh_fires = ingest_rounds(fresh, fresh_iters, M)

        post_boundary = [
            key
            for key in fire_keys(fresh_fires)
        ]
        assert fire_keys(live_fires) == post_boundary
        assert any(key[1] == "crowded" for key in post_boundary), (
            "the added assertion should fire in this window — otherwise the "
            "equivalence above is vacuous"
        )
        # Full per-stream severity matrices agree too: kept evaluators
        # carry identical full-stream state, added ones were warmed on
        # the (complete, window-bounded) history.
        assert_same_reports(live, fresh)

    def test_tick_guard_names_the_offending_stream(self):
        service, iterators = build_fleet()
        ingest_rounds(service, iterators, 2)
        service.ingest(STREAMS[0], next(iterators[STREAMS[0]]))  # s0 now at 3
        new_suite = service.domain.assertion_suite().with_entry(crowded_entry())
        with pytest.raises(ValueError, match="'s0'"):
            service.apply_suite(new_suite, tick=2)
        # nothing changed: the old columns are still being served
        assert "crowded" not in service.fleet_report().aggregate.assertion_names

    def test_removed_assertions_keep_their_fires_in_the_fire_store(self):
        service, iterators = build_fleet()
        store = FireStore()
        service.on_fire(store.add)
        ingest_rounds(service, iterators, 8)
        removed_fires = {
            name: count
            for name, count in store.fire_counts().items()
            if name.startswith("news:")
        }
        assert removed_fires, "need real fires for this test to mean anything"

        only_crowded = AssertionSuite(
            name="tvnews-crowded",
            version=2,
            domain="tvnews",
            entries=(crowded_entry(),),
        )
        diffs = service.apply_suite(only_crowded, tick=8)
        for diff in diffs.values():
            assert sorted(diff["removed"]) == [
                "news:attr:gender",
                "news:attr:hair",
                "news:attr:identity",
            ]
        # live reports only serve the new suite's columns …
        assert service.fleet_report().aggregate.assertion_names == ["crowded"]
        # … while the store still holds the removed assertions' history.
        for name, count in removed_fires.items():
            assert store.fire_counts().get(name) == count

    def test_snapshot_restore_across_the_reconfiguration_boundary(self):
        new_suite = MonitorService("tvnews").domain.assertion_suite().with_entry(
            crowded_entry()
        )
        live, live_iters = build_fleet()
        ingest_rounds(live, live_iters, 4)
        live.apply_suite(new_suite, tick=4)
        ingest_rounds(live, live_iters, 2)

        payload = json.loads(json.dumps(live.snapshot()))
        resumed = MonitorService.from_snapshot(payload)
        assert resumed.suite == new_suite
        resumed_iters = {
            stream_id: resumed.domain.iter_stream(
                resumed.domain.build_world(derive_seed(SEED, "apply-suite", k))
            )
            for k, stream_id in enumerate(STREAMS)
        }
        for stream_id in STREAMS:  # fast-forward the deterministic worlds
            for _ in range(resumed.session(stream_id).n_raw):
                next(resumed_iters[stream_id])

        live_fires = ingest_rounds(live, live_iters, 3)
        resumed_fires = ingest_rounds(resumed, resumed_iters, 3)
        assert fire_keys(live_fires) == fire_keys(resumed_fires)
        assert_same_reports(live, resumed)

    def test_restore_session_rebuilds_from_embedded_suite_after_template_moves_on(self):
        # A session snapshotted before a template change restores with the
        # assertion set it actually ran, not the service's newer template.
        service, iterators = build_fleet()
        service.ingest(STREAMS[0], next(iterators[STREAMS[0]]))
        old_payload = json.loads(json.dumps(service.session(STREAMS[0]).snapshot()))
        service.apply_suite(
            service.domain.assertion_suite().with_entry(crowded_entry()), tick=None
        )
        service.evict(STREAMS[0])
        session = service.restore_session(STREAMS[0], old_payload)
        assert session.monitor.database.names() == [
            "news:attr:identity",
            "news:attr:gender",
            "news:attr:hair",
        ]

    def test_new_sessions_follow_the_applied_template(self):
        service, iterators = build_fleet()
        ingest_rounds(service, iterators, 1)
        new_suite = service.domain.assertion_suite().with_entry(crowded_entry())
        service.apply_suite(new_suite, tick=1)
        late = service.session("late-joiner")
        assert late.monitor.database.names() == [
            "news:attr:identity",
            "news:attr:gender",
            "news:attr:hair",
            "crowded",
        ]

    def test_disable_then_enable_by_suite_preserves_fire_history(self):
        service, iterators = build_fleet()
        ingest_rounds(service, iterators, 8)
        before = service.fleet_report().fire_counts()
        assert before["news:attr:identity"] > 0
        suite = service.domain.assertion_suite()

        service.apply_suite(suite.with_enabled("news", False), tick=8)
        assert service.fleet_report().aggregate.assertion_names == []

        ingest_rounds(service, iterators, 1)
        reenabled = suite.with_enabled("news", False).with_enabled("news", True)
        service.apply_suite(reenabled, tick=9)
        after = service.fleet_report().fire_counts()
        # every pre-disable fire is still in the severity log
        assert after["news:attr:identity"] >= before["news:attr:identity"]

    def test_reweight_scales_future_severities(self):
        suite = AssertionSuite(
            name="tvnews-crowded",
            version=1,
            domain="tvnews",
            entries=(crowded_entry(weight=1.0),),
        )
        service, iterators = build_fleet(suite)
        ingest_rounds(service, iterators, 2)
        baseline = service.fleet_report().aggregate.severities.copy()
        assert baseline.sum() > 0

        diffs = service.apply_suite(suite.with_weight("crowded", 2.0), tick=2)
        for diff in diffs.values():
            assert diff["replaced"] == ["crowded"]
        # replaced evaluators restart from the warm-up replay: the whole
        # (window-bounded) history is re-scored under the new weight.
        doubled = service.fleet_report().aggregate.severities
        np.testing.assert_array_equal(doubled, baseline * 2.0)

    def test_wrong_domain_suite_rejected(self):
        service, _ = build_fleet()
        foreign = AssertionSuite(
            name="video-ish",
            domain="video",
            entries=(crowded_entry(),),
        )
        with pytest.raises(ValueError, match="targets domain"):
            service.apply_suite(foreign)
        with pytest.raises(ValueError, match="targets domain"):
            MonitorService("tvnews", suite=foreign)
