"""The asyncio TCP front-end: bit-identity with direct service calls,
per-stream ordering under interleaved batches, bounded-queue
backpressure with a complete accounting ledger, and the typed error
surface."""

import asyncio
import contextlib
import json

import pytest

from repro.core.database import AssertionDatabase
from repro.core.runtime import OMG
from repro.core.seeding import derive_seed
from repro.domains.registry import Domain, RawItem
from repro.serve import (
    ConnectionLostError,
    MonitorServer,
    MonitorService,
    ReconnectingClient,
    ServerConfig,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from tests.serve.test_service import (
    SyntheticDomain,
    assert_reports_equal,
    raw_units,
)


class ExplodingDomain(SyntheticDomain):
    """String units are malformed and break their stream (fail-stop)."""

    def item_from_raw(self, raw, state=None):
        if isinstance(raw, str):
            raise RuntimeError(f"malformed unit {raw}")
        return super().item_from_raw(raw, state)


class SeqDomain(Domain):
    """Records server-side arrival order of every unit, per stream."""

    name = "seq"

    def __init__(self):
        self.observed = {}

    def build_monitor(self, config=None) -> OMG:
        omg = OMG(AssertionDatabase(), window_size=4)
        omg.add_assertion(lambda inp, outputs: 0.0, name="noop")
        return omg

    def build_world(self, seed: int = 0):
        return None

    def iter_stream(self, world):
        return iter(())

    def item_from_raw(self, raw, state=None):
        self.observed.setdefault(raw["sid"], []).append(raw["seq"])
        return [RawItem([], None)]


@contextlib.asynccontextmanager
async def serving(service, **knobs):
    """A started server plus a client factory; tears both down."""
    server = MonitorServer(service, ServerConfig(**knobs))
    await server.start()
    clients = []

    async def connect() -> ServiceClient:
        client = await ServiceClient.connect(server.host, server.port)
        clients.append(client)
        return client

    try:
        yield server, connect
    finally:
        for client in clients:
            await client.close()
        await server.stop()


class TestWireBitIdentity:
    def test_interleaved_tcp_clients_match_direct_service(self):
        n_streams, n_raw = 4, 12
        units = {f"s{k}": raw_units(50 + k, n_raw) for k in range(n_streams)}

        async def over_the_wire():
            service = MonitorService(SyntheticDomain())
            async with serving(service) as (server, connect):
                async def drive(sid):
                    client = await connect()
                    fires = []
                    for raw in units[sid]:
                        fires.extend(await client.ingest(sid, raw))
                    return sid, fires

                driven = await asyncio.gather(*(drive(sid) for sid in units))
                client = await connect()
                reports = {sid: await client.report(sid) for sid in units}
                return dict(driven), reports

        wire_fires, wire_reports = asyncio.run(over_the_wire())

        for sid, raws in units.items():
            solo = MonitorService(SyntheticDomain())
            direct_fires = []
            for raw in raws:
                direct_fires.extend(fire.record for fire in solo.ingest(sid, raw))
            # the records that crossed the wire are the direct ones,
            # bit-exact (floats included), and the accumulated session
            # state behind them matches too
            assert wire_fires[sid] == direct_fires
            assert_reports_equal(wire_reports[sid], solo.report(sid))

    def test_tvnews_tcp_run_matches_repro_stream_cli(self):
        """The server path is bit-identical to `python -m repro stream`
        with the same seeds (the acceptance criterion)."""
        from tests.experiments.test_cli import run_cli

        n_streams, n_items, seed = 2, 4, 0

        async def over_the_wire():
            service = MonitorService("tvnews")
            async with serving(service) as (server, connect):
                domain = service.domain

                async def drive(k):
                    client = await connect()
                    sid = f"tvnews-{k}"
                    stream = domain.iter_stream(
                        domain.build_world(derive_seed(seed, "stream", k))
                    )
                    for _ in range(n_items):
                        await client.ingest(sid, next(stream))

                await asyncio.gather(*(drive(k) for k in range(n_streams)))
                client = await connect()
                return await client.fleet_report()

        fleet = asyncio.run(over_the_wire())
        payload = json.loads(
            run_cli(
                "stream", "tvnews", "--streams", str(n_streams),
                "--items", str(n_items), "--seed", str(seed), "--json",
            ).stdout
        )
        assert set(fleet.stream_reports) == set(payload["streams"])
        for sid, report in fleet.stream_reports.items():
            assert report.n_items == payload["streams"][sid]["n_items"]
            assert report.fire_counts() == payload["streams"][sid]["fire_counts"]
        assert fleet.aggregate.n_items == payload["fleet"]["n_items"]
        assert fleet.fire_counts() == payload["fleet"]["fire_counts"]

    def test_restart_from_snapshot_matches_uninterrupted_run(self):
        units = {f"s{k}": raw_units(70 + k, 16) for k in range(2)}

        async def interrupted():
            service_a = MonitorService(SyntheticDomain())
            async with serving(service_a) as (server, connect):
                client = await connect()
                for i in range(8):
                    for sid in units:
                        await client.ingest(sid, units[sid][i])
                checkpoint = await client.snapshot()
            # "restart": a brand-new service + server resumes the fleet
            # from the wire-transported snapshot
            service_b = MonitorService(SyntheticDomain())
            async with serving(service_b) as (server, connect):
                client = await connect()
                assert sorted(await client.restore(checkpoint)) == sorted(units)
                for i in range(8, 16):
                    for sid in units:
                        await client.ingest(sid, units[sid][i])
                return {sid: await client.report(sid) for sid in units}

        wire_reports = asyncio.run(interrupted())
        solo = MonitorService(SyntheticDomain())
        for i in range(16):
            for sid in units:
                solo.ingest(sid, units[sid][i])
        for sid in units:
            assert_reports_equal(wire_reports[sid], solo.report(sid))


class TestOrdering:
    def test_per_stream_fifo_across_pipelined_clients_and_batches(self):
        """Each stream's units are applied in send order even when the
        worker coalesces requests from many connections into one
        service batch."""
        domain = SeqDomain()
        n = 25

        async def drive():
            service = MonitorService(domain)
            async with serving(service, max_batch=8, max_delay=0.02) as (
                server,
                connect,
            ):
                a, b, c = await connect(), await connect(), await connect()
                # a and b pipeline their own stream; c mixes both streams
                # inside ingest_batch requests
                futs = []
                for i in range(n):
                    futs.append(a.submit("ingest", stream_id="sa",
                                         raw={"sid": "sa", "seq": i}))
                    futs.append(b.submit("ingest", stream_id="sb",
                                         raw={"sid": "sb", "seq": i}))
                    futs.append(c.submit("ingest_batch", pairs=[
                        ["sc", {"sid": "sc", "seq": 2 * i}],
                        ["sd", {"sid": "sd", "seq": i}],
                        ["sc", {"sid": "sc", "seq": 2 * i + 1}],
                    ]))
                envelopes = await asyncio.gather(*futs)
                assert all(env["ok"] for env in envelopes)
                stats = await a.stats()
                # coalescing actually happened (else this test proves
                # nothing about cross-request batches)
                assert stats["batches"] < stats["accepted"]

        asyncio.run(drive())
        assert domain.observed["sa"] == list(range(n))
        assert domain.observed["sb"] == list(range(n))
        assert domain.observed["sc"] == list(range(2 * n))
        assert domain.observed["sd"] == list(range(n))


class TestBatchingAndBackpressure:
    def test_pipelined_ingests_coalesce_under_max_delay(self):
        async def drive():
            service = MonitorService(SyntheticDomain())
            async with serving(service, max_batch=16, max_delay=0.05) as (
                server,
                connect,
            ):
                client = await connect()
                raw = raw_units(0, 1)[0]
                futs = [
                    client.submit("ingest", stream_id=f"s{i % 4}", raw=raw)
                    for i in range(32)
                ]
                envelopes = await asyncio.gather(*futs)
                assert all(env["ok"] for env in envelopes)
                return await client.stats()

        stats = asyncio.run(drive())
        assert stats["completed"] == 32
        assert stats["batches"] < 32  # coalesced, not one batch per request

    def test_max_delay_zero_flushes_immediately(self):
        async def drive():
            service = MonitorService(SyntheticDomain())
            async with serving(service, max_delay=0.0) as (server, connect):
                client = await connect()
                fires = await client.ingest("s", raw_units(0, 1)[0])
                assert isinstance(fires, list)
                return await client.stats()

        stats = asyncio.run(drive())
        assert stats["completed"] == 1

    def test_backpressure_is_explicit_and_accounted(self):
        """The acceptance ledger: accepted + rejected == offered, every
        rejection an explicit `overloaded` error, nothing silently
        dropped, and the queue drains completely."""
        n_offered = 60

        async def drive():
            service = MonitorService(SyntheticDomain())
            async with serving(
                service, max_pending=2, max_batch=2, max_delay=0.01
            ) as (server, connect):
                client = await connect()
                raw = raw_units(0, 1)[0]
                futs = [
                    client.submit("ingest", stream_id="s", raw=raw)
                    for _ in range(n_offered)
                ]
                envelopes = await asyncio.gather(*futs)
                ok = sum(1 for env in envelopes if env["ok"])
                overloaded = [
                    env["error"] for env in envelopes if not env["ok"]
                ]
                assert all(err["type"] == "overloaded" for err in overloaded)
                assert all(
                    err["limit"] == 2 and "pending" in err for err in overloaded
                )
                stats = await client.stats()  # queued after all ingests
                return ok, len(overloaded), stats

        ok, rejected, stats = asyncio.run(drive())
        assert ok >= 1  # at least the first admission succeeded
        assert rejected >= 1  # the tiny bound actually pushed back
        assert ok + rejected == n_offered  # every request answered
        assert stats["offered"] == n_offered
        assert stats["accepted"] == ok
        assert stats["rejected_overload"] == rejected
        assert stats["accepted"] + stats["rejected"] == stats["offered"]
        assert stats["completed"] + stats["failed"] == stats["accepted"]
        assert stats["pending"] == 0  # fully drained


class TestErrorSurface:
    def run(self, coro):
        return asyncio.run(coro)

    def test_malformed_unit_then_broken_session(self):
        async def drive():
            service = MonitorService(ExplodingDomain())
            async with serving(service) as (server, connect):
                client = await connect()
                good = raw_units(0, 1)[0]
                await client.ingest("s", good)
                with pytest.raises(ServiceError) as excinfo:
                    await client.ingest("s", "boom")
                assert excinfo.value.type == "malformed-unit"
                assert excinfo.value.error["stream_id"] == "s"
                # fail-stop: the stream now rejects everything, loudly
                with pytest.raises(ServiceError) as excinfo:
                    await client.ingest("s", good)
                assert excinfo.value.type == "broken-session"
                with pytest.raises(ServiceError) as excinfo:
                    await client.report("s")
                assert excinfo.value.type == "broken-session"
                # eviction clears the slot; the id is usable again
                await client.evict("s")
                assert isinstance(await client.ingest("s", good), list)

        self.run(drive())

    def test_batch_response_names_every_failed_stream(self):
        async def drive():
            service = MonitorService(ExplodingDomain())
            async with serving(service) as (server, connect):
                client = await connect()
                good = raw_units(0, 1)[0]
                result = await client.ingest_batch(
                    [
                        ("ok", good),
                        ("bad1", "boom1"),
                        ("bad2", "boom2"),
                        ("bad1", good),  # skipped: bad1 already broke
                    ]
                )
                assert result["failed_streams"] == ["bad1", "bad2"]
                entries = result["results"]
                assert entries[0]["ok"]
                assert entries[1]["error"]["type"] == "malformed-unit"
                assert "boom1" in entries[1]["error"]["message"]
                assert entries[2]["error"]["type"] == "malformed-unit"
                assert entries[3]["error"]["type"] == "broken-session"

        self.run(drive())

    def test_unknown_stream_and_unknown_domain(self):
        async def drive():
            service = MonitorService(SyntheticDomain())
            async with serving(service) as (server, connect):
                client = await connect()
                with pytest.raises(ServiceError) as excinfo:
                    await client.report("nope")
                assert excinfo.value.type == "unknown-stream"
                with pytest.raises(ServiceError) as excinfo:
                    await client.request("ping", domain="tvnews")
                assert excinfo.value.type == "unknown-domain"
                assert excinfo.value.error["domain"] == "synthetic"

        self.run(drive())

    def test_bad_requests_are_typed_not_dropped(self):
        async def drive():
            service = MonitorService(SyntheticDomain())
            async with serving(service) as (server, connect):
                client = await connect()
                with pytest.raises(ServiceError) as excinfo:
                    await client.request("frobnicate")
                assert excinfo.value.type == "bad-request"
                with pytest.raises(ServiceError) as excinfo:
                    await client.request("ingest")  # missing stream_id/raw
                assert excinfo.value.type == "bad-request"
                # raw garbage on a fresh socket gets an id-less error
                # frame back, not a hangup
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(b"this is not json\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["id"] is None
                assert response["error"]["type"] == "bad-request"
                writer.close()
                await writer.wait_closed()

        self.run(drive())

    def test_ping_and_stats_roundtrip(self):
        async def drive():
            service = MonitorService(SyntheticDomain())
            async with serving(service) as (server, connect):
                client = await connect()
                pong = await client.ping()
                assert pong["domain"] == "synthetic"
                await client.ingest("s", raw_units(0, 1)[0])
                stats = await client.stats()
                assert stats["domain"] == "synthetic"
                assert stats["streams"] == 1
                assert stats["offered"] == stats["accepted"] == 1

        self.run(drive())

    def test_internal_error_answers_every_batched_request(self):
        # A whole-batch service failure (batch wider than the LRU bound)
        # must produce one typed `internal` response per request, and
        # the pending counter must still drain.
        async def drive():
            service = MonitorService(
                SyntheticDomain(), config=ServiceConfig(max_sessions=2)
            )
            async with serving(service, max_delay=0.05) as (server, connect):
                client = await connect()
                raw = raw_units(0, 1)[0]
                futs = [
                    client.submit("ingest", stream_id=f"s{i}", raw=raw)
                    for i in range(3)  # coalesce into one 3-stream batch
                ]
                envelopes = await asyncio.gather(*futs)
                assert all(not env["ok"] for env in envelopes)
                assert all(
                    env["error"]["type"] == "internal" for env in envelopes
                )
                stats = await client.stats()
                assert stats["pending"] == 0
                assert stats["completed"] + stats["failed"] == stats["accepted"]

        self.run(drive())


class TestStreamSnapshotOps:
    """The migration wire ops: ``snapshot_stream`` hands one session
    across servers, ``restore_stream`` re-admits it, and the moved
    stream stays bit-identical to one that never moved."""

    def test_session_handoff_between_two_servers(self):
        T, M = 5, 5
        units = raw_units(31, T + M)

        async def drive():
            source = MonitorService(SyntheticDomain())
            target = MonitorService(SyntheticDomain())
            async with serving(source) as (_, connect_src):
                async with serving(target) as (_, connect_dst):
                    src, dst = await connect_src(), await connect_dst()
                    for raw in units[:T]:
                        await src.ingest("s", raw)
                    snap = await src.snapshot_stream("s")
                    assert snap["stream_id"] == "s"
                    assert snap["n_raw"] == T
                    restored = await dst.restore_stream("s", snap["session"])
                    assert restored["n_raw"] == T
                    await src.evict("s")
                    for raw in units[T:]:
                        await dst.ingest("s", raw)
                    return await dst.report("s")

        report = asyncio.run(drive())
        direct = MonitorService(SyntheticDomain())
        for raw in units:
            direct.ingest("s", raw)
        assert_reports_equal(report, direct.report("s"))

    def test_snapshot_stream_unknown_stream_is_typed(self):
        async def drive():
            async with serving(MonitorService(SyntheticDomain())) as (
                _,
                connect,
            ):
                client = await connect()
                with pytest.raises(ServiceError) as err:
                    await client.snapshot_stream("ghost")
                return err.value

        assert asyncio.run(drive()).type == "unknown-stream"

    def test_restore_stream_refuses_to_clobber_a_live_stream(self):
        async def drive():
            async with serving(MonitorService(SyntheticDomain())) as (
                _,
                connect,
            ):
                client = await connect()
                await client.ingest("s", raw_units(4, 1)[0])
                snap = await client.snapshot_stream("s")
                with pytest.raises(ServiceError) as err:
                    await client.restore_stream("s", snap["session"])
                return err.value

        error = asyncio.run(drive())
        assert error.type == "bad-request"
        assert "live" in str(error)


class TestApplySuiteOverWire:
    def test_wire_apply_suite_matches_direct(self):
        from tests.serve.test_apply_suite import crowded_entry

        domain = MonitorService("tvnews").domain
        new_suite = domain.assertion_suite().with_entry(crowded_entry())
        world = domain.build_world(derive_seed(3, "wire-suite", 0))
        units = [
            next(stream)
            for stream in [domain.iter_stream(world)]
            for _ in range(4)
        ]

        async def drive():
            async with serving(MonitorService("tvnews")) as (_, connect):
                client = await connect()
                for raw in units[:2]:
                    await client.ingest("s", raw)
                diffs = (await client.apply_suite(new_suite, tick=2))["streams"]
                assert diffs["s"]["added"] == ["crowded"]
                with pytest.raises(ServiceError) as err:
                    await client.apply_suite(new_suite, tick=99)
                for raw in units[2:]:
                    await client.ingest("s", raw)
                return err.value, await client.report("s")

        error, report = asyncio.run(drive())
        assert error.type == "bad-request"
        assert "crowded" in report.assertion_names

    def test_undecodable_suite_payload_is_bad_request(self):
        async def drive():
            async with serving(MonitorService(SyntheticDomain())) as (
                _,
                connect,
            ):
                client = await connect()
                with pytest.raises(ServiceError) as err:
                    await client.request("apply_suite", suite={"nope": 1})
                return err.value

        error = asyncio.run(drive())
        assert error.type == "bad-request"
        assert "does not decode" in str(error)
        assert "dict" in str(error)


class TestPerStreamStats:
    def test_stats_break_down_by_stream_and_expose_session_units(self):
        async def drive():
            service = MonitorService(ExplodingDomain())
            async with serving(service) as (_, connect):
                client = await connect()
                good = raw_units(8, 3)
                for raw in good:
                    await client.ingest("ok", raw)
                await client.ingest("doomed", good[0])
                with pytest.raises(ServiceError):
                    await client.ingest("doomed", "malformed")
                return await client.stats()

        stats = asyncio.run(drive())
        assert stats["per_stream"] == {
            "ok": {"completed": 3, "failed": 0},
            "doomed": {"completed": 1, "failed": 1},
        }
        # sessions maps live streams to consumed raw units; the broken
        # stream is still live (fail-stop, not evicted) at 1 unit
        assert stats["sessions"] == {"ok": 3, "doomed": 1}
        assert sum(e["completed"] for e in stats["per_stream"].values()) == (
            stats["completed"]
        )


class TestReconnectingClient:
    def test_survives_a_server_bounce_mid_run(self):
        """Regression: a ReconnectingClient keeps working across a full
        server stop/start on the same port, redialing and resending; the
        final report matches an unbounced run."""
        T, M = 4, 4
        units = raw_units(22, T + M)

        async def drive():
            service = MonitorService(SyntheticDomain())
            server = MonitorServer(service, ServerConfig())
            await server.start()
            port = server.port
            client = await ReconnectingClient.connect(
                "127.0.0.1", port, retries=10, backoff=0.02
            )
            try:
                for raw in units[:T]:
                    await client.ingest("s", raw)
                await server.stop()  # the bounce

                async def revive():
                    await asyncio.sleep(0.1)
                    revived = MonitorServer(
                        service, ServerConfig(host="127.0.0.1", port=port)
                    )
                    await revived.start()
                    return revived

                revive_task = asyncio.create_task(revive())
                # issued while the server is DOWN: redial + resend
                for raw in units[T:]:
                    await client.ingest("s", raw)
                report = await client.report("s")
                server = await revive_task
                return report
            finally:
                await client.close()
                await server.stop()

        report = asyncio.run(drive())
        direct = MonitorService(SyntheticDomain())
        for raw in units:
            direct.ingest("s", raw)
        assert_reports_equal(report, direct.report("s"))

    def test_service_errors_are_not_retried(self):
        async def drive():
            async with serving(MonitorService(SyntheticDomain())) as (
                server,
                _connect,
            ):
                client = await ReconnectingClient.connect(
                    server.host, server.port
                )
                try:
                    with pytest.raises(ServiceError) as err:
                        await client.report("ghost")
                    return err.value, (await client.stats())["offered"]
                finally:
                    await client.close()

        error, offered = asyncio.run(drive())
        assert error.type == "unknown-stream"
        assert offered == 0

    def test_exhausted_retries_raise_connection_lost(self):
        async def drive():
            # a port nothing listens on
            probe = MonitorServer(MonitorService(SyntheticDomain()))
            await probe.start()
            port = probe.port
            await probe.stop()
            with pytest.raises(ConnectionLostError) as err:
                await ReconnectingClient.connect(
                    "127.0.0.1", port, retries=2, backoff=0.01
                )
            return err.value

        error = asyncio.run(drive())
        assert error.attempts == 2
        assert isinstance(error.last_error, OSError)

    def test_request_exhaustion_after_losing_the_server_for_good(self):
        async def drive():
            service = MonitorService(SyntheticDomain())
            server = MonitorServer(service, ServerConfig())
            await server.start()
            client = await ReconnectingClient.connect(
                "127.0.0.1", server.port, retries=2, backoff=0.01
            )
            try:
                await client.ingest("s", raw_units(1, 1)[0])
                await server.stop()  # ...and never comes back
                with pytest.raises(ConnectionLostError) as err:
                    await client.ingest("s", raw_units(1, 2)[1])
                return err.value
            finally:
                await client.close()

        error = asyncio.run(drive())
        assert error.attempts == 2
        assert error.last_error is not None
