"""Tests for repro.geometry.iou."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.box2d import Box2D, make_box
from repro.geometry.iou import iou_matrix, iou_pairwise, match_boxes


def boxes_strategy(n):
    coord = st.floats(min_value=0, max_value=50, allow_nan=False)
    size = st.floats(min_value=0.5, max_value=20, allow_nan=False)
    return st.lists(
        st.tuples(coord, coord, size, size).map(lambda t: make_box(*t)),
        min_size=n,
        max_size=n + 3,
    )


class TestIoUMatrix:
    def test_identity(self):
        box = Box2D(0, 0, 2, 2)
        assert np.isclose(iou_matrix([box], [box])[0, 0], 1.0)

    def test_disjoint(self):
        a = Box2D(0, 0, 1, 1)
        b = Box2D(5, 5, 6, 6)
        assert iou_matrix([a], [b])[0, 0] == 0.0

    def test_half_overlap(self):
        a = Box2D(0, 0, 2, 2)
        b = Box2D(1, 0, 3, 2)
        # inter = 2, union = 6
        assert np.isclose(iou_matrix([a], [b])[0, 0], 2 / 6)

    def test_contained(self):
        outer = Box2D(0, 0, 4, 4)
        inner = Box2D(1, 1, 3, 3)
        assert np.isclose(iou_matrix([outer], [inner])[0, 0], 4 / 16)

    def test_empty_inputs(self):
        assert iou_matrix([], [Box2D(0, 0, 1, 1)]).shape == (0, 1)
        assert iou_matrix([Box2D(0, 0, 1, 1)], []).shape == (1, 0)

    @given(a=boxes_strategy(1), b=boxes_strategy(1))
    def test_symmetry_and_range(self, a, b):
        m = iou_matrix(a, b)
        assert np.all(m >= 0) and np.all(m <= 1 + 1e-12)
        assert np.allclose(m, iou_matrix(b, a).T)


class TestIoUPairwise:
    def test_matches_matrix_diagonal(self, rng):
        boxes_a = [make_box(rng.uniform(0, 20), rng.uniform(0, 20), 5, 5) for _ in range(4)]
        boxes_b = [make_box(rng.uniform(0, 20), rng.uniform(0, 20), 5, 5) for _ in range(4)]
        pair = iou_pairwise(boxes_a, boxes_b)
        full = iou_matrix(boxes_a, boxes_b)
        assert np.allclose(pair, np.diag(full))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            iou_pairwise([Box2D(0, 0, 1, 1)], [])


class TestMatchBoxes:
    def test_greedy_one_to_one(self):
        gt = [Box2D(0, 0, 2, 2), Box2D(10, 10, 12, 12)]
        preds = [Box2D(0, 0, 2, 2), Box2D(0.2, 0, 2.2, 2), Box2D(10, 10, 12, 12)]
        matches = match_boxes(preds, gt)
        assert len(matches) == 2
        matched_preds = {m[0] for m in matches}
        assert matched_preds == {0, 2}  # duplicate pred 1 left unmatched

    def test_threshold_filters(self):
        a = [Box2D(0, 0, 2, 2)]
        b = [Box2D(1.5, 0, 3.5, 2)]  # IoU = 0.5/3.5 ≈ 0.14
        assert match_boxes(a, b, iou_threshold=0.5) == []
        assert len(match_boxes(a, b, iou_threshold=0.1)) == 1

    def test_empty(self):
        assert match_boxes([], []) == []
