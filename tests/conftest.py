"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.types import StreamItem


@pytest.fixture
def rng():
    """A fresh, fixed-seed generator per test."""
    return np.random.default_rng(12345)


def make_items(outputs_per_item, timestamps=None):
    """Build StreamItems from raw output lists (helper used across tests)."""
    n = len(outputs_per_item)
    ts = timestamps if timestamps is not None else list(range(n))
    return [
        StreamItem(index=i, timestamp=float(ts[i]), outputs=tuple(outputs_per_item[i]))
        for i in range(n)
    ]
