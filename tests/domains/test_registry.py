"""The unified ``Domain`` contract: registry resolution and per-domain
conformance (build_monitor / build_world / iter_stream / item_from_raw)."""

import itertools

import numpy as np
import pytest

from repro.domains.registry import (
    Domain,
    MonitorRun,
    RawItem,
    domain_names,
    get_domain,
    register_domain,
)


class TestRegistry:
    def test_all_four_domains_registered(self):
        assert domain_names() == ["av", "ecg", "tvnews", "video"]

    def test_get_domain_returns_instances(self):
        for name in domain_names():
            domain = get_domain(name)
            assert isinstance(domain, Domain)
            assert domain.name == name

    def test_unknown_domain_is_a_keyerror_listing_known_names(self):
        with pytest.raises(KeyError, match="tvnews"):
            get_domain("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_domain("video")
            class Impostor(Domain):  # pragma: no cover - never used
                def build_monitor(self, config=None):
                    raise NotImplementedError

                def build_world(self, seed=0):
                    raise NotImplementedError

                def iter_stream(self, world):
                    raise NotImplementedError

                def item_from_raw(self, raw, state=None):
                    raise NotImplementedError

    def test_register_domain_rejects_non_domain(self):
        with pytest.raises(TypeError):
            register_domain("thing")(object)

    def test_build_monitor_assertion_sets(self):
        expected = {
            "video": ["multibox", "flicker", "appear"],
            "av": ["agree", "multibox"],
            "tvnews": ["news:attr:identity", "news:attr:gender", "news:attr:hair"],
            "ecg": ["ECG"],
        }
        for name, names in expected.items():
            assert get_domain(name).build_monitor().database.names() == names

    def test_build_monitor_returns_fresh_runtimes(self):
        domain = get_domain("video")
        assert domain.build_monitor() is not domain.build_monitor()

    def test_build_pipeline_contract(self):
        # part of the declared contract: pipeline-backed domains return
        # their offline pipeline; the ecg domain (runtime-only) says so.
        for name in ("av", "video", "tvnews"):
            assert get_domain(name).build_pipeline() is not None
        with pytest.raises(NotImplementedError, match="build_monitor"):
            get_domain("ecg").build_pipeline()


class TestMonitorRunShape:
    """Satellite: every pipeline's monitor returns report + details."""

    def test_tvnews_monitor_matches_av_shape(self):
        from repro.worlds.tvnews import TVNewsWorld

        scenes = TVNewsWorld(seed=5).generate_video(0, 120.0)
        run = get_domain("tvnews").build_pipeline().monitor(scenes)
        assert isinstance(run, MonitorRun)
        assert run.report.n_items == len(run.items)
        # the old tuple-unpacking call sites keep working
        report, items = run
        assert report is run.report and items is run.items

    def test_video_monitor_is_a_monitor_run(self):
        from repro.geometry.box2d import make_box

        frames = [[make_box(10 + t, 20, 10, 8, label="car", score=0.9)] for t in range(4)]
        run = get_domain("video").build_pipeline().monitor(frames)
        assert isinstance(run, MonitorRun)
        assert run.report.severities.shape == (4, 3)


class TestTVNewsDomainStream:
    def test_item_from_raw_expands_scenes_and_matches_offline(self):
        domain = get_domain("tvnews")
        world = domain.build_world(seed=11)
        raws = list(itertools.islice(domain.iter_stream(world), 8))

        monitor = domain.build_monitor()
        state = domain.new_state()
        expanded = []
        for raw in raws:
            for outputs, timestamp in domain.item_from_raw(raw, state):
                monitor.observe(None, outputs, timestamp=timestamp)
                expanded.append((outputs, timestamp))
        online = monitor.online_report()
        assert online.n_items == len(expanded) > len(raws)  # scenes expand

        # offline monitor over the same normalized items: bit-identical
        from repro.core.types import StreamItem

        items = [
            StreamItem(index=i, timestamp=ts, outputs=tuple(outputs))
            for i, (outputs, ts) in enumerate(expanded)
        ]
        offline = domain.build_monitor().monitor(items)
        np.testing.assert_array_equal(online.severities, offline.severities)

    def test_streams_are_deterministic_per_seed(self):
        domain = get_domain("tvnews")
        first = list(itertools.islice(domain.iter_stream(domain.build_world(3)), 3))
        second = list(itertools.islice(domain.iter_stream(domain.build_world(3)), 3))
        for a, b in zip(first, second):
            assert len(a.observations) == len(b.observations)
            assert a.start_time == b.start_time


class TestEcgDomainStream:
    def test_records_concatenate_with_threshold_padding(self):
        domain = get_domain("ecg")
        world = domain.build_world(seed=2)
        raws = list(itertools.islice(domain.iter_stream(world), 3))
        state = domain.new_state()
        all_items = [domain.item_from_raw(raw, state) for raw in raws]
        # the padding keeps records from overlapping in time
        for previous, current in zip(all_items, all_items[1:]):
            gap = current[0].timestamp - previous[-1].timestamp
            assert gap >= domain.config.temporal_threshold

    def test_stateful_domains_reject_missing_state(self):
        # A silently-fresh tracker/offset per call would corrupt results;
        # the stateful domains refuse instead.
        with pytest.raises(ValueError, match="stateful"):
            get_domain("video").item_from_raw([])
        with pytest.raises(ValueError, match="stateful"):
            get_domain("ecg").item_from_raw({"record": None, "classes": []})

    def test_outputs_are_window_classes(self):
        domain = get_domain("ecg")
        world = domain.build_world(seed=2)
        raw = next(iter(domain.iter_stream(world)))
        items = domain.item_from_raw(raw, domain.new_state())
        assert len(items) == raw["record"].n_windows
        assert all(isinstance(item, RawItem) for item in items)
        assert set(items[0].outputs[0]) == {"class"}


class TestRemovedShims:
    """The PR-3 deprecation shims are gone; the protocol is the only path."""

    def test_bespoke_surfaces_are_removed(self):
        from repro.domains import ecg as ecg_pkg
        from repro.domains.av import AVPipeline
        from repro.domains.tvnews import TVNewsPipeline
        from repro.domains.video import VideoPipeline

        assert not hasattr(VideoPipeline, "observe_frame")
        assert not hasattr(AVPipeline, "observe_sample")
        assert not hasattr(TVNewsPipeline, "observe_scenes")
        assert not hasattr(ecg_pkg.task, "make_ecg_monitor")
        assert not hasattr(ecg_pkg.task, "stream_record_severity")
