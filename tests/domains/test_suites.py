"""Declarative suites vs. the hand-built monitors, per domain.

The acceptance bar for the spec layer: for all four domains, a monitor
compiled from ``domain.assertion_suite()`` produces a severity matrix
bit-identical to the pre-spec hand-built monitor (kept behind the
``legacy_monitor`` deprecation shim) on seeded worlds. Plus the Table 5
taxonomy audit: no built-in assertion ships on the ``"custom"`` default.
"""

import itertools
import warnings

import numpy as np
import pytest

from repro.core.spec import compile_suite, lint_suite
from repro.core.taxonomy import ASSERTION_CLASSES
from repro.core.types import StreamItem
from repro.domains.registry import domain_names, get_domain

#: Raw units consumed per world; small where the world needs a model.
UNITS = {"av": 5, "ecg": 3, "tvnews": 5, "video": 25}
SEEDS = (0, 1, 2)


def normalized_items(domain, seed: int, n_units: int) -> list:
    """Raw units → stream items, through the domain's own adapter."""
    world = domain.build_world(seed=seed)
    state = domain.new_state()
    items: list = []
    for raw in itertools.islice(domain.iter_stream(world), n_units):
        for outputs, timestamp in domain.item_from_raw(raw, state):
            items.append(
                StreamItem(
                    index=len(items),
                    timestamp=(
                        timestamp if timestamp is not None else float(len(items))
                    ),
                    outputs=tuple(outputs),
                )
            )
    return items


def legacy_monitor(domain):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return domain.legacy_monitor()


class TestSuiteEquivalence:
    @pytest.mark.parametrize("name", sorted(UNITS))
    def test_compiled_suite_matches_hand_built_monitor(self, name):
        domain = get_domain(name)
        suite = domain.assertion_suite()
        for seed in SEEDS:
            compiled = domain.build_monitor()
            reference = legacy_monitor(domain)
            assert (
                compiled.database.names() == reference.database.names()
            ), "suite must preserve the assertion registration order"
            items = normalized_items(domain, seed, UNITS[name])
            a = compiled.monitor(items)
            b = reference.monitor(items)
            np.testing.assert_array_equal(
                a.severities,
                b.severities,
                err_msg=f"{name} seed {seed}: compiled suite diverged",
            )
        # build_monitor is the compiled path: same database as an
        # explicit compile of the same suite.
        assert (
            domain.build_monitor().database.names()
            == compile_suite(suite).names()
        )

    def test_build_monitor_embeds_the_suite(self):
        for name in domain_names():
            domain = get_domain(name)
            monitor = domain.build_monitor()
            assert monitor.suite == domain.assertion_suite()
            assert monitor.snapshot()["suite"] is not None

    def test_legacy_monitor_warns(self):
        with pytest.warns(DeprecationWarning, match="assertion_suite"):
            get_domain("ecg").legacy_monitor()


class TestTaxonomyAudit:
    """Satellite: Table 5 classes on every built-in assertion."""

    def test_no_builtin_assertion_reports_the_custom_default(self):
        for name in domain_names():
            database = get_domain(name).build_monitor().database
            for assertion_name in database.all_names():
                taxonomy = database.get(assertion_name).taxonomy_class
                assert taxonomy != "custom", (
                    f"{name}:{assertion_name} ships the 'custom' default"
                )
                assert taxonomy in ASSERTION_CLASSES, (
                    f"{name}:{assertion_name} reports unknown class {taxonomy!r}"
                )

    def test_pipeline_built_assertions_match_the_audit_too(self):
        # The legacy hand-built monitors must agree with the audit —
        # the suites re-declare, not re-classify.
        for name in domain_names():
            database = legacy_monitor(get_domain(name)).database
            for assertion_name in database.all_names():
                assert database.get(assertion_name).taxonomy_class in ASSERTION_CLASSES

    def test_builtin_suites_lint_clean(self):
        for name in domain_names():
            assert lint_suite(get_domain(name).assertion_suite()) == []
