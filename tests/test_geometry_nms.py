"""Tests for repro.geometry.nms."""

import numpy as np
import pytest

from repro.geometry.box2d import Box2D
from repro.geometry.nms import non_max_suppression


class TestNMS:
    def test_keeps_highest_scoring_duplicate(self):
        boxes = [Box2D(0, 0, 2, 2), Box2D(0.1, 0, 2.1, 2)]
        keep = non_max_suppression(boxes, np.array([0.9, 0.5]), iou_threshold=0.5)
        assert keep.tolist() == [0]

    def test_keeps_disjoint(self):
        boxes = [Box2D(0, 0, 2, 2), Box2D(10, 10, 12, 12)]
        keep = non_max_suppression(boxes, np.array([0.4, 0.9]), iou_threshold=0.5)
        assert sorted(keep.tolist()) == [0, 1]

    def test_result_sorted_by_score(self):
        boxes = [Box2D(0, 0, 2, 2), Box2D(10, 10, 12, 12), Box2D(20, 20, 22, 22)]
        keep = non_max_suppression(boxes, np.array([0.2, 0.9, 0.5]), 0.5)
        assert keep.tolist() == [1, 2, 0]

    def test_threshold_boundary_not_suppressed(self):
        # IoU exactly at threshold must NOT suppress (strict inequality).
        a = Box2D(0, 0, 2, 2)
        b = Box2D(1, 0, 3, 2)  # IoU = 1/3
        keep = non_max_suppression([a, b], np.array([0.9, 0.8]), iou_threshold=1 / 3)
        assert sorted(keep.tolist()) == [0, 1]

    def test_per_class_exemption(self):
        boxes = [Box2D(0, 0, 2, 2), Box2D(0.1, 0, 2.1, 2)]
        scores = np.array([0.9, 0.8])
        keep = non_max_suppression(boxes, scores, 0.3, class_ids=np.array([0, 1]))
        assert sorted(keep.tolist()) == [0, 1]
        keep_same = non_max_suppression(boxes, scores, 0.3, class_ids=np.array([0, 0]))
        assert keep_same.tolist() == [0]

    def test_empty(self):
        assert non_max_suppression([], np.zeros(0)).shape == (0,)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            non_max_suppression([Box2D(0, 0, 1, 1)], np.array([0.5, 0.4]))

    def test_chain_suppression_is_greedy(self):
        # a overlaps b, b overlaps c, a does not overlap c: greedy keeps a and c.
        a = Box2D(0, 0, 2, 2)
        b = Box2D(1.2, 0, 3.2, 2)
        c = Box2D(2.6, 0, 4.6, 2)
        keep = non_max_suppression([a, b, c], np.array([0.9, 0.8, 0.7]), 0.2)
        assert sorted(keep.tolist()) == [0, 2]
