"""Consistent-hash ring and routing-table semantics: deterministic
ownership from the stream id alone, uniform spread, minimal remap on
resize, and the pin layer migrations flip."""

import pytest

from repro.fleet.ring import HashRing, RoutingTable, stable_hash

KEYS = [f"stream-{i}" for i in range(4000)]


class TestStableHash:
    def test_is_a_pure_function_of_the_key(self):
        assert stable_hash("s0") == stable_hash("s0")
        assert stable_hash("s0") != stable_hash("s1")

    def test_pins_exact_values_across_processes(self):
        # blake2b is process-stable by construction; pin two values so a
        # hash-function change can never slip in silently (it would
        # re-home every stream of every deployed fleet).
        assert stable_hash("stream-0") == 0x57B057691E938340
        assert stable_hash("") == 0xE4A6A0577479B2B4


class TestHashRing:
    def test_ownership_is_deterministic_from_the_key_alone(self):
        a = HashRing(["shard-0", "shard-1", "shard-2"])
        b = HashRing(["shard-2", "shard-0", "shard-1"])  # order irrelevant
        for key in KEYS[:500]:
            owner = a.owner(key)
            assert owner == b.owner(key)
            assert owner == a.owner(key)  # stable on re-ask

    def test_spread_is_roughly_uniform(self):
        n_shards = 4
        ring = HashRing([f"shard-{i}" for i in range(n_shards)], replicas=64)
        counts = ring.spread(KEYS)
        expected = len(KEYS) / n_shards
        # A chi-square-style bound: every shard within 50% of the ideal
        # share. With 64 vnodes/shard the observed skew is far smaller;
        # this guards against a degenerate ring (e.g. unsorted points).
        for shard, count in counts.items():
            assert 0.5 * expected < count < 1.5 * expected, counts

    @pytest.mark.parametrize("n_before", [2, 4, 8])
    def test_adding_a_shard_remaps_less_than_2_over_n(self, n_before):
        before = HashRing([f"shard-{i}" for i in range(n_before)])
        after = HashRing([f"shard-{i}" for i in range(n_before + 1)])
        moved = sum(1 for key in KEYS if before.owner(key) != after.owner(key))
        n_after = n_before + 1
        assert moved / len(KEYS) < 2.0 / n_after, (
            f"{moved}/{len(KEYS)} keys moved growing {n_before}->{n_after}"
        )
        # ...and every moved key landed on the new shard, nowhere else.
        for key in KEYS:
            if before.owner(key) != after.owner(key):
                assert after.owner(key) == f"shard-{n_before}"

    def test_removing_a_shard_only_remaps_its_own_keys(self):
        ring = HashRing(["shard-0", "shard-1", "shard-2"])
        owners_before = {key: ring.owner(key) for key in KEYS}
        ring.remove_shard("shard-1")
        for key in KEYS:
            if owners_before[key] != "shard-1":
                assert ring.owner(key) == owners_before[key]
            else:
                assert ring.owner(key) != "shard-1"

    def test_add_remove_round_trip_restores_ownership(self):
        ring = HashRing(["shard-0", "shard-1"])
        owners = {key: ring.owner(key) for key in KEYS[:500]}
        ring.add_shard("shard-2")
        ring.remove_shard("shard-2")
        assert owners == {key: ring.owner(key) for key in KEYS[:500]}

    def test_snapshot_round_trip(self):
        ring = HashRing(["a", "b", "c"], replicas=32)
        clone = HashRing.restore(ring.snapshot())
        assert clone.shards == ring.shards
        assert clone.replicas == 32
        for key in KEYS[:200]:
            assert clone.owner(key) == ring.owner(key)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one shard"):
            HashRing([])
        with pytest.raises(ValueError, match="duplicate"):
            HashRing(["a", "a"])
        with pytest.raises(ValueError, match="replicas"):
            HashRing(["a"], replicas=0)
        ring = HashRing(["a", "b"])
        with pytest.raises(ValueError, match="already"):
            ring.add_shard("a")
        with pytest.raises(ValueError, match="not on the ring"):
            ring.remove_shard("zz")
        ring.remove_shard("b")
        with pytest.raises(ValueError, match="last shard"):
            ring.remove_shard("a")


class TestRoutingTable:
    def test_pin_overrides_the_ring_for_one_stream_only(self):
        table = RoutingTable(HashRing(["shard-0", "shard-1"]))
        key = next(k for k in KEYS if table.ring.owner(k) == "shard-0")
        other = next(k for k in KEYS if table.ring.owner(k) == "shard-0" and k != key)
        table.pin(key, "shard-1")
        assert table.owner(key) == "shard-1"
        assert table.owner(other) == "shard-0"
        assert table.pins == {key: "shard-1"}

    def test_pinning_home_drops_the_pin(self):
        table = RoutingTable(HashRing(["shard-0", "shard-1"]))
        key = next(k for k in KEYS if table.ring.owner(k) == "shard-0")
        table.pin(key, "shard-1")
        table.pin(key, "shard-0")  # migrated back home
        assert table.pins == {}
        assert table.owner(key) == "shard-0"

    def test_unpin_restores_ring_ownership(self):
        table = RoutingTable(HashRing(["shard-0", "shard-1"]))
        key = next(k for k in KEYS if table.ring.owner(k) == "shard-1")
        table.pin(key, "shard-0")
        table.unpin(key)
        assert table.owner(key) == "shard-1"

    def test_pin_to_unknown_shard_rejected(self):
        table = RoutingTable(HashRing(["shard-0"]))
        with pytest.raises(ValueError, match="not on the ring"):
            table.pin("s", "ghost")
        with pytest.raises(ValueError, match="not on the ring"):
            RoutingTable(HashRing(["shard-0"]), pins={"s": "ghost"})

    def test_snapshot_round_trip_keeps_pins(self):
        table = RoutingTable(HashRing(["shard-0", "shard-1"], replicas=16))
        key = next(k for k in KEYS if table.ring.owner(k) == "shard-0")
        table.pin(key, "shard-1")
        clone = RoutingTable.restore(table.snapshot())
        assert clone.pins == {key: "shard-1"}
        for probe in KEYS[:200]:
            assert clone.owner(probe) == table.owner(probe)
