"""Coordinated fleet snapshot/restore: a mid-run snapshot restored onto
a *fresh* fleet (new servers, new router) continues bit-identically to
the uninterrupted run, pins survive, and every format-mismatch path
fails loudly at the boundary."""

import asyncio
import json

import pytest

from repro.fleet import (
    FLEET_SNAPSHOT_FORMAT,
    SnapshotFormatError,
    fleet_snapshot_payload,
    load_fleet_snapshot,
    save_fleet_snapshot,
    validate_fleet_payload,
)
from repro.serve import MonitorService, ServiceError
from tests.fleet.test_router import STREAMS, sharded
from tests.serve.test_service import (
    SyntheticDomain,
    assert_reports_equal,
    raw_units,
)

T, M = 4, 4


class TestCoordinatedSnapshotRestore:
    def test_restored_fresh_fleet_continues_bit_identically(self):
        units = {sid: raw_units(90 + k, T + M) for k, sid in enumerate(STREAMS)}

        async def interrupted():
            async with sharded() as (router, servers, connect):
                client = await connect()
                for i in range(T):
                    await client.ingest_batch(
                        [(sid, units[sid][i]) for sid in STREAMS]
                    )
                # pin one stream off its ring home first, so the restore
                # has routing state to carry, not just sessions
                moved = STREAMS[0]
                target = next(
                    n for n in servers if n != router.table.owner(moved)
                )
                await client.request("migrate", stream_id=moved, to=target)
                payload = await client.snapshot()
                return json.loads(json.dumps(payload)), moved, target

        payload, moved, target = asyncio.run(interrupted())
        assert payload["kind"] == "fleet"
        assert payload["format"] == FLEET_SNAPSHOT_FORMAT
        assert sorted(payload["shards"]) == ["shard-0", "shard-1"]

        async def resumed():
            async with sharded() as (router, servers, connect):
                client = await connect()
                restored = await client.restore(payload)
                assert restored == sorted(STREAMS)
                # the pin flowed through the routing snapshot
                assert router.table.pins == {moved: target}
                for i in range(T, T + M):
                    await client.ingest_batch(
                        [(sid, units[sid][i]) for sid in STREAMS]
                    )
                assert moved in servers[target].service
                reports = {sid: await client.report(sid) for sid in STREAMS}
                fleet = await client.fleet_report()
                return reports, fleet

        reports, fleet = asyncio.run(resumed())

        direct = MonitorService(SyntheticDomain())
        for i in range(T + M):
            for sid in STREAMS:
                direct.ingest(sid, units[sid][i])
        for sid in STREAMS:
            assert_reports_equal(reports[sid], direct.report(sid))
        direct_fleet = direct.fleet_report()
        assert list(fleet.stream_reports) == list(direct_fleet.stream_reports)
        assert_reports_equal(fleet.aggregate, direct_fleet.aggregate)

    def test_in_process_snapshot_helpers_round_trip(self, tmp_path):
        units = {sid: raw_units(17 + k, T) for k, sid in enumerate(STREAMS[:2])}
        path = str(tmp_path / "fleet.json")

        async def drive():
            async with sharded() as (router, servers, connect):
                client = await connect()
                for i in range(T):
                    for sid in units:
                        await client.ingest(sid, units[sid][i])
                payload = await router.fleet_snapshot()
                save_fleet_snapshot(payload, path)
            loaded = load_fleet_snapshot(path)
            async with sharded() as (router, servers, connect):
                await router.restore_fleet(loaded)
                client = await connect()
                stats = await client.stats()
                return stats

        stats = asyncio.run(drive())
        assert stats["sessions"] == {sid: T for sid in units}


class TestFormatValidation:
    def payload(self):
        service = MonitorService(SyntheticDomain())
        service.ingest("s", raw_units(0, 1)[0])
        from repro.fleet.ring import HashRing, RoutingTable

        return fleet_snapshot_payload(
            "synthetic",
            RoutingTable(HashRing(["shard-0"])),
            {"shard-0": service.snapshot()},
        )

    def test_valid_payload_passes(self):
        assert validate_fleet_payload(self.payload())["kind"] == "fleet"

    def test_wrong_format_version_is_loud(self):
        bad = dict(self.payload(), format=FLEET_SNAPSHOT_FORMAT + 1)
        with pytest.raises(SnapshotFormatError) as err:
            validate_fleet_payload(bad)
        assert err.value.found == FLEET_SNAPSHOT_FORMAT + 1
        assert err.value.supported == FLEET_SNAPSHOT_FORMAT
        assert "unsupported fleet snapshot format" in str(err.value)

    def test_service_payload_is_identified_by_hint(self):
        service_payload = MonitorService(SyntheticDomain()).snapshot()
        with pytest.raises(SnapshotFormatError, match="MonitorService snapshot"):
            validate_fleet_payload(service_payload)

    def test_non_dict_and_missing_sections(self):
        with pytest.raises(SnapshotFormatError, match="expected a JSON object"):
            validate_fleet_payload([1, 2])
        truncated = self.payload()
        del truncated["routing"]
        with pytest.raises(SnapshotFormatError, match="'routing' section"):
            validate_fleet_payload(truncated)

    def test_load_names_the_file_on_mismatch(self, tmp_path):
        path = tmp_path / "stale.json"
        path.write_text(json.dumps({"format": 99, "kind": "fleet"}))
        with pytest.raises(SnapshotFormatError, match="stale.json"):
            load_fleet_snapshot(str(path))
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        with pytest.raises(SnapshotFormatError, match="not valid JSON"):
            load_fleet_snapshot(str(garbled))

    def test_save_refuses_invalid_payloads(self, tmp_path):
        with pytest.raises(SnapshotFormatError):
            save_fleet_snapshot({"kind": "fleet"}, str(tmp_path / "x.json"))
        assert not (tmp_path / "x.json").exists()


class TestRestoreGuards:
    def test_router_rejects_wrong_domain_and_unknown_shards(self):
        async def drive():
            async with sharded() as (router, servers, connect):
                client = await connect()
                await client.ingest("s", raw_units(5, 1)[0])
                payload = await client.snapshot()

                wrong_domain = dict(payload, domain="tvnews")
                with pytest.raises(ServiceError) as domain_err:
                    await client.restore(wrong_domain)

                alien = dict(
                    payload,
                    shards=dict(payload["shards"], **{"shard-9": payload["shards"]["shard-0"]}),
                )
                with pytest.raises(ServiceError) as shard_err:
                    await client.restore(alien)

                with pytest.raises(ServiceError) as format_err:
                    await client.restore({"kind": "fleet", "format": 99,
                                          "domain": "synthetic", "routing": {},
                                          "shards": {}})
                # the fleet still serves after every rejected restore
                report = await client.report("s")
                return domain_err.value, shard_err.value, format_err.value, report

        domain_err, shard_err, format_err, report = asyncio.run(drive())
        assert domain_err.type == "unknown-domain"
        assert shard_err.type == "bad-request"
        assert "shard-9" in str(shard_err)
        assert format_err.type == "bad-request"
        assert format_err.error.get("found") == 99
        assert report.n_items > 0
