"""Live snapshot-based migration: the headline acceptance of the
sharded fleet. A migrated stream's fires, reports, and fleet aggregate
must be bit-identical to a never-migrated run — including migrations
straddling an ``apply_suite`` reconfiguration and a client-side model
hot-swap — and every failure mode must leave the stream serving."""

import asyncio

import numpy as np
import pytest

from repro.core.seeding import derive_seed
from repro.domains.registry import get_domain
from repro.serve import MonitorService, ServiceError
from tests.fleet.test_router import STREAMS, sharded
from tests.serve.test_apply_suite import crowded_entry
from tests.serve.test_service import (
    SyntheticDomain,
    assert_reports_equal,
    raw_units,
)

T, M = 5, 5  # units per stream before / after the boundary


def fire_keys(records):
    return [(r.assertion_name, r.item_index, r.severity) for r in records]


def direct_reference(units):
    """An unsharded service fed the same per-stream unit order."""
    service = MonitorService(SyntheticDomain())
    for i in range(T + M):
        for sid in units:
            service.ingest(sid, units[sid][i])
    return service


class TestMigrationBitIdentity:
    def test_midrun_migration_matches_never_migrated_run(self):
        units = {sid: raw_units(70 + k, T + M) for k, sid in enumerate(STREAMS)}

        async def drive():
            async with sharded() as (router, servers, connect):
                client = await connect()
                for i in range(T):
                    await client.ingest_batch(
                        [(sid, units[sid][i]) for sid in STREAMS]
                    )
                moved_sid = STREAMS[0]
                source = router.table.owner(moved_sid)
                target = next(
                    name for name in servers if name != source
                )
                move = await client.request(
                    "migrate", stream_id=moved_sid, to=target, tick=T
                )
                assert move == {
                    "stream_id": moved_sid,
                    "from": source,
                    "to": target,
                    "moved": True,
                    "n_raw": T,
                }
                # the session now lives on the target, and only there
                assert moved_sid in servers[target].service
                assert moved_sid not in servers[source].service

                post_fires = []
                for i in range(T, T + M):
                    post_fires.extend(await client.ingest(moved_sid, units[moved_sid][i]))
                    for sid in STREAMS[1:]:
                        await client.ingest(sid, units[sid][i])
                reports = {sid: await client.report(sid) for sid in STREAMS}
                fleet = await client.fleet_report()
                stats = await client.stats()
                return post_fires, reports, fleet, stats, moved_sid, target

        post_fires, reports, fleet, stats, moved_sid, target = asyncio.run(drive())

        direct = MonitorService(SyntheticDomain())
        direct_post = []
        for i in range(T + M):
            for sid in STREAMS:
                fires = direct.ingest(sid, units[sid][i])
                if sid == moved_sid and i >= T:
                    direct_post.extend(fire.record for fire in fires)

        # fires emitted after the move are the never-migrated fires
        assert fire_keys(post_fires) == fire_keys(direct_post)
        for sid in STREAMS:
            assert_reports_equal(reports[sid], direct.report(sid))
        direct_fleet = direct.fleet_report()
        assert list(fleet.stream_reports) == list(direct_fleet.stream_reports)
        assert_reports_equal(fleet.aggregate, direct_fleet.aggregate)
        # the accounting ledger never lost a unit
        assert stats["completed"] == (T + M) * len(STREAMS)
        assert stats["failed"] == 0
        assert stats["sessions"][moved_sid] == T + M
        assert stats["routing"]["pins"].get(moved_sid) == target

    def test_rebalance_moves_streams_in_one_op(self):
        units = {sid: raw_units(80 + k, T + M) for k, sid in enumerate(STREAMS)}

        async def drive():
            async with sharded() as (router, servers, connect):
                client = await connect()
                for i in range(T):
                    await client.ingest_batch(
                        [(sid, units[sid][i]) for sid in STREAMS]
                    )
                # Drain everything onto shard-0, as one rebalance op.
                plan = {sid: "shard-0" for sid in STREAMS}
                moves = (
                    await client.request("rebalance", plan=plan, tick=T)
                )["moves"]
                for i in range(T, T + M):
                    await client.ingest_batch(
                        [(sid, units[sid][i]) for sid in STREAMS]
                    )
                reports = {sid: await client.report(sid) for sid in STREAMS}
                placement = {
                    name: server.service.stream_ids()
                    for name, server in servers.items()
                }
                return moves, reports, placement

        moves, reports, placement = asyncio.run(drive())
        assert set(moves) == set(STREAMS)
        assert any(move["moved"] for move in moves.values())
        assert sorted(placement["shard-0"]) == sorted(STREAMS)
        assert placement["shard-1"] == []

        direct = direct_reference(units)
        for sid in STREAMS:
            assert_reports_equal(reports[sid], direct.report(sid))


class TestMigrationFailureModes:
    def test_wrong_tick_is_rejected_and_the_stream_keeps_serving(self):
        units = {"s": raw_units(11, T + 1)}

        async def drive():
            async with sharded() as (router, servers, connect):
                client = await connect()
                for i in range(T):
                    await client.ingest("s", units["s"][i])
                source = router.table.owner("s")
                target = next(n for n in servers if n != source)
                with pytest.raises(ServiceError) as err:
                    await client.request(
                        "migrate", stream_id="s", to=target, tick=T + 3
                    )
                # not moved: still on the source, no pin
                assert "s" in servers[source].service
                assert router.table.pins == {}
                await client.ingest("s", units["s"][T])
                report = await client.report("s")
                return err.value, report

        error, report = asyncio.run(drive())
        assert error.type == "bad-request"
        assert "boundary" in str(error)

        direct = MonitorService(SyntheticDomain())
        for raw in units["s"]:
            direct.ingest("s", raw)
        assert_reports_equal(report, direct.report("s"))

    def test_unknown_target_shard_is_rejected(self):
        async def drive():
            async with sharded() as (router, servers, connect):
                client = await connect()
                await client.ingest("s", raw_units(12, 1)[0])
                with pytest.raises(ServiceError) as err:
                    await client.request("migrate", stream_id="s", to="shard-99")
                return err.value

        error = asyncio.run(drive())
        assert error.type == "bad-request"
        assert "shard-99" in str(error)

    def test_migrating_an_unseen_stream_is_a_pure_routing_pin(self):
        async def drive():
            async with sharded() as (router, servers, connect):
                client = await connect()
                home = router.table.owner("later")
                target = next(n for n in servers if n != home)
                move = await client.request(
                    "migrate", stream_id="later", to=target
                )
                assert move["moved"] is False
                # first ingest after the pin lands on the pinned shard
                await client.ingest("later", raw_units(13, 1)[0])
                return target, {
                    name: server.service.stream_ids()
                    for name, server in servers.items()
                }

        target, placement = asyncio.run(drive())
        assert placement[target] == ["later"]

    def test_migrate_to_current_owner_is_a_noop(self):
        async def drive():
            async with sharded() as (router, servers, connect):
                client = await connect()
                await client.ingest("s", raw_units(14, 1)[0])
                owner = router.table.owner("s")
                move = await client.request("migrate", stream_id="s", to=owner)
                return move

        move = asyncio.run(drive())
        assert move["moved"] is False


class TestMigrationAcrossReconfiguration:
    def test_migration_straddling_an_apply_suite_boundary(self):
        """apply_suite at tick T through the router, then migrate one
        stream — post-boundary monitoring matches an unsharded service
        that applied the same suite at the same tick."""
        domain = get_domain("tvnews")
        new_suite = domain.assertion_suite().with_entry(crowded_entry())

        def stream_units(k):
            world = domain.build_world(derive_seed(7, "fleet-suite", k))
            stream = domain.iter_stream(world)
            return [next(stream) for _ in range(T + M)]

        units = {sid: stream_units(k) for k, sid in enumerate(STREAMS)}

        async def drive():
            async with sharded(lambda: "tvnews") as (router, servers, connect):
                client = await connect()
                for i in range(T):
                    await client.ingest_batch(
                        [(sid, units[sid][i]) for sid in STREAMS]
                    )
                diffs = (await client.apply_suite(new_suite, tick=T))["streams"]
                assert set(diffs) == set(STREAMS)
                assert all(d["added"] == ["crowded"] for d in diffs.values())

                moved_sid = STREAMS[0]
                target = next(
                    n for n in servers if n != router.table.owner(moved_sid)
                )
                move = await client.request(
                    "migrate", stream_id=moved_sid, to=target, tick=T
                )
                assert move["moved"] is True

                for i in range(T, T + M):
                    await client.ingest_batch(
                        [(sid, units[sid][i]) for sid in STREAMS]
                    )
                reports = {sid: await client.report(sid) for sid in STREAMS}
                fleet = await client.fleet_report()
                return reports, fleet

        reports, fleet = asyncio.run(drive())

        direct = MonitorService("tvnews")
        for i in range(T):
            for sid in STREAMS:
                direct.ingest(sid, units[sid][i])
        direct.apply_suite(new_suite, tick=T)
        for i in range(T, T + M):
            for sid in STREAMS:
                direct.ingest(sid, units[sid][i])

        for sid in STREAMS:
            assert "crowded" in reports[sid].assertion_names
            assert_reports_equal(reports[sid], direct.report(sid))
        assert_reports_equal(fleet.aggregate, direct.fleet_report().aggregate)

    def test_wrong_tick_apply_suite_is_rejected_fleet_wide(self):
        domain = get_domain("tvnews")
        new_suite = domain.assertion_suite().with_entry(crowded_entry())

        async def drive():
            async with sharded(lambda: "tvnews") as (router, servers, connect):
                client = await connect()
                stream = domain.iter_stream(domain.build_world(3))
                for _ in range(2):
                    await client.ingest("s", next(stream))
                with pytest.raises(ServiceError) as err:
                    await client.apply_suite(new_suite, tick=5)
                # no shard applied it — the fleet is not split
                suites = [
                    server.service.suite for server in servers.values()
                ]
                return err.value, suites

        error, suites = asyncio.run(drive())
        assert error.type == "bad-request"
        assert "boundary" in str(error)
        assert all(suite is None for suite in suites)

    def test_migration_across_a_model_hot_swap(self):
        """The model lives client-side (shards only monitor), so a
        hot-swap composes freely with migration: fine-tune between two
        unit batches, migrate at the same boundary, and the monitored
        stream stays bit-identical to an unsharded never-migrated run."""
        domain = get_domain("ecg")
        sensor = domain.build_sensor(0)
        stream = domain.iter_samples(sensor)
        samples = [next(stream) for _ in range(T + M)]

        adapter = domain.retrainable(0)
        v1 = adapter.get_state()
        tuned = domain.retrainable(0, bootstrap=False)
        tuned.set_state(v1)
        tuned.fine_tune([(s, tuned.oracle_label(s)) for s in samples[:4]])
        v2 = tuned.get_state()

        # Precompute the raw units each model version emits, so the
        # sharded and unsharded runs see byte-identical inputs.
        v1_adapter = domain.retrainable(0, bootstrap=False)
        v1_adapter.set_state(v1)
        v2_adapter = domain.retrainable(0, bootstrap=False)
        v2_adapter.set_state(v2)
        raws = [v1_adapter.predict_raw(s) for s in samples[:T]] + [
            v2_adapter.predict_raw(s) for s in samples[T:]
        ]

        async def drive():
            async with sharded(lambda: "ecg") as (router, servers, connect):
                client = await connect()
                for raw in raws[:T]:  # v1 era
                    await client.ingest("patient", raw)
                target = next(
                    n for n in servers if n != router.table.owner("patient")
                )
                move = await client.request(
                    "migrate", stream_id="patient", to=target, tick=T
                )
                assert move["moved"] is True
                for raw in raws[T:]:  # v2 era, on the new shard
                    await client.ingest("patient", raw)
                return await client.report("patient")

        report = asyncio.run(drive())

        direct = MonitorService("ecg")
        for raw in raws:
            direct.ingest("patient", raw)
        direct_report = direct.report("patient")
        assert report.assertion_names == direct_report.assertion_names
        np.testing.assert_array_equal(report.severities, direct_report.severities)
        assert report.n_items == direct_report.n_items
