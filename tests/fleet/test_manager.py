"""Worker process lifecycle under :class:`FleetManager`: spawn +
readiness, crash-restart (fresh incarnation, new pid, empty service),
and the log-tail diagnostics when a worker dies before becoming ready.

These spawn real ``python -m repro.fleet.worker`` subprocesses — kept to
a minimum; everything protocol-level runs against in-process servers in
the other ``tests/fleet`` files.
"""

import asyncio

import pytest

from repro.fleet import FleetManager, shard_names
from repro.serve import ServiceClient


class TestShardNames:
    def test_canonical_names(self):
        assert shard_names(3) == ["shard-0", "shard-1", "shard-2"]
        with pytest.raises(ValueError, match="at least 1"):
            shard_names(0)


class TestWorkerLifecycle:
    def test_spawn_ping_restart_stop(self, tmp_path):
        manager = FleetManager("tvnews", 2, workdir=str(tmp_path))
        try:
            specs = manager.start()
            assert sorted(specs) == ["shard-0", "shard-1"]
            assert all(status is None for status in manager.poll().values())

            async def ping(spec):
                client = await ServiceClient.connect(spec.host, spec.port)
                try:
                    return await client.ping()
                finally:
                    await client.close()

            for spec in specs.values():
                pong = asyncio.run(ping(spec))
                assert pong["domain"] == "tvnews"

            async def count_sessions(spec):
                client = await ServiceClient.connect(spec.host, spec.port)
                try:
                    return (await client.stats())["streams"]
                finally:
                    await client.close()

            old = specs["shard-0"]
            new = manager.restart("shard-0")
            assert new.pid != old.pid
            # a restarted incarnation is empty by design
            assert asyncio.run(count_sessions(new)) == 0
        finally:
            manager.stop()
        assert manager.poll() == {}

    def test_dead_worker_aborts_start_with_log_tail(self, tmp_path):
        manager = FleetManager("no-such-domain", 1, workdir=str(tmp_path))
        try:
            with pytest.raises(RuntimeError) as err:
                manager.start()
        finally:
            manager.stop()
        message = str(err.value)
        assert "shard-0" in message
        assert "before becoming ready" in message
        # the worker's own traceback is surfaced, naming the bad domain
        assert "no-such-domain" in message
