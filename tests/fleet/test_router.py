"""The fleet router: wire-compatibility with a single server
(bit-identical reports, merged stats ledger), per-stream FIFO through
the shard links, and the typed error surface for dead shards.

``sharded()`` (in-process shards + router + client factory) is shared
with ``test_migration.py`` and ``test_fleet_snapshot.py``.
"""

import asyncio
import contextlib

import pytest

from repro.fleet import FleetRouter, RouterConfig
from repro.serve import (
    MonitorServer,
    MonitorService,
    ServerConfig,
    ServiceClient,
    ServiceError,
)
from tests.serve.test_net import SeqDomain
from tests.serve.test_service import (
    SyntheticDomain,
    assert_reports_equal,
    raw_units,
)

N_SHARDS = 2
STREAMS = [f"s{k}" for k in range(4)]


@contextlib.asynccontextmanager
async def sharded(
    domain_factory=SyntheticDomain,
    n_shards=N_SHARDS,
    *,
    config=None,
    suite=None,
    **server_knobs,
):
    """An in-process fleet: ``n_shards`` started MonitorServers behind a
    started FleetRouter, plus a client factory dialing the router.

    Yields ``(router, servers, connect)`` where ``servers`` maps shard
    name -> MonitorServer (so tests can reach each shard's service or
    bounce a shard), and tears everything down afterwards.
    """
    servers = {}
    for index in range(n_shards):
        service = MonitorService(domain_factory(), suite=suite)
        server = MonitorServer(service, ServerConfig(**server_knobs))
        await server.start()
        servers[f"shard-{index}"] = server
    domain_name = next(iter(servers.values())).service.domain.name
    router = FleetRouter(
        domain_name,
        {name: (server.host, server.port) for name, server in servers.items()},
        config,
    )
    await router.start()
    clients = []

    async def connect() -> ServiceClient:
        client = await ServiceClient.connect(router.host, router.port)
        clients.append(client)
        return client

    try:
        yield router, servers, connect
    finally:
        for client in clients:
            await client.close()
        await router.stop()
        for server in servers.values():
            await server.stop()


FAST_LINKS = RouterConfig(link_retries=2, link_backoff=0.01, link_max_backoff=0.02)


class TestWireCompatibility:
    def test_ping_reports_router_role_and_shards(self):
        async def drive():
            async with sharded() as (router, servers, connect):
                client = await connect()
                return await client.ping()

        pong = asyncio.run(drive())
        assert pong["role"] == "router"
        assert pong["domain"] == "synthetic"
        assert pong["shards"] == ["shard-0", "shard-1"]

    def test_interleaved_sharded_ingest_matches_direct_service(self):
        n_raw = 10
        units = {sid: raw_units(50 + k, n_raw) for k, sid in enumerate(STREAMS)}

        async def over_the_fleet():
            async with sharded() as (router, servers, connect):
                a, b = await connect(), await connect()
                for i in range(n_raw):
                    # two clients, interleaved batches mixing streams
                    ra = await a.ingest_batch(
                        [[sid, units[sid][i]] for sid in STREAMS[:2]]
                    )
                    rb = await b.ingest_batch(
                        [[sid, units[sid][i]] for sid in STREAMS[2:]]
                    )
                    assert ra["failed_streams"] == []
                    assert rb["failed_streams"] == []
                reports = {sid: await a.report(sid) for sid in STREAMS}
                fleet = await b.fleet_report()
                placement = {
                    name: server.service.stream_ids()
                    for name, server in servers.items()
                }
                owners = {sid: router.table.owner(sid) for sid in STREAMS}
                return reports, fleet, placement, owners

        reports, fleet, placement, owners = asyncio.run(over_the_fleet())

        # Every stream lives on exactly the shard the table names.
        for sid in STREAMS:
            assert sid in placement[owners[sid]]
            for name, ids in placement.items():
                if name != owners[sid]:
                    assert sid not in ids
        # ...and the fleet genuinely sharded (no shard owns everything).
        assert all(len(ids) < len(STREAMS) for ids in placement.values())

        direct = MonitorService(SyntheticDomain())
        for i in range(n_raw):
            for sid in STREAMS:
                direct.ingest(sid, units[sid][i])
        for sid in STREAMS:
            assert_reports_equal(reports[sid], direct.report(sid))
        direct_fleet = direct.fleet_report()
        assert list(fleet.stream_reports) == list(direct_fleet.stream_reports)
        assert_reports_equal(fleet.aggregate, direct_fleet.aggregate)
        assert fleet.row_offsets == direct_fleet.row_offsets

    def test_merged_stats_ledger_balances(self):
        n_raw = 6

        async def drive():
            async with sharded() as (router, servers, connect):
                client = await connect()
                for i in range(n_raw):
                    await client.ingest_batch(
                        [[sid, raw] for sid in STREAMS
                         for raw in [raw_units(9, n_raw)[i]]]
                    )
                return await client.stats()

        stats = asyncio.run(drive())
        offered = n_raw * len(STREAMS)
        assert stats["offered"] == offered
        assert stats["accepted"] == offered
        assert stats["completed"] == offered
        assert stats["failed"] == 0
        assert stats["rejected"] == 0
        assert stats["streams"] == len(STREAMS)
        assert stats["sessions"] == {sid: n_raw for sid in STREAMS}
        assert stats["per_stream"] == {
            sid: {"completed": n_raw, "failed": 0} for sid in STREAMS
        }
        # per-shard breakdown sums to the totals
        assert sorted(stats["shards"]) == ["shard-0", "shard-1"]
        assert sum(s["completed"] for s in stats["shards"].values()) == offered
        assert set(stats["routing"]["owners"]) == set(STREAMS)

    def test_evict_through_router_drops_the_stream(self):
        async def drive():
            async with sharded() as (router, servers, connect):
                client = await connect()
                raw = raw_units(3, 1)[0]
                await client.ingest("gone", raw)
                await client.ingest("kept", raw)
                await client.evict("gone")
                stats = await client.stats()
                fleet = await client.fleet_report()
                return stats, fleet

        stats, fleet = asyncio.run(drive())
        assert set(stats["sessions"]) == {"kept"}
        assert list(fleet.stream_reports) == ["kept"]

    def test_error_surface(self):
        async def drive():
            async with sharded() as (router, servers, connect):
                client = await connect()
                errors = {}
                for label, op, fields in [
                    ("unknown-domain", "ping", {"domain": "nope"}),
                    ("unknown-op", "frobnicate", {}),
                    ("bad-ingest", "ingest", {"stream_id": 7, "raw": {}}),
                    ("bad-report", "report", {}),
                    ("bad-migrate", "migrate", {"stream_id": "s"}),
                ]:
                    with pytest.raises(ServiceError) as err:
                        await client.request(op, **fields)
                    errors[label] = err.value
                return errors

        errors = asyncio.run(drive())
        assert errors["unknown-domain"].type == "unknown-domain"
        assert errors["unknown-op"].type == "bad-request"
        assert "unknown op" in str(errors["unknown-op"])
        assert errors["bad-ingest"].type == "bad-request"
        assert errors["bad-report"].type == "bad-request"
        assert errors["bad-migrate"].type == "bad-request"

    def test_shard_errors_pass_through_typed(self):
        """A per-stream failure on a shard (unknown-stream report) comes
        back with the shard's error type intact."""

        async def drive():
            async with sharded() as (router, servers, connect):
                client = await connect()
                with pytest.raises(ServiceError) as err:
                    await client.report("never-seen")
                return err.value

        error = asyncio.run(drive())
        assert error.type == "unknown-stream"


class TestOrdering:
    def test_per_stream_fifo_through_the_router(self):
        """Pipelined submissions from multiple clients stay in send order
        per stream, across whatever shard each stream lands on."""
        domains = []

        def factory():
            domains.append(SeqDomain())
            return domains[-1]

        n = 25

        async def drive():
            async with sharded(factory, max_batch=8, max_delay=0.02) as (
                router,
                servers,
                connect,
            ):
                a, b, c = await connect(), await connect(), await connect()
                futs = []
                for i in range(n):
                    futs.append(a.submit("ingest", stream_id="sa",
                                         raw={"sid": "sa", "seq": i}))
                    futs.append(b.submit("ingest", stream_id="sb",
                                         raw={"sid": "sb", "seq": i}))
                    futs.append(c.submit("ingest_batch", pairs=[
                        ["sc", {"sid": "sc", "seq": 2 * i}],
                        ["sd", {"sid": "sd", "seq": i}],
                        ["sc", {"sid": "sc", "seq": 2 * i + 1}],
                    ]))
                envelopes = await asyncio.gather(*futs)
                assert all(env["ok"] for env in envelopes)

        asyncio.run(drive())
        observed = {}
        for domain in domains:
            observed.update(domain.observed)  # each stream on one shard
        assert observed["sa"] == list(range(n))
        assert observed["sb"] == list(range(n))
        assert observed["sc"] == list(range(2 * n))
        assert observed["sd"] == list(range(n))


class TestShardFailure:
    def test_dead_shard_yields_typed_errors_not_hangs(self):
        async def drive_full():
            async with sharded(config=FAST_LINKS) as (router, servers, connect):
                client = await connect()
                raw = raw_units(1, 1)[0]
                for sid in STREAMS:
                    await client.ingest(sid, raw)
                victim = router.table.owner(STREAMS[0])
                survivors = [
                    sid for sid in STREAMS if router.table.owner(sid) != victim
                ]
                victims = [
                    sid for sid in STREAMS if router.table.owner(sid) == victim
                ]
                assert survivors and victims
                await servers[victim].stop()

                # Per-stream failures in a batch come back as per-pair
                # shard-unavailable docs, while survivors' pairs succeed.
                batch = await client.ingest_batch(
                    [(sid, raw) for sid in STREAMS]
                )
                # control op against the dead shard: typed, names the shard
                with pytest.raises(ServiceError) as report_err:
                    await client.report(victims[0])
                # surviving shard keeps serving
                survivor_report = await client.report(survivors[0])
                ring = await client.request("ring")
                return batch, report_err.value, survivor_report, ring, victim, victims

        batch, report_err, survivor_report, ring, victim, victims = asyncio.run(
            drive_full()
        )
        assert sorted(batch["failed_streams"]) == sorted(victims)
        for (sid, doc) in zip(STREAMS, batch["results"]):
            if sid in victims:
                assert doc["ok"] is False
                assert doc["error"]["type"] == "shard-unavailable"
                assert doc["error"]["shard"] == victim
                assert doc["error"]["stream_id"] == sid
            else:
                assert doc["ok"] is True
        assert report_err.type == "shard-unavailable"
        assert report_err.error.get("shard") == victim
        assert survivor_report.n_items > 0
        assert ring["shards"][victim]["alive"] is False

    def test_requests_queued_during_redial_flush_in_order(self):
        domains = []

        def factory():
            domains.append(SeqDomain())
            return domains[-1]

        n_before, n_during = 5, 8

        async def drive():
            async with sharded(factory, n_shards=1) as (router, servers, connect):
                client = await connect()
                for i in range(n_before):
                    await client.ingest("s", {"sid": "s", "seq": i})

                server = servers["shard-0"]
                port = server.port
                service = server.service
                await server.stop()

                # The link discovers the loss on next submit and queues
                # while redialing; these must flush in order on reconnect.
                futs = [
                    client.submit(
                        "ingest",
                        stream_id="s",
                        raw={"sid": "s", "seq": n_before + i},
                    )
                    for i in range(n_during)
                ]
                await asyncio.sleep(0.05)  # let the redial loop spin
                revived = MonitorServer(
                    service, ServerConfig(host="127.0.0.1", port=port)
                )
                await revived.start()
                servers["shard-0"] = revived  # sharded() will stop it
                envelopes = await asyncio.gather(*futs)
                assert all(env["ok"] for env in envelopes)
                # the link is healthy again for ordinary traffic
                await client.ingest(
                    "s", {"sid": "s", "seq": n_before + n_during}
                )

        asyncio.run(drive())
        (domain,) = domains
        assert domain.observed["s"] == list(range(n_before + n_during + 1))

    def test_exhausted_redial_marks_the_shard_dead_fast(self):
        async def drive():
            async with sharded(
                SyntheticDomain, n_shards=1, config=FAST_LINKS
            ) as (router, servers, connect):
                client = await connect()
                raw = raw_units(2, 1)[0]
                await client.ingest("s", raw)
                await servers["shard-0"].stop()
                # First request trips the redial loop; with the server
                # gone for good it exhausts retries and the link dies.
                with pytest.raises(ServiceError):
                    await client.report("s")
                deadline = asyncio.get_running_loop().time() + 2.0
                while router._links["shard-0"].alive:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.01)
                # ...after which requests fail immediately, still typed.
                with pytest.raises(ServiceError) as err:
                    await client.report("s")
                return err.value

        error = asyncio.run(drive())
        assert error.type == "shard-unavailable"
        assert error.error.get("shard") == "shard-0"
