"""Tests for the experiment harness (small configurations)."""

import numpy as np
import pytest

from repro.experiments.loc import effective_loc, loc_with_helpers
from repro.experiments.reporting import format_float, format_table
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["A", "Blong"], [(1, 2), (333, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Blong" in lines[1]
        assert len(lines) == 5

    def test_format_float(self):
        assert format_float(1.234) == "1.2"
        assert format_float(None) == "n/a"
        assert format_float(float("nan")) == "n/a"


class TestLocCounting:
    def test_counts_exclude_docstrings_and_comments(self):
        def sample():
            """Docstring line.

            More docstring.
            """
            # a comment
            x = 1

            return x

        assert effective_loc(sample) == 3  # def, x = 1, return x

    def test_multiline_statements_counted_per_line(self):
        def sample(a=(
            1,
            2,
        )):
            return a

        assert effective_loc(sample) == 5

    def test_loc_with_helpers_sums(self):
        def body():
            return 1

        def helper():
            return 2

        b, total = loc_with_helpers([body], [helper])
        assert b == 2 and total == 4


class TestTable1:
    def test_four_domains(self):
        result = run_table1()
        assert len(result.rows) == 4
        tasks = [r.task for r in result.rows]
        assert "TV news" in tasks and "AF classification" in tasks
        assert "flicker" in result.format_table()


class TestTable2:
    def test_paper_loc_bounds(self):
        result = run_table2()
        assert {r.assertion for r in result.rows} == {
            "news",
            "ECG",
            "flicker",
            "appear",
            "multibox",
            "agree",
        }
        # Paper: assertion main bodies fit in ≤ 25 LOC.
        assert result.max_body_loc <= 25
        # Helpers included, the paper reports ≤ 60; our shared IoU helper
        # is a little chattier — everything stays under 70.
        assert result.max_total_loc <= 70

    def test_consistency_rows_tagged(self):
        result = run_table2()
        assert result.row("news").kind == "consistency"
        assert result.row("agree").kind == "custom"

    def test_helpers_never_reduce_loc(self):
        result = run_table2()
        assert all(r.loc_with_helpers >= r.loc_body for r in result.rows)


class TestTable5:
    def test_matches_taxonomy(self):
        result = run_table5()
        assert result.n_classes == 4
        assert result.n_subclasses == 9
        assert "multi-modal" in result.format_table()


class TestTable6:
    def test_small_run_shape(self):
        result = run_table6(seed=0, n_video_frames=600, label_stride=10)
        assert result.n_labels > 100
        assert 0 < result.n_errors < result.n_labels
        assert 0 <= result.n_errors_caught <= result.n_errors
        # The tracker-consistency check catches a strict minority of
        # errors (paper: 12.5%) but not none.
        assert 0.0 < result.catch_rate < 0.6

    def test_error_rate_tracks_config(self):
        low = run_table6(seed=1, n_video_frames=600, class_error_rate=0.02)
        high = run_table6(seed=1, n_video_frames=600, class_error_rate=0.3)
        assert high.error_rate > low.error_rate

    def test_format(self):
        result = run_table6(seed=0, n_video_frames=400)
        assert "Errors caught" in result.format_table()


class TestFig3Small:
    def test_flicker_errors_are_high_confidence(self):
        from repro.experiments.fig3 import run_fig3

        result = run_fig3(seed=0, n_pool=250)
        assert result.n_boxes > 0
        # the headline claim: assertion-flagged errors reach high
        # confidence percentiles that uncertainty monitoring would miss
        assert result.top_percentile("flicker") > 70.0

    def test_format_table(self):
        from repro.experiments.fig3 import Fig3Result

        result = Fig3Result(percentiles={"flicker": [90.0, 80.0]}, n_boxes=10)
        text = result.format_table()
        assert "Rank" in text and "90" in text
