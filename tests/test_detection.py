"""Tests for the trainable 2-D detector substrate."""

import numpy as np
import pytest

from repro.detection.detector import Detector, DetectorConfig
from repro.detection.features import FEATURE_NAMES, N_FEATURES, proposal_features
from repro.detection.proposals import (
    ProposalConfig,
    generate_proposals,
    generate_proposals_flagged,
)
from repro.geometry.box2d import Box2D
from repro.geometry.iou import iou_matrix
from repro.worlds.traffic import TrafficWorld, day_config, night_config


@pytest.fixture(scope="module")
def day_frames():
    return TrafficWorld(day_config(), seed=1).generate(25)


@pytest.fixture(scope="module")
def night_frames():
    return TrafficWorld(night_config(), seed=2).generate(40)


class TestProposals:
    def test_covers_most_ground_truth(self, day_frames):
        covered = total = 0
        for frame in day_frames:
            props = generate_proposals(frame.image)
            for box in frame.ground_truth:
                total += 1
                if props and iou_matrix([box], props).max() >= 0.5:
                    covered += 1
        assert total > 0
        assert covered / total > 0.6

    def test_blank_image_no_proposals(self):
        assert generate_proposals(np.zeros((96, 160))) == []

    def test_splits_flagged(self):
        image = np.zeros((96, 160))
        image[40:52, 30:70] = 0.8  # wide bright block (aspect 40/12 > 2.2)
        boxes, is_split = generate_proposals_flagged(image)
        assert is_split.sum() == 2
        assert not is_split[0]
        base = boxes[0]
        for split in (boxes[1], boxes[2]):
            assert split.width < base.width
            assert iou_matrix([base], [split])[0, 0] > 0.5

    def test_bad_image_shape(self):
        with pytest.raises(ValueError):
            generate_proposals(np.zeros((4, 4, 3)))

    def test_max_proposals_cap(self, night_frames):
        cfg = ProposalConfig(max_proposals=3)
        for frame in night_frames[:5]:
            boxes, flags = generate_proposals_flagged(frame.image, cfg)
            assert (~flags).sum() <= 3


class TestFeatures:
    def test_shape_and_names(self, day_frames):
        frame = day_frames[0]
        props = generate_proposals(frame.image)
        feats = proposal_features(frame.image, props)
        assert feats.shape == (len(props), N_FEATURES)
        assert len(FEATURE_NAMES) == N_FEATURES

    def test_bright_box_has_positive_contrast(self):
        image = np.full((50, 50), 0.1)
        image[20:30, 20:30] = 0.9
        feats = proposal_features(image, [Box2D(20, 20, 30, 30)])
        contrast = feats[0, FEATURE_NAMES.index("ring_contrast")]
        assert contrast > 0.3

    def test_split_has_border_continuation(self):
        image = np.full((50, 80), 0.1)
        image[20:30, 10:60] = 0.9
        full = Box2D(10, 20, 60, 30)
        split = Box2D(10, 20, 40, 30)  # right border cuts the object
        feats = proposal_features(image, [full, split])
        right = FEATURE_NAMES.index("right_continuation")
        assert feats[1, right] > feats[0, right] + 0.1

    def test_empty_boxes(self):
        assert proposal_features(np.zeros((10, 10)), []).shape == (0, N_FEATURES)


class TestDetector:
    def test_fit_then_detect_finds_vehicles(self, day_frames):
        detector = Detector(seed=0)
        detector.fit([f.image for f in day_frames], [f.ground_truth for f in day_frames])
        hits = total = 0
        for frame in day_frames[:10]:
            dets = detector.detect(frame.image)
            for box in frame.ground_truth:
                total += 1
                if dets and iou_matrix([box], dets).max() >= 0.5:
                    hits += 1
        assert hits / total > 0.5

    def test_detect_before_fit_raises(self, day_frames):
        with pytest.raises(RuntimeError):
            Detector(seed=0).detect(day_frames[0].image)

    def test_fine_tune_before_fit_raises(self, day_frames):
        with pytest.raises(RuntimeError):
            Detector(seed=0).fine_tune([day_frames[0].image], [[]])

    def test_clone_independent(self, day_frames):
        detector = Detector(seed=0)
        detector.fit([f.image for f in day_frames], [f.ground_truth for f in day_frames])
        clone = detector.clone()
        images = [f.image for f in day_frames[:5]]
        truths = [f.ground_truth for f in day_frames[:5]]
        clone.fine_tune(images, truths, epochs=20)
        original = detector.detect(day_frames[0].image)
        assert detector.clone().detect(day_frames[0].image) == original

    def test_fine_tune_improves_on_night(self, day_frames, night_frames):
        detector = Detector(seed=0)
        detector.fit([f.image for f in day_frames], [f.ground_truth for f in day_frames])
        from repro.metrics.detection import evaluate_detections

        test = night_frames[25:]
        before = evaluate_detections(
            detector.detect_frames([f.image for f in test]),
            [f.ground_truth for f in test],
        ).mean_ap
        train = night_frames[:25]
        detector.fine_tune(
            [f.image for f in train], [f.ground_truth for f in train], epochs=40
        )
        after = evaluate_detections(
            detector.detect_frames([f.image for f in test]),
            [f.ground_truth for f in test],
        ).mean_ap
        assert after > before

    def test_scores_sorted_descending(self, day_frames):
        detector = Detector(seed=0)
        detector.fit([f.image for f in day_frames], [f.ground_truth for f in day_frames])
        for frame in day_frames[:5]:
            dets = detector.detect(frame.image)
            scores = [d.score for d in dets]
            assert scores == sorted(scores, reverse=True)

    def test_labels_from_config_classes(self, day_frames):
        detector = Detector(seed=0)
        detector.fit([f.image for f in day_frames], [f.ground_truth for f in day_frames])
        for frame in day_frames[:5]:
            for det in detector.detect(frame.image):
                assert det.label in detector.config.classes
                assert 0.0 <= det.score <= 1.0

    def test_mlp_scorer_option(self, day_frames):
        cfg = DetectorConfig(scorer_type="mlp", epochs=50)
        detector = Detector(cfg, seed=0)
        detector.fit([f.image for f in day_frames], [f.ground_truth for f in day_frames])
        assert detector.detect(day_frames[0].image) is not None

    def test_invalid_scorer_type(self):
        with pytest.raises(ValueError):
            DetectorConfig(scorer_type="transformer")
