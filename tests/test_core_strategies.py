"""Tests for the data-selection strategies."""

import numpy as np
import pytest

from repro.core.strategies import (
    BALStrategy,
    RandomStrategy,
    SelectionContext,
    UncertaintyStrategy,
    UniformAssertionStrategy,
    default_strategies,
)


def make_ctx(n=30, d=2, seed=0, labeled=None):
    rng = np.random.default_rng(seed)
    sev = np.zeros((n, d))
    sev[: n // 3, 0] = rng.uniform(1, 5, n // 3)
    sev[n // 3 : n // 2, 1] = rng.uniform(1, 5, n // 2 - n // 3)
    labeled_mask = np.zeros(n, dtype=bool)
    if labeled is not None:
        labeled_mask[labeled] = True
    return SelectionContext(
        severities=sev,
        uncertainty=rng.uniform(0, 1, n),
        labeled_mask=labeled_mask,
        round_index=0,
    )


@pytest.mark.parametrize(
    "strategy_factory",
    [
        lambda: RandomStrategy(seed=0),
        lambda: UncertaintyStrategy(),
        lambda: UniformAssertionStrategy(seed=0),
        lambda: BALStrategy(seed=0),
    ],
)
class TestStrategyContract:
    def test_respects_budget(self, strategy_factory):
        ctx = make_ctx()
        idx = strategy_factory().select(ctx, 7)
        assert len(idx) <= 7
        assert len(set(idx.tolist())) == len(idx)

    def test_never_selects_labeled(self, strategy_factory):
        labeled = list(range(0, 30, 2))
        ctx = make_ctx(labeled=labeled)
        idx = strategy_factory().select(ctx, 10)
        assert not set(idx.tolist()) & set(labeled)

    def test_exhausted_pool(self, strategy_factory):
        ctx = make_ctx(n=4, labeled=[0, 1, 2, 3])
        idx = strategy_factory().select(ctx, 3)
        assert len(idx) == 0


class TestUncertaintyStrategy:
    def test_picks_most_uncertain(self):
        ctx = make_ctx()
        idx = UncertaintyStrategy().select(ctx, 3)
        top3 = np.argsort(-ctx.uncertainty)[:3]
        assert sorted(idx.tolist()) == sorted(top3.tolist())


class TestUniformAssertionStrategy:
    def test_prefers_flagged_points(self):
        ctx = make_ctx()
        idx = UniformAssertionStrategy(seed=0).select(ctx, 5)
        assert np.all(ctx.severities[idx].sum(axis=1) > 0)

    def test_tops_up_with_random_when_flagged_exhausted(self):
        n = 10
        sev = np.zeros((n, 1))
        sev[0, 0] = 1.0
        ctx = SelectionContext(
            severities=sev,
            uncertainty=np.zeros(n),
            labeled_mask=np.zeros(n, dtype=bool),
            round_index=0,
        )
        idx = UniformAssertionStrategy(seed=0).select(ctx, 4)
        assert len(idx) == 4
        assert 0 in idx.tolist()


class TestBALStrategy:
    def test_reset_restores_round0(self):
        strategy = BALStrategy(seed=0)
        ctx = make_ctx()
        strategy.select(ctx, 5)
        assert strategy.bal.round_index == 1
        strategy.reset()
        assert strategy.bal.round_index == 0

    def test_records_last_selection(self):
        strategy = BALStrategy(seed=0)
        strategy.select(make_ctx(), 5)
        assert strategy.last_selection is not None


class TestDefaultStrategies:
    def test_four_strategies_in_paper_order(self):
        names = [s.name for s in default_strategies(seed=0)]
        assert names == ["random", "uncertainty", "uniform_ma", "bal"]
