"""Tests for the OMG runtime monitor."""

import numpy as np
import pytest

from repro.core.runtime import OMG
from repro.core.types import make_stream


def count_assertion(inp, outputs):
    return float(len(outputs) > 2)


class TestBatchMonitoring:
    def test_severity_matrix_shape_and_columns(self):
        omg = OMG()
        omg.add_assertion(count_assertion, "many")
        omg.add_assertion(lambda i, o: float(len(o) == 0), "empty")
        report = omg.monitor_outputs([[1], [], [1, 2, 3]])
        assert report.severities.shape == (3, 2)
        assert report.assertion_names == ["many", "empty"]
        assert report.column("many").tolist() == [0.0, 0.0, 1.0]
        assert report.column("empty").tolist() == [0.0, 1.0, 0.0]

    def test_fire_counts_and_records(self):
        omg = OMG()
        omg.add_assertion(count_assertion, "many")
        report = omg.monitor_outputs([[1, 2, 3], [1, 2, 3], [1]])
        assert report.fire_counts() == {"many": 2}
        assert len(report.records) == 2
        assert report.total_fires() == 2

    def test_flagged_indices(self):
        omg = OMG()
        omg.add_assertion(count_assertion, "many")
        report = omg.monitor_outputs([[1], [1, 2, 3]])
        assert report.flagged_indices("many").tolist() == [1]
        assert report.flagged_indices().tolist() == [1]

    def test_unknown_column_raises(self):
        omg = OMG()
        omg.add_assertion(count_assertion, "many")
        report = omg.monitor_outputs([[1]])
        with pytest.raises(KeyError):
            report.column("nope")

    def test_unknown_flagged_indices_raises(self):
        omg = OMG()
        omg.add_assertion(count_assertion, "many")
        report = omg.monitor_outputs([[1]])
        with pytest.raises(KeyError, match="nope"):
            report.flagged_indices("nope")

    def test_monitor_rejects_negative_severity(self):
        omg = OMG()
        omg.add_assertion(lambda i, o: -1.0, "negative")
        with pytest.raises(ValueError, match="negative severity"):
            omg.monitor(make_stream([[1], [2]]))

    def test_decorator_registration(self):
        omg = OMG()

        @omg.assertion
        def always(inp, outputs):
            return 1.0

        report = omg.monitor_outputs([[1]])
        assert report.fire_counts() == {"always": 1}


class TestOnlineMonitoring:
    def test_observe_records_only_new_item(self):
        omg = OMG()
        omg.add_assertion(count_assertion, "many")
        assert omg.observe(None, [1, 2, 3]) != []
        assert omg.observe(None, [1]) == []
        assert len(omg.online_records) == 1

    def test_on_fire_callback(self):
        omg = OMG()
        omg.add_assertion(count_assertion, "many")
        fired = []
        omg.on_fire(fired.append)
        omg.observe(None, [1, 2, 3])
        assert len(fired) == 1
        assert fired[0].assertion_name == "many"

    def test_window_bounded(self):
        omg = OMG(window_size=2)
        omg.add_assertion(count_assertion, "many")
        for _ in range(5):
            omg.observe(None, [1])
        assert len(omg._history) == 2

    def test_reset_clears_history(self):
        omg = OMG()
        omg.add_assertion(count_assertion, "many")
        omg.observe(None, [1, 2, 3])
        omg.reset()
        assert omg.online_records == []
        assert omg.observe(None, [1]) == []

    def test_timestamps_default_to_index(self):
        omg = OMG()
        omg.add_assertion(count_assertion, "many")
        omg.observe(None, [1])
        omg.observe(None, [2])
        assert [i.timestamp for i in omg._history] == [0.0, 1.0]

    def test_reset_does_not_refire_actions_for_old_records(self):
        """Corrective actions fire once per fresh record, never replayed."""
        omg = OMG()
        omg.add_assertion(count_assertion, "many")
        fired = []
        omg.on_fire(fired.append)
        omg.observe(None, [1, 2, 3])
        assert len(fired) == 1
        omg.reset()
        assert len(fired) == 1  # reset itself triggers nothing
        omg.observe(None, [1])  # benign item: no new fires either
        assert len(fired) == 1
        omg.observe(None, [1, 2, 3])
        assert len(fired) == 2
        # the post-reset record is attributed to a restarted index
        assert fired[1].item_index == 1

    def test_observe_indices_restart_after_reset(self):
        omg = OMG()
        omg.add_assertion(count_assertion, "many")
        for _ in range(3):
            omg.observe(None, [1, 2, 3])
        omg.reset()
        records = omg.observe(None, [1, 2, 3])
        assert [r.item_index for r in records] == [0]
        assert omg.online_records == records
        assert [i.index for i in omg._history] == [0]


class TestConsistencyRegistration:
    def test_add_consistency_assertion_generates(self):
        omg = OMG()
        generated = omg.add_consistency_assertion(
            id_fn=lambda o: o["id"],
            attrs_fn=lambda o: {"cls": o["cls"]},
            temporal_threshold=2.0,
            attr_keys=["cls"],
        )
        assert len(generated) == 2  # one attribute + one temporal
        assert len(omg.database) == 2

    def test_empty_spec_raises(self):
        omg = OMG()
        with pytest.raises(ValueError):
            omg.add_consistency_assertion(id_fn=lambda o: o)

    def test_bad_assertion_output_shape_rejected(self):
        from repro.core.assertion import ModelAssertion

        class Broken(ModelAssertion):
            def evaluate_stream(self, items):
                return np.zeros(max(0, len(items) - 1))

        omg = OMG()
        omg.add_assertion(Broken("broken"))
        with pytest.raises(ValueError, match="shape"):
            omg.monitor(make_stream([[1], [2]]))


class TestMonitoringReportEdgeCases:
    """Satellite coverage: empty reports, unknown names, reset semantics."""

    def _empty_report(self):
        omg = OMG()
        omg.add_assertion(count_assertion, "many")
        omg.add_assertion(lambda i, o: float(len(o) == 0), "empty")
        return omg.monitor(make_stream([]))

    def test_empty_report_shape(self):
        report = self._empty_report()
        assert report.n_items == 0
        assert report.severities.shape == (0, 2)
        assert report.records == []

    def test_empty_report_fire_counts_all_zero(self):
        report = self._empty_report()
        assert report.fire_counts() == {"many": 0, "empty": 0}
        assert report.total_fires() == 0

    def test_empty_report_flagged_indices_empty(self):
        report = self._empty_report()
        assert report.flagged_indices().tolist() == []
        assert report.flagged_indices("many").tolist() == []
        assert report.column("empty").shape == (0,)

    def test_empty_report_unknown_name_still_raises(self):
        report = self._empty_report()
        with pytest.raises(KeyError, match="nope"):
            report.column("nope")
        with pytest.raises(KeyError, match="nope"):
            report.flagged_indices("nope")

    def test_fire_counts_after_reset(self):
        omg = OMG()
        omg.add_assertion(count_assertion, "many")
        omg.observe(None, [1, 2, 3])
        assert omg.online_report().fire_counts() == {"many": 1}
        omg.reset()
        # Post-reset the online report is empty: counts drop to zero.
        report = omg.online_report()
        assert report.n_items == 0
        assert report.fire_counts() == {"many": 0}
        # New observations count from scratch, not cumulatively.
        omg.observe(None, [1])
        omg.observe(None, [1, 2, 3])
        assert omg.online_report().fire_counts() == {"many": 1}
        assert omg.online_report().flagged_indices("many").tolist() == [1]
