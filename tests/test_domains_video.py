"""Tests for the video-analytics domain."""

import numpy as np
import pytest

from repro.core.types import StreamItem, make_stream
from repro.domains.video.assertions import (
    MultiboxAssertion,
    interpolate_box,
    make_appear_assertion,
    make_flicker_assertion,
    multibox_severity,
    video_consistency_spec,
)
from repro.domains.video.pipeline import VideoPipeline, VideoPipelineConfig
from repro.geometry.box2d import Box2D, make_box


def det(cx, cy, w=10, h=8, label="car", score=0.8, track=None):
    box = make_box(cx, cy, w, h, label=label, score=score)
    return {"box": box, "label": label, "score": score, "track_id": track}


class TestMultibox:
    def test_three_stacked_boxes_fire(self):
        boxes = [make_box(10, 10, 10, 8), make_box(11, 10, 10, 8), make_box(12, 10, 10, 8)]
        assert multibox_severity(boxes, 0.25) >= 1.0

    def test_two_boxes_never_fire(self):
        boxes = [make_box(10, 10, 10, 8), make_box(11, 10, 10, 8)]
        assert multibox_severity(boxes, 0.1) == 0.0

    def test_disjoint_triple_does_not_fire(self):
        boxes = [make_box(10, 10, 8, 8), make_box(50, 10, 8, 8), make_box(90, 10, 8, 8)]
        assert multibox_severity(boxes, 0.1) == 0.0

    def test_assertion_over_stream(self):
        assertion = MultiboxAssertion(0.25)
        stacked = [det(10, 10, track=0), det(11, 10, track=1), det(12, 10, track=2)]
        items = make_stream([[det(10, 10, track=0)], stacked])
        sev = assertion.evaluate_stream(items)
        assert sev[0] == 0.0 and sev[1] >= 1.0

    def test_flagged_output_indices(self):
        assertion = MultiboxAssertion(0.25)
        stacked = [det(10, 10), det(11, 10), det(12, 10), det(90, 50)]
        item = make_stream([stacked])[0]
        assert assertion.flagged_output_indices(item) == [0, 1, 2]

    def test_output_filter(self):
        assertion = MultiboxAssertion(0.25, output_filter=lambda o: o.get("keep"))
        stacked = [dict(det(10, 10), keep=False) for _ in range(3)]
        item = make_stream([stacked])[0]
        assert assertion.evaluate_stream([item])[0] == 0.0


class TestInterpolateBox:
    def test_midpoint_interpolation(self):
        spec = video_consistency_spec(1.0)
        items = make_stream([[det(10, 10, track=5)], [], [det(20, 10, track=5)]])
        from repro.core.consistency import group_observations

        obs = group_observations(spec, items)[5]
        imputed = interpolate_box(5, items[1], obs)
        assert imputed["box"].center[0] == pytest.approx(15.0)
        assert imputed["track_id"] == 5
        assert imputed["imputed"] is True
        assert imputed["score"] == pytest.approx(0.8)

    def test_no_neighbors_returns_none(self):
        spec = video_consistency_spec(1.0)
        items = make_stream([[det(10, 10, track=5)], []])
        from repro.core.consistency import group_observations

        obs = group_observations(spec, items)[5]
        assert interpolate_box(5, items[1], obs) is None

    def test_majority_label(self):
        items = make_stream(
            [
                [det(10, 10, track=5, label="car")],
                [],
                [det(12, 10, track=5, label="car")],
            ]
        )
        from repro.core.consistency import group_observations

        spec = video_consistency_spec(1.0)
        obs = group_observations(spec, items)[5]
        assert interpolate_box(5, items[1], obs)["label"] == "car"


class TestVideoPipeline:
    def test_assertion_registration_order(self):
        pipeline = VideoPipeline()
        assert pipeline.assertion_names == ["multibox", "flicker", "appear"]

    def test_tracker_assigns_stable_ids(self):
        pipeline = VideoPipeline()
        frames = [[make_box(10 + t, 20, 10, 8, label="car", score=0.9)] for t in range(5)]
        items = pipeline.to_stream(frames)
        ids = {o["track_id"] for item in items for o in item.outputs}
        assert len(ids) == 1

    def test_flicker_fires_on_detection_dropout(self):
        pipeline = VideoPipeline(VideoPipelineConfig(fps=1.0, temporal_threshold=3.0))
        frames = (
            [[make_box(10 + t, 20, 10, 8, label="car", score=0.9)] for t in range(3)]
            + [[]]
            + [[make_box(14 + t, 20, 10, 8, label="car", score=0.9)] for t in range(3)]
        )
        report, _ = pipeline.monitor(frames)
        assert report.fire_counts()["flicker"] == 1
        assert report.flagged_indices("flicker").tolist() == [3]

    def test_appear_fires_on_transient_detection(self):
        pipeline = VideoPipeline(VideoPipelineConfig(fps=1.0, temporal_threshold=3.0))
        persistent = [make_box(10 + t, 20, 10, 8, label="car", score=0.9) for t in range(7)]
        frames = [[p] for p in persistent]
        frames[3] = frames[3] + [make_box(100, 60, 10, 8, label="car", score=0.5)]
        report, _ = pipeline.monitor(frames)
        assert report.fire_counts()["appear"] == 1

    def test_clean_stream_no_fires(self):
        pipeline = VideoPipeline(VideoPipelineConfig(fps=1.0, temporal_threshold=2.0))
        frames = [[make_box(10 + t, 20, 10, 8, label="car", score=0.9)] for t in range(8)]
        report, _ = pipeline.monitor(frames)
        assert report.total_fires() == 0

    def test_severity_matrix_shape(self):
        pipeline = VideoPipeline()
        frames = [[make_box(10, 20, 10, 8, label="car", score=0.9)] for _ in range(4)]
        sev = pipeline.severity_matrix(frames)
        assert sev.shape == (4, 3)

    def test_flicker_correction_roundtrip(self):
        """Figure 1 bottom row: the gap box is imputed by the correction."""
        pipeline = VideoPipeline(VideoPipelineConfig(fps=1.0, temporal_threshold=3.0))
        frames = (
            [[make_box(10 + t, 20, 10, 8, label="car", score=0.9)] for t in range(3)]
            + [[]]
            + [[make_box(14 + t, 20, 10, 8, label="car", score=0.9)] for t in range(3)]
        )
        items = pipeline.to_stream(frames)
        corrections = pipeline.omg.corrections(items)
        adds = [c for c in corrections if c.kind == "add"]
        assert len(adds) == 1
        from repro.core.types import apply_corrections

        fixed = apply_corrections(items, corrections)
        assert len(fixed[3].outputs) == 1
        report = pipeline.omg.monitor(fixed)
        assert report.fire_counts()["flicker"] == 0


class TestVideoStreamingPath:
    def flicker_frames(self):
        return (
            [[make_box(10 + t, 20, 10, 8, label="car", score=0.9)] for t in range(3)]
            + [[]]
            + [[make_box(14 + t, 20, 10, 8, label="car", score=0.9)] for t in range(3)]
        )

    def test_domain_stream_matches_monitor(self):
        from repro.domains.registry import get_domain
        from repro.domains.video.domain import VideoDomainConfig

        config = VideoPipelineConfig(fps=1.0, temporal_threshold=3.0)
        frames = self.flicker_frames()
        offline, _ = VideoPipeline(config).monitor(frames)
        domain = get_domain("video", VideoDomainConfig(pipeline=config))
        monitor = domain.build_monitor()
        state = domain.new_state()
        records = []
        for detections in frames:
            for outputs, timestamp in domain.item_from_raw(detections, state):
                records.extend(monitor.observe(None, outputs, timestamp=timestamp))
        report = monitor.online_report()
        np.testing.assert_array_equal(report.severities, offline.severities)
        # the flicker record is attributed retroactively to the gap frame
        assert [r.item_index for r in records if r.assertion_name == "flicker"] == [3]

    def test_observe_batch_matches_monitor(self):
        config = VideoPipelineConfig(fps=1.0, temporal_threshold=3.0)
        frames = self.flicker_frames()
        offline, _ = VideoPipeline(config).monitor(frames)
        online = VideoPipeline(config)
        online.start_stream()
        online.observe_batch(frames[:4])
        chunk = online.observe_batch(frames[4:])
        assert chunk.n_items == 3
        np.testing.assert_array_equal(
            online.omg.online_report().severities, offline.severities
        )

    def test_start_stream_resets(self):
        config = VideoPipelineConfig(fps=1.0, temporal_threshold=3.0)
        pipeline = VideoPipeline(config)
        pipeline.observe_batch(self.flicker_frames())
        pipeline.start_stream()
        assert pipeline.omg.n_observed == 0
        assert pipeline.omg.online_report().n_items == 0
