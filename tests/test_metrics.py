"""Tests for repro.metrics: detection mAP and classification metrics."""

import numpy as np
import pytest

from repro.geometry.box2d import Box2D
from repro.metrics.classification import (
    accuracy_score,
    confusion_matrix,
    macro_f1,
    precision_recall_f1,
)
from repro.metrics.detection import average_precision, evaluate_detections


def gt(x, cls="car"):
    return Box2D(x, 0, x + 2, 2, label=cls)


def pred(x, score, cls="car"):
    return Box2D(x, 0, x + 2, 2, label=cls, score=score)


class TestAveragePrecision:
    def test_perfect_curve(self):
        assert np.isclose(average_precision(np.array([0.5, 1.0]), np.array([1.0, 1.0])), 1.0)

    def test_empty(self):
        assert average_precision(np.array([]), np.array([])) == 0.0

    def test_envelope_interpolation(self):
        # Precision dips then recovers: the envelope uses the future max.
        recall = np.array([0.5, 0.5, 1.0])
        precision = np.array([1.0, 0.5, 0.66])
        value = average_precision(recall, precision)
        assert 0.5 * 1.0 + 0.5 * 0.66 == pytest.approx(value, abs=1e-2)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            average_precision(np.zeros(2), np.zeros(3))


class TestEvaluateDetections:
    def test_perfect_detection(self):
        truths = [[gt(0)], [gt(5)]]
        preds = [[pred(0, 0.9)], [pred(5, 0.8)]]
        result = evaluate_detections(preds, truths)
        assert np.isclose(result.mean_ap, 1.0)
        assert result.mean_ap_percent == 100.0

    def test_miss_lowers_recall(self):
        truths = [[gt(0), gt(10)]]
        preds = [[pred(0, 0.9)]]
        result = evaluate_detections(preds, truths)
        assert np.isclose(result.mean_ap, 0.5)

    def test_duplicate_is_false_positive(self):
        truths = [[gt(0)]]
        dup = [[pred(0, 0.9), pred(0.1, 0.8)]]
        single = [[pred(0, 0.9)]]
        assert (
            evaluate_detections(dup, truths).mean_ap
            < evaluate_detections(single, truths).mean_ap + 1e-12
        )
        # the duplicate ranks below the TP so AP stays 1.0 only when no dup
        assert evaluate_detections(single, truths).mean_ap == pytest.approx(1.0)

    def test_high_confidence_fp_hurts_more(self):
        truths = [[gt(0)], [gt(5)]]
        low_fp = [[pred(0, 0.9), pred(20, 0.1)], [pred(5, 0.8)]]
        high_fp = [[pred(0, 0.9), pred(20, 0.95)], [pred(5, 0.8)]]
        assert (
            evaluate_detections(high_fp, truths).mean_ap
            < evaluate_detections(low_fp, truths).mean_ap
        )

    def test_wrong_class_is_both_fp_and_fn(self):
        truths = [[gt(0, "car")]]
        preds = [[pred(0, 0.9, "truck")]]
        result = evaluate_detections(preds, truths, classes=["car", "truck"])
        assert result.ap_per_class["car"] == 0.0
        assert np.isnan(result.ap_per_class["truck"])  # no truck GT

    def test_class_without_gt_is_nan_and_excluded(self):
        truths = [[gt(0, "car")]]
        preds = [[pred(0, 0.9, "car")]]
        result = evaluate_detections(preds, truths, classes=["car", "truck"])
        assert np.isnan(result.ap_per_class["truck"])
        assert np.isclose(result.mean_ap, 1.0)

    def test_frame_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            evaluate_detections([[]], [[], []])

    def test_localization_threshold(self):
        truths = [[gt(0)]]
        shifted = [[pred(1.2, 0.9)]]  # IoU ≈ 0.29
        assert evaluate_detections(shifted, truths, iou_threshold=0.5).mean_ap == 0.0
        assert evaluate_detections(shifted, truths, iou_threshold=0.25).mean_ap == 1.0


class TestClassificationMetrics:
    def test_accuracy(self):
        assert accuracy_score(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)
        assert accuracy_score(np.array([]), np.array([])) == 0.0

    def test_confusion_matrix(self):
        mat = confusion_matrix(np.array([0, 0, 1]), np.array([0, 1, 1]), 2)
        assert mat.tolist() == [[1, 1], [0, 1]]

    def test_confusion_matrix_out_of_range(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([2]), np.array([0]), 2)

    def test_precision_recall_f1(self):
        y_true = np.array([1, 1, 0, 0])
        y_pred = np.array([1, 0, 1, 0])
        p, r, f1 = precision_recall_f1(y_true, y_pred)
        assert p == 0.5 and r == 0.5 and f1 == 0.5

    def test_degenerate_returns_zero(self):
        p, r, f1 = precision_recall_f1(np.array([0, 0]), np.array([0, 0]))
        assert (p, r, f1) == (0.0, 0.0, 0.0)

    def test_macro_f1_perfect(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        assert macro_f1(y, y, 3) == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy_score(np.zeros(2), np.zeros(3))
