"""Tests for the ECG and TV-news domains."""

import numpy as np
import pytest

from repro.domains.ecg import (
    ECGClassifier,
    bootstrap_ecg_classifier,
    make_ecg_assertion,
    make_ecg_task_data,
    record_severities,
    run_ecg_weak_supervision,
)
from repro.domains.ecg.task import record_stream
from repro.domains.tvnews import TVNewsPipeline
from repro.worlds.ecg import ECG_CLASSES
from repro.worlds.tvnews import TVNewsWorld, TVNewsWorldConfig


@pytest.fixture(scope="module")
def ecg_data():
    return make_ecg_task_data(0, n_train=120, n_pool=300, n_test=300)


@pytest.fixture(scope="module")
def ecg_model(ecg_data):
    return bootstrap_ecg_classifier(ecg_data, seed=1)


class TestECGClassifier:
    def test_beats_chance(self, ecg_data, ecg_model):
        assert ecg_model.accuracy(ecg_data.test) > 50.0  # chance = 50% (majority)

    def test_predict_windows_shape(self, ecg_data, ecg_model):
        record = ecg_data.test[0]
        classes, probs = ecg_model.predict_windows(record)
        assert classes.shape == (record.n_windows,)
        assert probs.shape == (record.n_windows, len(ECG_CLASSES))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_record_prediction_is_majority(self, ecg_data, ecg_model):
        record = ecg_data.test[0]
        classes, _ = ecg_model.predict_windows(record)
        majority = np.bincount(classes, minlength=4).argmax()
        assert ecg_model.predict_record(record) == majority

    def test_confidence_in_unit_interval(self, ecg_data, ecg_model):
        assert 0.0 < ecg_model.record_confidence(ecg_data.test[0]) <= 1.0

    def test_clone_independent(self, ecg_data, ecg_model):
        clone = ecg_model.clone()
        clone.fine_tune(ecg_data.pool[:50], epochs=10)
        assert ecg_model.accuracy(ecg_data.test) != pytest.approx(
            clone.accuracy(ecg_data.test), abs=1e-12
        ) or True  # cloning must at least not crash; independence checked below
        record = ecg_data.test[0]
        assert not np.allclose(
            ecg_model.predict_windows(record)[1], clone.predict_windows(record)[1]
        )

    def test_predict_before_fit_raises(self, ecg_data):
        with pytest.raises(RuntimeError):
            ECGClassifier(seed=0).predict_windows(ecg_data.test[0])

    def test_fine_tune_before_fit_raises(self, ecg_data):
        with pytest.raises(RuntimeError):
            ECGClassifier(seed=0).fine_tune(ecg_data.pool[:5])


class TestECGAssertion:
    def test_oscillation_fires(self):
        assertion = make_ecg_assertion(30.0)
        classes = np.array([0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0])
        record = type(
            "R", (), {"n_windows": 11, "window_times": np.arange(11) * 5.0}
        )()
        items = record_stream(record, classes)
        assert assertion.evaluate_stream(items).sum() > 0

    def test_stable_prediction_abstains(self):
        assertion = make_ecg_assertion(30.0)
        record = type(
            "R", (), {"n_windows": 11, "window_times": np.arange(11) * 5.0}
        )()
        items = record_stream(record, np.zeros(11, dtype=int))
        assert assertion.evaluate_stream(items).sum() == 0

    def test_slow_transition_allowed(self):
        # A → B with both persisting ≥ 30 s: a genuine rhythm change.
        assertion = make_ecg_assertion(30.0)
        classes = np.array([0] * 7 + [1] * 7)
        record = type(
            "R", (), {"n_windows": 14, "window_times": np.arange(14) * 5.0}
        )()
        items = record_stream(record, classes)
        assert assertion.evaluate_stream(items).sum() == 0

    def test_record_severities_shape(self, ecg_data, ecg_model):
        sev = record_severities(ecg_model, ecg_data.pool[:40])
        assert sev.shape == (40, 1)
        assert np.all(sev >= 0)

    def test_flagged_records_have_oscillating_predictions(self, ecg_data, ecg_model):
        sev = record_severities(ecg_model, ecg_data.pool[:80])[:, 0]
        for idx in np.flatnonzero(sev > 0)[:10]:
            classes, _ = ecg_model.predict_windows(ecg_data.pool[idx])
            assert len(set(classes.tolist())) > 1


class TestECGWeakSupervision:
    def test_runs_and_reports(self, ecg_data):
        result = run_ecg_weak_supervision(ecg_data, n_weak=150, seed=3)
        assert result.domain == "ECG"
        assert result.n_weak_labels > 0
        assert 0 < result.pretrained_metric < 100
        assert 0 < result.weakly_supervised_metric < 100


class TestTVNewsPipeline:
    @pytest.fixture(scope="class")
    def scenes(self):
        return TVNewsWorld(seed=0).generate_videos(2, 1200)

    def test_assertions_registered(self):
        pipeline = TVNewsPipeline()
        assert pipeline.assertion_names == [
            "news:attr:identity",
            "news:attr:gender",
            "news:attr:hair",
        ]

    def test_fires_on_injected_errors(self, scenes):
        pipeline = TVNewsPipeline()
        report, _ = pipeline.monitor(scenes)
        assert report.total_fires() > 0

    def test_clean_world_abstains(self):
        cfg = TVNewsWorldConfig(
            identity_error_rate=0.0, gender_error_rate=0.0, hair_error_rate=0.0
        )
        scenes = TVNewsWorld(cfg, seed=0).generate_videos(1, 600)
        pipeline = TVNewsPipeline()
        report, _ = pipeline.monitor(scenes)
        assert report.total_fires() == 0

    def test_identifiers_scene_local(self, scenes):
        pipeline = TVNewsPipeline()
        _, items = pipeline.monitor(scenes)
        for item in items:
            for output in item.outputs:
                video_id, scene_id, _cluster = output["face_id"]
                assert output["observation"].scene_id == scene_id

    def test_aggregate_news_severity(self, scenes):
        pipeline = TVNewsPipeline()
        report, _ = pipeline.monitor(scenes)
        agg = pipeline.aggregate_news_severity(report)
        assert agg.shape == (report.n_items,)
        assert agg.sum() == report.severities.sum()


class TestStreamingPaths:
    def test_tvnews_domain_stream_matches_monitor(self):
        from repro.domains.registry import get_domain

        scenes = TVNewsWorld(seed=0).generate_videos(2, 1200)
        offline, _ = TVNewsPipeline().monitor(scenes)
        domain = get_domain("tvnews")
        monitor = domain.build_monitor()
        state = domain.new_state()
        for scene in scenes:
            for outputs, timestamp in domain.item_from_raw(scene, state):
                monitor.observe(None, outputs, timestamp=timestamp)
        report = monitor.online_report()
        assert report.assertion_names == offline.assertion_names
        np.testing.assert_array_equal(report.severities, offline.severities)

    def test_tvnews_served_stream_matches_monitor(self):
        from repro.serve import MonitorService

        scenes = TVNewsWorld(seed=0).generate_videos(2, 1200)
        offline = TVNewsPipeline().monitor(scenes)
        service = MonitorService("tvnews")
        for scene in scenes:
            service.ingest("feed", scene)
        report = service.report("feed")
        assert report.assertion_names == offline.report.assertion_names
        np.testing.assert_array_equal(report.severities, offline.report.severities)

    def test_ecg_record_severity_matches_offline(self, ecg_data, ecg_model):
        from repro.domains.ecg.assertions import make_ecg_assertion
        from repro.domains.ecg.task import (
            _build_ecg_monitor,
            _record_severity,
            record_stream,
        )

        assertion = make_ecg_assertion(30.0)
        monitor = _build_ecg_monitor(30.0)
        for record in ecg_data.pool[:20]:
            classes, _ = ecg_model.predict_windows(record)
            offline = float(assertion.evaluate_stream(record_stream(record, classes)).sum())
            online = _record_severity(monitor, record, classes)
            assert online == offline
