"""Tests for the consistency-assertion API (§4 of the paper)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.consistency import (
    AttributeConsistencyAssertion,
    ConsistencySpec,
    TemporalConsistencyAssertion,
    generate_assertions,
    majority_value,
)
from repro.core.types import apply_corrections, make_stream


def spec(temporal=None, weak_label=None):
    return ConsistencySpec(
        id_fn=lambda o: o.get("id"),
        attrs_fn=lambda o: {"cls": o["cls"]} if "cls" in o else {},
        temporal_threshold=temporal,
        weak_label_fn=weak_label,
        name="test",
    )


def out(identifier, cls="car"):
    return {"id": identifier, "cls": cls}


class TestMajorityValue:
    def test_majority(self):
        assert majority_value(["a", "b", "a"]) == "a"

    def test_tie_first_seen(self):
        assert majority_value(["b", "a"]) == "b"


class TestAttributeConsistency:
    def test_unanimous_group_abstains(self):
        assertion = AttributeConsistencyAssertion(spec(), "cls")
        items = make_stream([[out(1)], [out(1)], [out(1)]])
        assert assertion.evaluate_stream(items).sum() == 0

    def test_deviation_fires_on_minority_item(self):
        assertion = AttributeConsistencyAssertion(spec(), "cls")
        items = make_stream([[out(1, "car")], [out(1, "truck")], [out(1, "car")]])
        sev = assertion.evaluate_stream(items)
        assert sev.tolist() == [0.0, 1.0, 0.0]

    def test_singleton_identifier_ignored(self):
        assertion = AttributeConsistencyAssertion(spec(), "cls")
        items = make_stream([[out(1, "car")], [out(2, "truck")]])
        assert assertion.evaluate_stream(items).sum() == 0

    def test_correction_proposes_majority(self):
        assertion = AttributeConsistencyAssertion(spec(), "cls")
        items = make_stream([[out(1, "car")], [out(1, "truck")], [out(1, "car")]])
        corrections = assertion.corrections(items)
        assert len(corrections) == 1
        assert corrections[0].kind == "modify"
        assert corrections[0].proposed_output["cls"] == "car"
        fixed = apply_corrections(items, corrections)
        assert assertion.evaluate_stream(fixed).sum() == 0

    def test_tie_fires_but_does_not_correct(self):
        assertion = AttributeConsistencyAssertion(spec(), "cls")
        items = make_stream([[out(1, "car")], [out(1, "truck")]])
        assert assertion.evaluate_stream(items).sum() > 0
        assert assertion.corrections(items) == []

    def test_none_identifier_skipped(self):
        assertion = AttributeConsistencyAssertion(spec(), "cls")
        items = make_stream([[{"id": None, "cls": "car"}], [out(1, "car")]])
        assert assertion.evaluate_stream(items).sum() == 0

    def test_dataclass_outputs_supported(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Out:
            id: int
            cls: str

        s = ConsistencySpec(
            id_fn=lambda o: o.id, attrs_fn=lambda o: {"cls": o.cls}, name="dc"
        )
        assertion = AttributeConsistencyAssertion(s, "cls")
        items = make_stream([[Out(1, "a")], [Out(1, "b")], [Out(1, "a")]])
        corrections = assertion.corrections(items)
        assert corrections[0].proposed_output.cls == "a"


class TestTemporalConsistency:
    def test_requires_threshold(self):
        with pytest.raises(ValueError):
            TemporalConsistencyAssertion(spec(temporal=None))

    def test_gap_violation_detected(self):
        assertion = TemporalConsistencyAssertion(spec(temporal=3.0), mode="gap")
        items = make_stream([[out(1)], [out(1)], [], [out(1)]])
        violations = assertion.violations(items)
        assert len(violations) == 1
        assert violations[0].kind == "gap"
        assert (violations[0].start_pos, violations[0].end_pos) == (2, 2)
        sev = assertion.evaluate_stream(items)
        assert sev.tolist() == [0.0, 0.0, 1.0, 0.0]

    def test_long_gap_not_flagged(self):
        assertion = TemporalConsistencyAssertion(spec(temporal=2.0), mode="gap")
        items = make_stream([[out(1)], [], [], [out(1)]])  # gap of 3s ≥ T=2
        assert assertion.violations(items) == []

    def test_run_violation_detected(self):
        assertion = TemporalConsistencyAssertion(spec(temporal=3.0), mode="run")
        items = make_stream([[], [out(7)], [out(7)], []])
        violations = assertion.violations(items)
        assert len(violations) == 1
        assert violations[0].kind == "run"
        sev = assertion.evaluate_stream(items)
        assert sev.tolist() == [0.0, 1.0, 1.0, 0.0]

    def test_boundary_runs_not_flagged(self):
        # A short run touching the window edge may continue outside it.
        assertion = TemporalConsistencyAssertion(spec(temporal=5.0), mode="run")
        items = make_stream([[out(1)], [], [], []])
        assert assertion.violations(items) == []
        items = make_stream([[], [], [], [out(1)]])
        assert assertion.violations(items) == []

    def test_mode_both_sees_gap_and_run(self):
        assertion = TemporalConsistencyAssertion(spec(temporal=3.0), mode="both")
        items = make_stream([[out(1)], [], [out(1), out(2)], []])
        kinds = {v.kind for v in assertion.violations(items)}
        assert kinds == {"gap", "run"}

    def test_run_correction_removes(self):
        assertion = TemporalConsistencyAssertion(spec(temporal=3.0), mode="run")
        items = make_stream([[], [out(7)], []])
        corrections = assertion.corrections(items)
        assert [c.kind for c in corrections] == ["remove"]
        fixed = apply_corrections(items, corrections)
        assert fixed[1].outputs == ()

    def test_gap_correction_requires_weak_label_fn(self):
        assertion = TemporalConsistencyAssertion(spec(temporal=3.0), mode="gap")
        items = make_stream([[out(1)], [], [out(1)]])
        assert assertion.corrections(items) == []  # no WeakLabel provided

    def test_gap_correction_adds_imputed_output(self):
        def weak_label(identifier, item, observations):
            return {"id": identifier, "cls": "car", "imputed": True}

        assertion = TemporalConsistencyAssertion(
            spec(temporal=3.0, weak_label=weak_label), mode="gap"
        )
        items = make_stream([[out(1)], [], [out(1)]])
        corrections = assertion.corrections(items)
        assert [c.kind for c in corrections] == ["add"]
        fixed = apply_corrections(items, corrections)
        assert any(o.get("imputed") for o in fixed[1].outputs)
        # After correction the gap is healed: no more violations.
        assert assertion.violations(fixed) == []

    def test_timestamps_not_indices_drive_duration(self):
        # Same positions, stretched timestamps: the gap is now ≥ T.
        assertion = TemporalConsistencyAssertion(spec(temporal=3.0), mode="gap")
        items = make_stream([[out(1)], [], [out(1)]], timestamps=[0.0, 5.0, 10.0])
        assert assertion.violations(items) == []

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=1, max_value=12))
    def test_always_present_identifier_never_fires(self, n):
        assertion = TemporalConsistencyAssertion(spec(temporal=4.0), mode="both")
        items = make_stream([[out(1)] for _ in range(n)])
        assert assertion.evaluate_stream(items).sum() == 0


class TestGenerateAssertions:
    def test_attr_keys_explicit(self):
        generated = generate_assertions(spec(temporal=2.0), attr_keys=["cls"])
        names = [a.name for a in generated]
        assert names == ["test:attr:cls", "test:temporal"]

    def test_attr_keys_from_samples(self):
        generated = generate_assertions(spec(), sample_outputs=[out(1)])
        assert [a.name for a in generated] == ["test:attr:cls"]

    def test_temporal_modes(self):
        generated = generate_assertions(spec(temporal=1.0), temporal_modes=["gap", "run"])
        assert [a.name for a in generated] == ["test:temporal:gap", "test:temporal:run"]

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ConsistencySpec(id_fn=lambda o: o, temporal_threshold=0.0)

    def test_spec_generating_zero_assertions_rejected_at_construction(self):
        # Regression: no attrs_fn and no temporal threshold used to build
        # a spec that silently generated nothing; now construction names
        # the offending spec.
        with pytest.raises(ValueError, match="'hollow'.*zero"):
            ConsistencySpec(id_fn=lambda o: o, name="hollow")
