"""Tests for repro.geometry.box2d."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.box2d import Box2D, box_area, boxes_to_array, clip_boxes, make_box

coords = st.floats(min_value=-100, max_value=100, allow_nan=False)
sizes = st.floats(min_value=0.5, max_value=50, allow_nan=False)


class TestBox2D:
    def test_basic_properties(self):
        box = Box2D(1, 2, 4, 8, label="car", score=0.5)
        assert box.width == 3
        assert box.height == 6
        assert box.area == 18
        assert box.center == (2.5, 5.0)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Box2D(0, 0, 0, 1)
        with pytest.raises(ValueError):
            Box2D(0, 0, 1, 0)
        with pytest.raises(ValueError):
            Box2D(2, 0, 1, 1)

    def test_with_label_and_score(self):
        box = Box2D(0, 0, 1, 1)
        assert box.with_label("x").label == "x"
        assert box.with_score(0.3).score == 0.3
        # original untouched (frozen dataclass)
        assert box.label == "" and box.score == 1.0

    def test_shifted(self):
        box = Box2D(0, 0, 2, 2, label="t", score=0.4).shifted(1, -1)
        assert (box.x1, box.y1, box.x2, box.y2) == (1, -1, 3, 1)
        assert box.label == "t" and box.score == 0.4

    @given(cx=coords, cy=coords, w=sizes, h=sizes)
    def test_make_box_roundtrip(self, cx, cy, w, h):
        box = make_box(cx, cy, w, h)
        assert np.isclose(box.width, w)
        assert np.isclose(box.height, h)
        assert np.allclose(box.center, (cx, cy))


class TestBoxArrays:
    def test_boxes_to_array_empty(self):
        assert boxes_to_array([]).shape == (0, 4)

    def test_boxes_to_array_list(self):
        arr = boxes_to_array([Box2D(0, 0, 1, 2), Box2D(1, 1, 3, 3)])
        assert arr.shape == (2, 4)
        assert np.allclose(arr[0], [0, 0, 1, 2])

    def test_boxes_to_array_1d_input(self):
        assert boxes_to_array(np.array([0.0, 0, 1, 1])).shape == (1, 4)

    def test_boxes_to_array_bad_columns(self):
        with pytest.raises(ValueError):
            boxes_to_array(np.zeros((2, 3)))

    def test_box_area_vectorized(self):
        arr = np.array([[0, 0, 2, 2], [0, 0, 1, 3]], dtype=float)
        assert np.allclose(box_area(arr), [4, 3])

    def test_clip_boxes(self):
        arr = np.array([[-5, -5, 10, 10]], dtype=float)
        clipped = clip_boxes(arr, width=8, height=6)
        assert np.allclose(clipped, [[0, 0, 8, 6]])

    def test_clip_boxes_does_not_mutate(self):
        arr = np.array([[-1.0, 0, 2, 2]])
        clip_boxes(arr, 5, 5)
        assert arr[0, 0] == -1.0
