"""Tests for domain task plumbing: splits, uncertainty, task contracts."""

import numpy as np
import pytest

from repro.domains.av.task import default_av_detector_config, make_av_task_data
from repro.domains.ecg.task import make_ecg_task_data, record_stream
from repro.domains.video.task import frame_uncertainty, make_video_task_data
from repro.geometry.box2d import make_box


class TestVideoTaskData:
    def test_split_sizes(self):
        data = make_video_task_data(0, n_pool=40, n_test=20)
        assert len(data.pool) == 40
        assert len(data.test) == 20
        assert len(data.bootstrap) == 48  # 45 day + 3 other-night

    def test_splits_are_independent_worlds(self):
        data = make_video_task_data(0, n_pool=10, n_test=10)
        assert not np.allclose(data.pool[0].image, data.test[0].image)

    def test_seed_determinism(self):
        a = make_video_task_data(3, n_pool=5, n_test=5)
        b = make_video_task_data(3, n_pool=5, n_test=5)
        assert np.allclose(a.pool[2].image, b.pool[2].image)

    def test_bootstrap_is_car_dominated(self):
        data = make_video_task_data(0, n_pool=5, n_test=5)
        labels = [v.label for f in data.bootstrap for v in f.vehicles]
        assert labels.count("car") / len(labels) > 0.6


class TestFrameUncertainty:
    def test_empty_frame_is_moderate(self):
        assert frame_uncertainty([[]])[0] == 0.5

    def test_weakest_detection_drives_score(self):
        frame = [
            make_box(10, 10, 8, 8, label="car", score=0.9),
            make_box(30, 10, 8, 8, label="car", score=0.4),
        ]
        assert frame_uncertainty([frame])[0] == pytest.approx(0.6)

    def test_confident_frame_low_uncertainty(self):
        frame = [make_box(10, 10, 8, 8, label="car", score=0.95)]
        assert frame_uncertainty([frame])[0] == pytest.approx(0.05)


class TestAVTaskData:
    def test_split_sizes(self):
        data = make_av_task_data(
            0, n_bootstrap_scenes=2, n_camera_pretrain_scenes=1, n_pool_scenes=3, n_test_scenes=1
        )
        cfg_samples = 20  # AVWorldConfig.samples_per_scene default
        assert len(data.bootstrap_samples) == 2 * cfg_samples
        assert len(data.camera_pretrain_samples) == 1 * cfg_samples
        assert len(data.pool_samples) == 3 * cfg_samples
        assert len(data.test_samples) == 1 * cfg_samples

    def test_camera_pretrain_is_brighter(self):
        data = make_av_task_data(
            0, n_bootstrap_scenes=2, n_camera_pretrain_scenes=2, n_pool_scenes=2, n_test_scenes=1
        )
        pretrain_mean = np.mean([s.camera_image.mean() for s in data.camera_pretrain_samples])
        pool_mean = np.mean([s.camera_image.mean() for s in data.pool_samples])
        assert pretrain_mean > pool_mean

    def test_default_detector_config(self):
        cfg = default_av_detector_config()
        assert cfg.classes == ("car", "truck")
        assert cfg.proposal.min_area < 12  # looser than street defaults


class TestECGTaskData:
    def test_split_sizes(self):
        data = make_ecg_task_data(0, n_train=10, n_pool=20, n_test=5)
        assert (len(data.train), len(data.pool), len(data.test)) == (10, 20, 5)

    def test_splits_disjoint_by_record_id(self):
        data = make_ecg_task_data(0, n_train=10, n_pool=20, n_test=5)
        ids = [r.record_id for r in data.train + data.pool + data.test]
        assert len(set(ids)) == len(ids)

    def test_record_stream_timestamps(self):
        data = make_ecg_task_data(0, n_train=1, n_pool=1, n_test=1)
        record = data.train[0]
        items = record_stream(record, np.zeros(record.n_windows, dtype=int))
        assert len(items) == record.n_windows
        assert items[1].timestamp == record.window_times[1]
        assert items[0].outputs[0]["class"] == 0
