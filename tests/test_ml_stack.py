"""Tests for repro.ml: preprocessing, losses, optimizers, models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.linear import LogisticRegression
from repro.ml.losses import cross_entropy, cross_entropy_grad, one_hot, softmax
from repro.ml.mlp import MLPClassifier
from repro.ml.optim import SGD, Adam
from repro.ml.preprocess import Standardizer


class TestStandardizer:
    def test_zero_mean_unit_var(self, rng):
        x = rng.normal(5.0, 3.0, size=(200, 4))
        z = Standardizer().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(z.std(axis=0), 1, atol=1e-9)

    def test_constant_feature_maps_to_zero(self):
        x = np.ones((10, 1)) * 3.0
        z = Standardizer().fit_transform(x)
        assert np.allclose(z, 0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.ones((2, 2)))

    def test_frozen_statistics(self, rng):
        s = Standardizer().fit(rng.normal(size=(50, 2)))
        mean_before = s.mean_.copy()
        s.transform(rng.normal(10, 1, size=(50, 2)))
        assert np.allclose(s.mean_, mean_before)

    def test_dimension_mismatch_raises(self, rng):
        s = Standardizer().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError):
            s.transform(np.zeros((5, 2)))

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            Standardizer().fit(np.zeros((0, 2)))


class TestLosses:
    def test_one_hot(self):
        out = one_hot(np.array([0, 2]), 3)
        assert np.allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    @given(st.lists(st.floats(-50, 50), min_size=2, max_size=6))
    def test_softmax_is_distribution(self, logits):
        p = softmax(np.array([logits]))
        assert np.isclose(p.sum(), 1.0)
        assert np.all(p >= 0)

    def test_softmax_stability(self):
        p = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(p, [[0.5, 0.5]])

    def test_cross_entropy_perfect_prediction(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert cross_entropy(probs, np.array([0, 1])) < 1e-9

    def test_cross_entropy_soft_targets(self):
        probs = np.array([[0.5, 0.5]])
        value = cross_entropy(probs, np.array([[0.5, 0.5]]))
        assert np.isclose(value, -np.log(0.5))

    def test_cross_entropy_grad_shape_and_sign(self):
        probs = np.array([[0.9, 0.1]])
        grad = cross_entropy_grad(probs, one_hot(np.array([1]), 2))
        assert grad.shape == (1, 2)
        assert grad[0, 0] > 0 and grad[0, 1] < 0

    def test_cross_entropy_weighted(self):
        probs = np.array([[0.9, 0.1], [0.1, 0.9]])
        labels = np.array([0, 0])
        # Weighting the bad prediction more should raise the loss.
        low = cross_entropy(probs, labels, sample_weight=np.array([1.0, 0.0]))
        high = cross_entropy(probs, labels, sample_weight=np.array([0.0, 1.0]))
        assert high > low


class TestOptimizers:
    @pytest.mark.parametrize("opt_factory", [lambda: SGD(0.1), lambda: Adam(0.1)])
    def test_minimizes_quadratic(self, opt_factory):
        opt = opt_factory()
        x = [np.array([5.0])]
        for _ in range(300):
            opt.step(x, [2 * x[0]])  # d/dx x^2
        assert abs(x[0][0]) < 1e-2

    def test_sgd_momentum_accelerates(self):
        plain, momentum = SGD(0.01), SGD(0.01, momentum=0.9)
        xa, xb = [np.array([5.0])], [np.array([5.0])]
        for _ in range(50):
            plain.step(xa, [2 * xa[0]])
            momentum.step(xb, [2 * xb[0]])
        assert abs(xb[0][0]) < abs(xa[0][0])

    def test_reset_clears_state(self):
        opt = Adam(0.1)
        x = [np.array([1.0])]
        opt.step(x, [np.array([1.0])])
        opt.reset()
        assert opt._m is None and opt._t == 0

    def test_bad_lr_raises(self):
        with pytest.raises(ValueError):
            SGD(0.0)
        with pytest.raises(ValueError):
            Adam(-1.0)


def _blobs(rng, n=300, separation=4.0):
    """Two well-separated Gaussian blobs."""
    x0 = rng.normal(0, 1, size=(n, 2))
    x1 = rng.normal(separation, 1, size=(n, 2))
    x = np.concatenate([x0, x1])
    y = np.concatenate([np.zeros(n, dtype=int), np.ones(n, dtype=int)])
    return x, y


class TestLogisticRegression:
    def test_learns_separable(self, rng):
        x, y = _blobs(rng)
        model = LogisticRegression(2, 2, seed=0).fit(x, y, epochs=50)
        assert np.mean(model.predict(x) == y) > 0.95

    def test_predict_proba_rows_sum_to_one(self, rng):
        x, y = _blobs(rng, n=50)
        model = LogisticRegression(2, 2, seed=0).fit(x, y, epochs=5)
        assert np.allclose(model.predict_proba(x).sum(axis=1), 1.0)

    def test_clone_preserves_weights(self, rng):
        x, y = _blobs(rng, n=50)
        model = LogisticRegression(2, 2, seed=0).fit(x, y, epochs=10)
        clone = model.clone()
        assert np.allclose(clone.weights, model.weights)
        assert np.allclose(clone.predict_proba(x), model.predict_proba(x))

    def test_warm_start_continues(self, rng):
        x, y = _blobs(rng, separation=2.0)
        model = LogisticRegression(2, 2, seed=0).fit(x, y, epochs=2)
        loss_before = model.loss(x, y)
        model.fit(x, y, epochs=30, reset=False)
        assert model.loss(x, y) < loss_before

    def test_lr_override_restored(self, rng):
        x, y = _blobs(rng, n=50)
        model = LogisticRegression(2, 2, learning_rate=0.05, seed=0)
        model.fit(x, y, epochs=1, learning_rate=1e-5)
        assert model._optimizer.learning_rate == 0.05

    def test_sample_weight_shifts_decision(self, rng):
        x, y = _blobs(rng, separation=1.0)
        w_up = np.where(y == 1, 10.0, 1.0)
        biased = LogisticRegression(2, 2, seed=0).fit(x, y, epochs=30, sample_weight=w_up)
        plain = LogisticRegression(2, 2, seed=0).fit(x, y, epochs=30)
        assert (biased.predict(x) == 1).sum() >= (plain.predict(x) == 1).sum()

    def test_bad_shapes_raise(self):
        model = LogisticRegression(2, 3, seed=0)
        with pytest.raises(ValueError):
            model.fit(np.zeros((4, 2)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            model.fit(np.zeros((0, 3)), np.zeros(0, dtype=int))


class TestMLPClassifier:
    def test_learns_xor(self, rng):
        # XOR is not linearly separable: requires the hidden layer.
        x = rng.uniform(-1, 1, size=(600, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
        model = MLPClassifier(2, hidden=(16,), n_classes=2, learning_rate=0.02, seed=0)
        model.fit(x, y, epochs=300, reset=True)
        assert np.mean(model.predict(x) == y) > 0.9

    def test_clone_is_deep(self, rng):
        x, y = _blobs(rng, n=50)
        model = MLPClassifier(2, hidden=(4,), n_classes=2, seed=0).fit(x, y, epochs=5)
        clone = model.clone()
        clone.fit(x, y, epochs=20)
        # training the clone must not touch the original
        assert not all(
            np.allclose(a, b) for a, b in zip(model.weights, clone.weights)
        )

    def test_soft_targets_accepted(self, rng):
        x, _ = _blobs(rng, n=40)
        soft = np.full((x.shape[0], 2), 0.5)
        MLPClassifier(2, hidden=(4,), n_classes=2, seed=0).fit(x, soft, epochs=2)

    def test_invalid_hidden_raises(self):
        with pytest.raises(ValueError):
            MLPClassifier(2, hidden=(), n_classes=2)
        with pytest.raises(ValueError):
            MLPClassifier(2, hidden=(0,), n_classes=2)

    def test_reset_reinitializes(self, rng):
        x, y = _blobs(rng, n=50)
        model = MLPClassifier(2, hidden=(4,), n_classes=2, seed=0).fit(x, y, epochs=10)
        w_trained = [w.copy() for w in model.weights]
        model.fit(x, y, epochs=0, reset=True)
        assert not all(np.allclose(a, b) for a, b in zip(w_trained, model.weights))
