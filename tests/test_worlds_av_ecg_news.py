"""Tests for the AV, ECG, and TV-news worlds."""

import numpy as np
import pytest

from repro.geometry.camera import project_box3d_to_2d
from repro.worlds.av import AVWorld, AVWorldConfig
from repro.worlds.ecg import ECG_CLASSES, ECGRecord, ECGWorld, ECGWorldConfig
from repro.worlds.tvnews import GENDERS, HAIR_COLORS, TVNewsWorld, TVNewsWorldConfig


class TestAVWorld:
    def test_scene_structure(self):
        cfg = AVWorldConfig(samples_per_scene=6)
        scene = AVWorld(cfg, seed=0).generate_scene(3)
        assert scene.scene_id == 3
        assert len(scene) == 6
        assert scene.samples[1].timestamp == pytest.approx(0.5)  # 2 Hz

    def test_determinism(self):
        a = AVWorld(seed=9).generate_scene(0)
        b = AVWorld(seed=9).generate_scene(0)
        assert np.allclose(a.samples[0].point_cloud, b.samples[0].point_cloud)
        assert np.allclose(a.samples[0].camera_image, b.samples[0].camera_image)

    def test_point_cloud_shape(self):
        sample = AVWorld(seed=0).generate_scene(0).samples[0]
        assert sample.point_cloud.ndim == 2 and sample.point_cloud.shape[1] == 3

    def test_gt2d_matches_projection_of_gt3d(self):
        cfg = AVWorldConfig()
        sample = AVWorld(cfg, seed=1).generate_scene(0).samples[0]
        for box2d in sample.ground_truth_2d:
            # every 2-D GT must be the projection of some 3-D GT
            candidates = [
                project_box3d_to_2d(b3, cfg.camera) for b3 in sample.ground_truth_3d
            ]
            assert any(
                c is not None and abs(c.x1 - box2d.x1) < 1e-9 for c in candidates
            )

    def test_vehicle_points_near_their_boxes(self):
        cfg = AVWorldConfig(clutter_clusters=(0, 0), ground_points=0)
        sample = AVWorld(cfg, seed=2).generate_scene(0).samples[0]
        if sample.point_cloud.shape[0] == 0:
            pytest.skip("no returns this seed")
        centers = np.array([[b.cx, b.cy] for b in sample.ground_truth_3d])
        dists = np.min(
            np.linalg.norm(
                sample.point_cloud[:, None, :2] - centers[None, :, :], axis=2
            ),
            axis=1,
        )
        assert np.percentile(dists, 95) < 8.0

    def test_generate_scenes_ids(self):
        scenes = AVWorld(seed=0).generate_scenes(3, start_id=10)
        assert [s.scene_id for s in scenes] == [10, 11, 12]

    def test_negative_scene_count(self):
        with pytest.raises(ValueError):
            AVWorld(seed=0).generate_scenes(-1)


class TestECGWorld:
    def test_record_shape(self):
        cfg = ECGWorldConfig()
        record = ECGWorld(cfg, seed=0).generate_record()
        assert record.features.shape == (record.n_windows, 8)
        assert record.window_times.shape == (record.n_windows,)
        assert 0 <= record.label < len(ECG_CLASSES)

    def test_class_distribution_roughly_matches(self):
        records = ECGWorld(seed=0).generate_records(2000)
        counts = np.bincount([r.label for r in records], minlength=4) / 2000
        assert np.allclose(counts, ECGWorldConfig().class_probabilities, atol=0.05)

    def test_features_positive(self):
        records = ECGWorld(seed=1).generate_records(50)
        for r in records:
            assert np.all(r.features > 0)

    def test_class_separation_controls_difficulty(self):
        # Higher separation → AF and Normal RR-irregularity differ more.
        def gap(sep):
            world = ECGWorld(ECGWorldConfig(class_separation=sep), seed=0)
            records = world.generate_records(500)
            rmssd = {0: [], 1: []}
            for r in records:
                if r.label in rmssd:
                    rmssd[r.label].append(r.features[:, 2].mean())
            return abs(np.mean(rmssd[1]) - np.mean(rmssd[0]))

        assert gap(1.0) > gap(0.3)

    def test_record_ids_unique(self):
        records = ECGWorld(seed=0).generate_records(10)
        assert len({r.record_id for r in records}) == 10

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ECGWorldConfig(class_probabilities=(1.0, 0.5, 0.0, 0.0))
        with pytest.raises(ValueError):
            ECGWorldConfig(window_seconds=120.0, record_seconds=60.0)


class TestTVNewsWorld:
    def test_scene_generation(self):
        scenes = TVNewsWorld(seed=0).generate_video(0, 600)
        assert scenes
        assert all(s.observations for s in scenes)
        assert [s.scene_id for s in scenes] == list(range(len(scenes)))

    def test_attributes_from_valid_vocabularies(self):
        scenes = TVNewsWorld(seed=0).generate_video(0, 300)
        for s in scenes:
            for o in s.observations:
                assert o.pred_gender in GENDERS and o.true_gender in GENDERS
                assert o.pred_hair in HAIR_COLORS and o.true_hair in HAIR_COLORS

    def test_error_rates_approximate_config(self):
        cfg = TVNewsWorldConfig(identity_error_rate=0.1, gender_error_rate=0.0, hair_error_rate=0.0)
        scenes = TVNewsWorld(cfg, seed=0).generate_videos(3, 1200)
        obs = [o for s in scenes for o in s.observations]
        rate = np.mean([o.identity_wrong for o in obs])
        assert rate == pytest.approx(0.1, abs=0.03)
        assert all(o.pred_gender == o.true_gender for o in obs)

    def test_hosts_static_within_scene(self):
        cfg = TVNewsWorldConfig(position_jitter=0.5)
        scenes = TVNewsWorld(cfg, seed=0).generate_video(0, 600)
        scene = max(scenes, key=lambda s: len(s.observations))
        by_identity = {}
        for o in scene.observations:
            by_identity.setdefault(o.true_identity, []).append(o.box.center)
        for centers in by_identity.values():
            centers = np.array(centers)
            assert centers.std(axis=0).max() < 5.0

    def test_true_attributes_consistent_per_member(self):
        world = TVNewsWorld(seed=0)
        scenes = world.generate_videos(2, 600)
        genders = {}
        for s in scenes:
            for o in s.observations:
                genders.setdefault(o.true_identity, set()).add(o.true_gender)
        assert all(len(g) == 1 for g in genders.values())


class TestWorldStreamingGenerators:
    def test_av_iter_scenes_matches_generate(self):
        eager = AVWorld(seed=3).generate_scenes(3)
        lazy = list(AVWorld(seed=3).iter_scenes(3))
        assert [s.scene_id for s in eager] == [s.scene_id for s in lazy]
        np.testing.assert_array_equal(
            eager[1].samples[0].point_cloud, lazy[1].samples[0].point_cloud
        )

    def test_ecg_iter_records_matches_generate(self):
        eager = ECGWorld(seed=4).generate_records(3)
        lazy = list(ECGWorld(seed=4).iter_records(3))
        assert [r.record_id for r in eager] == [r.record_id for r in lazy]
        np.testing.assert_array_equal(eager[2].features, lazy[2].features)
