"""Tests for the LIDAR detector and labeling services."""

import numpy as np
import pytest

from repro.labeling.human import HumanLabeler, OracleLabeler
from repro.lidar.clustering import BEVGrid, cluster_points
from repro.lidar.detector import LidarDetector, cluster_features
from repro.worlds.av import AVWorld, AVWorldConfig
from repro.worlds.traffic import TrafficWorld, night_config


class TestClustering:
    def test_two_separated_blobs(self, rng):
        a = rng.normal([10, 0, 1], 0.3, size=(40, 3))
        b = rng.normal([30, 5, 1], 0.3, size=(40, 3))
        clusters = cluster_points(np.concatenate([a, b]))
        assert len(clusters) == 2
        sizes = sorted(c.n_points for c in clusters)
        assert sizes == [40, 40]

    def test_ground_points_removed(self, rng):
        ground = np.column_stack(
            [rng.uniform(5, 50, 100), rng.uniform(-10, 10, 100), np.full(100, 0.05)]
        )
        assert cluster_points(ground) == []

    def test_out_of_range_removed(self, rng):
        far = rng.normal([100, 0, 1], 0.3, size=(20, 3))
        assert cluster_points(far) == []

    def test_empty_input(self):
        assert cluster_points(np.zeros((0, 3))) == []

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            cluster_points(np.zeros((5, 2)))

    def test_cluster_properties(self, rng):
        pts = rng.normal([10, 0, 1], 0.3, size=(30, 3))
        cluster = cluster_points(pts)[0]
        assert cluster.n_points == 30
        assert np.allclose(cluster.centroid, pts.mean(axis=0))
        (x1, y1), (x2, y2) = cluster.bounds
        assert x2 >= x1 and y2 >= y1

    def test_feature_vector(self, rng):
        pts = rng.normal([10, 0, 1], 0.3, size=(30, 3))
        cluster = cluster_points(pts)[0]
        feats = cluster_features(cluster)
        assert feats.shape == (8,)
        assert np.all(np.isfinite(feats))


class TestLidarDetector:
    @pytest.fixture(scope="class")
    def scenes(self):
        return AVWorld(AVWorldConfig(), seed=0).generate_scenes(8)

    def test_fit_and_detect(self, scenes):
        train = [s for sc in scenes[:6] for s in sc.samples]
        detector = LidarDetector(seed=0)
        detector.fit(
            [s.point_cloud for s in train], [list(s.ground_truth_3d) for s in train]
        )
        test = [s for sc in scenes[6:] for s in sc.samples]
        tp = fp = n_gt = 0
        for s in test:
            dets = detector.detect(s.point_cloud)
            centers = [(b.cx, b.cy) for b in s.ground_truth_3d]
            n_gt += len(centers)
            used = set()
            for d in dets:
                hit = False
                for j, (gx, gy) in enumerate(centers):
                    if j not in used and np.hypot(d.cx - gx, d.cy - gy) <= 2.0:
                        used.add(j)
                        hit = True
                        break
                tp += hit
                fp += not hit
        assert tp / max(tp + fp, 1) > 0.5  # reasonable precision
        assert tp / max(n_gt, 1) > 0.2  # nonzero recall

    def test_detect_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LidarDetector(seed=0).detect(np.zeros((10, 3)))

    def test_boxes_sorted_by_score(self, scenes):
        train = [s for sc in scenes[:6] for s in sc.samples]
        detector = LidarDetector(seed=0)
        detector.fit(
            [s.point_cloud for s in train], [list(s.ground_truth_3d) for s in train]
        )
        dets = detector.detect(scenes[7].samples[0].point_cloud)
        scores = [d.score for d in dets]
        assert scores == sorted(scores, reverse=True)


class TestLabeling:
    @pytest.fixture(scope="class")
    def frames(self):
        return TrafficWorld(night_config(), seed=0).generate(120)

    def test_oracle_returns_ground_truth(self, frames):
        labels = OracleLabeler().label_frames(frames)
        assert labels[0] == frames[0].ground_truth

    def test_error_rate_approximate(self, frames):
        labeler = HumanLabeler(class_error_rate=0.2, seed=0)
        labels = [l for frame in labeler.label_frames(frames) for l in frame]
        rate = np.mean([l.is_error for l in labels])
        assert rate == pytest.approx(0.2, abs=0.06)

    def test_zero_error_rate_is_perfect(self, frames):
        labeler = HumanLabeler(class_error_rate=0.0, seed=0)
        labels = [l for frame in labeler.label_frames(frames) for l in frame]
        assert not any(l.is_error for l in labels)

    def test_boxes_exact(self, frames):
        # "There were no localization errors" — boxes match GT exactly.
        labeler = HumanLabeler(class_error_rate=0.5, seed=0)
        for frame, labels in zip(frames, labeler.label_frames(frames)):
            for vehicle, label in zip(frame.vehicles, labels):
                assert label.box.x1 == vehicle.box.x1
                assert label.object_id == vehicle.object_id

    def test_mistaken_labels_are_valid_classes(self, frames):
        from repro.worlds.traffic import VEHICLE_CLASSES

        labeler = HumanLabeler(class_error_rate=1.0, seed=0)
        labels = [l for frame in labeler.label_frames(frames) for l in frame]
        assert all(l.box.label in VEHICLE_CLASSES for l in labels)
        assert all(l.is_error for l in labels)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            HumanLabeler(class_error_rate=1.5)
