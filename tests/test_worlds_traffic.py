"""Tests for the traffic world simulator."""

import numpy as np
import pytest

from repro.worlds.traffic import (
    TrafficWorld,
    TrafficWorldConfig,
    VEHICLE_CLASSES,
    day_config,
    night_config,
)


class TestTrafficWorld:
    def test_determinism(self):
        a = TrafficWorld(night_config(), seed=5).generate(10)
        b = TrafficWorld(night_config(), seed=5).generate(10)
        assert np.allclose(a[3].image, b[3].image)
        assert [v.object_id for v in a[3].vehicles] == [v.object_id for v in b[3].vehicles]

    def test_different_seeds_differ(self):
        a = TrafficWorld(night_config(), seed=1).generate(5)
        b = TrafficWorld(night_config(), seed=2).generate(5)
        assert not np.allclose(a[4].image, b[4].image)

    def test_image_shape_and_range(self):
        cfg = night_config()
        frames = TrafficWorld(cfg, seed=0).generate(3)
        for frame in frames:
            assert frame.image.shape == (cfg.height, cfg.width)
            assert frame.image.min() >= 0.0 and frame.image.max() <= 1.0

    def test_ground_truth_labels_valid(self):
        frames = TrafficWorld(night_config(), seed=0).generate(30)
        labels = {v.label for f in frames for v in f.vehicles}
        assert labels <= set(VEHICLE_CLASSES)
        assert labels  # warmup populated the street

    def test_vehicles_move_in_their_direction(self):
        frames = TrafficWorld(night_config(), seed=0).generate(20)
        positions = {}
        for frame in frames:
            for v in frame.vehicles:
                positions.setdefault(v.object_id, []).append((v.box.center[0], v.direction))
        moved = 0
        for history in positions.values():
            if len(history) >= 2:
                (x0, d), (x1, _) = history[0], history[-1]
                assert (x1 - x0) * d >= 0
                moved += 1
        assert moved > 0

    def test_timestamps_follow_fps(self):
        cfg = night_config()
        frames = TrafficWorld(cfg, seed=0).generate(3)
        assert frames[1].timestamp == pytest.approx(1.0 / cfg.fps)

    def test_day_is_brighter_than_night(self):
        day = TrafficWorld(day_config(), seed=0).generate(5)
        night = TrafficWorld(night_config(), seed=0).generate(5)
        assert np.mean([f.image.mean() for f in day]) > np.mean(
            [f.image.mean() for f in night]
        )

    def test_vehicle_boxes_overlap_image(self):
        cfg = night_config()
        frames = TrafficWorld(cfg, seed=0).generate(10)
        for frame in frames:
            for v in frame.vehicles:
                assert v.box.x2 > 0 and v.box.x1 < cfg.width

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrafficWorldConfig(profile="dusk")
        with pytest.raises(ValueError):
            TrafficWorldConfig(class_probabilities=(0.5, 0.1))

    def test_negative_frames_raise(self):
        with pytest.raises(ValueError):
            TrafficWorld(seed=0).generate(-1)

    def test_traffic_waves_modulate_density(self):
        # With waves disabled, density stays steadier than with deep waves.
        steady_cfg = TrafficWorldConfig(profile="night", traffic_wave_period=0.0)
        wave_cfg = TrafficWorldConfig(
            profile="night", traffic_wave_period=10.0, traffic_wave_min=0.0
        )
        steady = TrafficWorld(steady_cfg, seed=3).generate(300)
        waved = TrafficWorld(wave_cfg, seed=3).generate(300)
        steady_counts = np.array([len(f.vehicles) for f in steady])
        waved_counts = np.array([len(f.vehicles) for f in waved])
        assert waved_counts.std() >= steady_counts.std() * 0.8

    def test_dim_fraction_produces_dim_vehicles(self):
        cfg = TrafficWorldConfig(profile="night", dim_fraction=1.0)
        frames = TrafficWorld(cfg, seed=0).generate(20)
        brightness = [v.brightness for f in frames for v in f.vehicles]
        assert max(brightness) <= cfg.dim_brightness[1] + 1e-9


class TestStreamGenerator:
    def test_stream_matches_generate(self):
        eager = TrafficWorld(night_config(), seed=5).generate(10)
        lazy = list(TrafficWorld(night_config(), seed=5).stream(10))
        assert len(lazy) == 10
        for a, b in zip(eager, lazy):
            assert a.index == b.index and a.timestamp == b.timestamp
            np.testing.assert_array_equal(a.image, b.image)
            assert [v.object_id for v in a.vehicles] == [v.object_id for v in b.vehicles]

    def test_stream_is_lazy(self):
        stream = TrafficWorld(night_config(), seed=0).stream(10**9)
        frame = next(stream)  # a feed this long could never materialize
        assert frame.index == 0

    def test_negative_frames_rejected(self):
        with pytest.raises(ValueError):
            list(TrafficWorld(night_config(), seed=0).stream(-1))
