"""Tests for repro.tracking."""

import pytest

from repro.geometry.box2d import Box2D, make_box
from repro.tracking.tracker import IoUTracker


def moving_box(t, speed=1.0):
    return make_box(10 + speed * t, 10, 8, 6)


class TestIoUTracker:
    def test_stable_identity_for_moving_object(self):
        tracker = IoUTracker()
        frames = [[moving_box(t)] for t in range(10)]
        tracked = tracker.run(frames)
        ids = {tb.track_id for frame in tracked for tb in frame}
        assert ids == {0}

    def test_new_object_gets_new_id(self):
        tracker = IoUTracker()
        frames = [[moving_box(0)], [moving_box(1), make_box(100, 50, 8, 6)]]
        tracked = tracker.run(frames)
        assert tracked[1][0].track_id == 0
        assert tracked[1][1].track_id == 1

    def test_gap_within_max_age_keeps_id(self):
        tracker = IoUTracker(max_age=2)
        frames = [[moving_box(0)], [], [moving_box(2)]]
        tracked = tracker.run(frames)
        assert tracked[2][0].track_id == 0

    def test_gap_beyond_max_age_new_id(self):
        tracker = IoUTracker(max_age=1)
        frames = [[moving_box(0)], [], [], [moving_box(3)]]
        tracked = tracker.run(frames)
        assert tracked[3][0].track_id != 0

    def test_run_resets(self):
        tracker = IoUTracker()
        tracker.run([[moving_box(0)]])
        tracked = tracker.run([[moving_box(0)]])
        assert tracked[0][0].track_id == 0  # ids restart after reset

    def test_two_parallel_objects_keep_distinct_ids(self):
        tracker = IoUTracker()
        frames = [
            [make_box(10 + t, 10, 8, 6), make_box(10 + t, 40, 8, 6)] for t in range(5)
        ]
        tracked = tracker.run(frames)
        top_ids = {frame[0].track_id for frame in tracked}
        bottom_ids = {frame[1].track_id for frame in tracked}
        assert top_ids == {0} and bottom_ids == {1}

    def test_completed_tracks_min_length(self):
        tracker = IoUTracker()
        frames = [[moving_box(t)] for t in range(4)]
        frames[2] = frames[2] + [make_box(100, 60, 6, 6)]  # one-frame object
        tracker.run(frames)
        assert len(tracker.completed_tracks(min_length=2)) == 1
        assert len(tracker.completed_tracks(min_length=1)) == 2

    def test_track_frames_ordering(self):
        tracker = IoUTracker()
        tracker.run([[moving_box(t)] for t in range(3)])
        track = tracker.completed_tracks()[0]
        assert track.frames() == [0, 1, 2]
        assert track.first_frame == 0 and track.last_frame == 2

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            IoUTracker(iou_threshold=0.0)
        with pytest.raises(ValueError):
            IoUTracker(max_age=-1)
