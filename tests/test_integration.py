"""End-to-end integration tests across modules (small but real)."""

import numpy as np
import pytest

from repro.core import (
    BALStrategy,
    RandomStrategy,
    harvest_weak_labels,
    run_active_learning,
)
from repro.domains.video import (
    VideoActiveLearningTask,
    VideoPipeline,
    bootstrap_detector,
    make_video_task_data,
    run_video_weak_supervision,
)


@pytest.fixture(scope="module")
def video_data():
    return make_video_task_data(0, n_pool=120, n_test=60)


@pytest.fixture(scope="module")
def pretrained(video_data):
    return bootstrap_detector(video_data, seed=0)


class TestVideoMonitoringEndToEnd:
    def test_pretrained_model_triggers_assertions(self, video_data, pretrained):
        pipeline = VideoPipeline()
        detections = pretrained.detect_frames([f.image for f in video_data.pool])
        report, items = pipeline.monitor(detections)
        assert report.severities.shape == (len(video_data.pool), 3)
        # A day-bootstrapped detector on night video makes systematic
        # errors: at least one assertion family must fire.
        assert report.total_fires() > 0

    def test_weak_labels_change_flagged_items(self, video_data, pretrained):
        pipeline = VideoPipeline()
        detections = pretrained.detect_frames([f.image for f in video_data.pool])
        report, items = pipeline.monitor(detections)
        weak = harvest_weak_labels(pipeline.omg, items)
        if report.fire_counts().get("flicker", 0) > 0:
            assert weak.n_changed > 0

    def test_online_monitoring_matches_batch_for_multibox(self, video_data, pretrained):
        # multibox is stateless per item: online fires == batch fires.
        pipeline = VideoPipeline()
        detections = pretrained.detect_frames([f.image for f in video_data.pool[:30]])
        batch_report, items = pipeline.monitor(detections)
        from repro.core.runtime import OMG
        from repro.core.database import AssertionDatabase
        from repro.domains.video.assertions import MultiboxAssertion

        db = AssertionDatabase()
        db.add(MultiboxAssertion(pipeline.config.multibox_iou))
        online = OMG(db, window_size=8)
        fires = 0
        for item in items:
            fires += len(online.observe(None, list(item.outputs)))
        assert fires == batch_report.fire_counts()["multibox"]


class TestActiveLearningEndToEnd:
    def test_two_round_loop_improves_over_pretrained(self, video_data):
        task = VideoActiveLearningTask(video_data, fine_tune_epochs=8, seed=0)
        result = run_active_learning(
            task, RandomStrategy(seed=0), n_rounds=2, budget_per_round=15
        )
        assert len(result.rounds) == 2
        assert result.rounds[-1].n_labeled == 30
        assert result.final_metric > result.initial_metric

    def test_bal_strategy_runs_on_real_task(self, video_data):
        task = VideoActiveLearningTask(video_data, fine_tune_epochs=8, seed=0)
        result = run_active_learning(
            task, BALStrategy(seed=0), n_rounds=2, budget_per_round=15
        )
        assert result.final_metric > 0


class TestWeakSupervisionEndToEnd:
    def test_video_weak_supervision_runs(self, video_data, pretrained):
        result = run_video_weak_supervision(
            video_data,
            detector=pretrained,
            n_flagged=40,
            n_random=20,
            fine_tune_epochs=10,
            seed=0,
        )
        assert result.domain == "video analytics"
        assert result.n_weak_labels > 0
        assert result.pretrained_metric > 0
