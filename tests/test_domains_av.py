"""Tests for the AV domain: agree assertion, pipeline, weak-label rule."""

import numpy as np
import pytest

from repro.core.types import StreamItem
from repro.domains.av.assertions import AgreeAssertion, sensor_agreement
from repro.domains.av.pipeline import AVPipeline
from repro.geometry.box2d import Box2D, make_box
from repro.geometry.box3d import Box3D
from repro.geometry.camera import PinholeCamera, project_box3d_to_2d


def camera_output(box):
    return {"sensor": "camera", "box": box, "label": box.label, "score": box.score}


def lidar_output(box3d, camera):
    return {
        "sensor": "lidar",
        "box3d": box3d,
        "box": project_box3d_to_2d(box3d, camera),
        "score": box3d.score,
    }


class TestSensorAgreement:
    def test_agreeing_boxes_zero_failures(self):
        a = [make_box(50, 50, 20, 16)]
        b = [make_box(52, 50, 20, 16)]
        assert sensor_agreement(a, b) == 0.0

    def test_counts_both_directions(self):
        lidar = [make_box(10, 10, 8, 8)]
        camera = [make_box(100, 50, 8, 8)]
        assert sensor_agreement(lidar, camera) == 2.0

    def test_empty_sides(self):
        assert sensor_agreement([], []) == 0.0
        assert sensor_agreement([make_box(10, 10, 8, 8)], []) == 1.0


class TestAgreeAssertion:
    camera = PinholeCamera()

    def test_matching_detections_abstain(self):
        box3d = Box3D(15, 0, 1, 4, 2, 2, label="car", score=0.9)
        projected = project_box3d_to_2d(box3d, self.camera)
        item = StreamItem(
            0, 0.0, outputs=(camera_output(projected), lidar_output(box3d, self.camera))
        )
        assertion = AgreeAssertion()
        assert assertion.evaluate_stream([item])[0] == 0.0

    def test_lidar_without_camera_fires(self):
        box3d = Box3D(15, 0, 1, 4, 2, 2, score=0.9)
        item = StreamItem(0, 0.0, outputs=(lidar_output(box3d, self.camera),))
        assertion = AgreeAssertion()
        assert assertion.evaluate_stream([item])[0] == 1.0
        assert assertion.disagreeing_outputs(item) == [0]

    def test_camera_without_lidar_fires(self):
        item = StreamItem(0, 0.0, outputs=(camera_output(make_box(80, 48, 30, 20, label="car")),))
        assertion = AgreeAssertion()
        assert assertion.evaluate_stream([item])[0] == 1.0

    def test_tiny_projection_excluded(self):
        far = Box3D(59, 0, 1, 4, 2, 1.5, score=0.9)  # projects very small
        item = StreamItem(0, 0.0, outputs=(lidar_output(far, self.camera),))
        assertion = AgreeAssertion(min_projection_area=400.0)
        assert assertion.evaluate_stream([item])[0] == 0.0


class TestAVPipeline:
    def test_monitor_and_stream(self):
        from repro.domains.av import bootstrap_av_models, make_av_task_data

        data = make_av_task_data(0, n_bootstrap_scenes=4, n_pool_scenes=2, n_test_scenes=1)
        camera_model, lidar_model = bootstrap_av_models(data, seed=0)
        pipeline = AVPipeline(PinholeCamera(width=160, height=96, focal=110.0, cz=1.4))
        samples = data.pool_samples[:10]
        cam_dets, lidar_dets = pipeline.run_models(samples, camera_model, lidar_model)
        report, items = pipeline.monitor(samples, cam_dets, lidar_dets)
        assert report.severities.shape == (10, 2)
        assert report.assertion_names == ["agree", "multibox"]
        assert len(items) == 10

    def test_parallel_length_check(self):
        pipeline = AVPipeline(PinholeCamera())
        with pytest.raises(ValueError):
            pipeline.to_stream([1, 2], [[]], [[]])

    def test_multibox_ignores_lidar_outputs(self):
        pipeline = AVPipeline(PinholeCamera())
        # three overlapping LIDAR projections must not trigger multibox
        boxes3d = [Box3D(15, 0.1 * k, 1, 4, 2, 2, score=0.9) for k in range(3)]
        items = pipeline.to_stream(
            [type("S", (), {"timestamp": 0.0})()], [[]], [boxes3d]
        )
        assert pipeline.multibox.evaluate_stream(items)[0] == 0.0


class TestImputationRule:
    def test_imputes_missing_camera_box(self):
        from repro.domains.av.task import impute_camera_boxes_rule

        camera = PinholeCamera()
        pipeline = AVPipeline(camera)
        box3d = Box3D(15, 0, 1, 4, 2, 2, score=0.9)
        item = StreamItem(0, 0.0, outputs=(lidar_output(box3d, camera),))
        corrections = impute_camera_boxes_rule(pipeline)([item])
        assert len(corrections) == 1
        assert corrections[0].kind == "add"
        assert corrections[0].proposed_output["sensor"] == "camera"
        assert corrections[0].proposed_output["label"] == "car"

    def test_truck_label_from_length(self):
        from repro.domains.av.task import impute_camera_boxes_rule

        camera = PinholeCamera()
        pipeline = AVPipeline(camera)
        box3d = Box3D(15, 0, 1.5, 8, 2.5, 3, score=0.9)  # long → truck
        item = StreamItem(0, 0.0, outputs=(lidar_output(box3d, camera),))
        corrections = impute_camera_boxes_rule(pipeline)([item])
        assert corrections[0].proposed_output["label"] == "truck"

    def test_no_imputation_when_agreeing(self):
        from repro.domains.av.task import impute_camera_boxes_rule

        camera = PinholeCamera()
        pipeline = AVPipeline(camera)
        box3d = Box3D(15, 0, 1, 4, 2, 2, label="car", score=0.9)
        projected = project_box3d_to_2d(box3d, camera)
        item = StreamItem(
            0, 0.0, outputs=(camera_output(projected), lidar_output(box3d, camera))
        )
        assert impute_camera_boxes_rule(pipeline)([item]) == []


class TestAVStreamingPath:
    def test_observe_batch_matches_monitor(self):
        from repro.domains.av import bootstrap_av_models, make_av_task_data

        data = make_av_task_data(0, n_bootstrap_scenes=4, n_pool_scenes=2, n_test_scenes=1)
        camera_model, lidar_model = bootstrap_av_models(data, seed=0)
        camera = PinholeCamera(width=160, height=96, focal=110.0, cz=1.4)
        samples = data.pool_samples[:10]
        offline_pipeline = AVPipeline(camera)
        cam_dets, lidar_dets = offline_pipeline.run_models(samples, camera_model, lidar_model)
        offline, _ = offline_pipeline.monitor(samples, cam_dets, lidar_dets)

        online = AVPipeline(camera)
        chunk = online.observe_batch(samples[:6], cam_dets[:6], lidar_dets[:6])
        assert chunk.n_items == 6
        # Tail of the stream arrives unit-by-unit through the Domain
        # protocol (the serving path), feeding the same runtime.
        from repro.domains.registry import get_domain

        domain = get_domain("av")
        state = domain.new_state()
        for sample, cam, lidar in zip(samples[6:], cam_dets[6:], lidar_dets[6:]):
            raw = {"sample": sample, "camera": cam, "lidar": lidar}
            for outputs, timestamp in domain.item_from_raw(raw, state):
                online.omg.observe(None, outputs, timestamp=timestamp)
        report = online.omg.online_report()
        assert report.assertion_names == offline.assertion_names
        np.testing.assert_array_equal(report.severities, offline.severities)

    def test_observe_batch_parallel_lists_checked(self):
        pipeline = AVPipeline(PinholeCamera())
        with pytest.raises(ValueError):
            pipeline.observe_batch([1, 2], [[]], [[]])
