"""Tests for rendering helpers and experiment result containers."""

import numpy as np
import pytest

from repro.experiments.fig4 import Fig4Result
from repro.geometry.box2d import Box2D
from repro.worlds import rendering


class TestRendering:
    def test_blank_image(self):
        img = rendering.blank_image(10, 20, 0.3)
        assert img.shape == (10, 20)
        assert np.allclose(img, 0.3)

    def test_smooth_noise_zero_mean_and_amplitude(self, rng):
        noise = rendering.smooth_noise(rng, 64, 64, sigma=0.05, scale=4.0)
        assert abs(noise.mean()) < 0.02
        assert noise.std() == pytest.approx(0.05, rel=0.1)

    def test_smooth_noise_is_smooth(self, rng):
        rough = rng.normal(0, 0.05, size=(64, 64))
        smooth = rendering.smooth_noise(rng, 64, 64, sigma=0.05, scale=4.0)
        # neighbor correlation is higher for the smoothed field
        def neighbor_corr(a):
            return np.corrcoef(a[:, :-1].ravel(), a[:, 1:].ravel())[0, 1]

        assert neighbor_corr(smooth) > neighbor_corr(rough) + 0.3

    def test_fill_box_clips_to_image(self):
        img = rendering.blank_image(10, 10)
        rendering.fill_box(img, Box2D(-5, -5, 5, 5), 1.0)
        assert img[0, 0] == 1.0 and img[9, 9] == 0.0

    def test_fill_box_shaded_gradient(self):
        img = rendering.blank_image(20, 20)
        rendering.fill_box_shaded(img, Box2D(5, 5, 15, 15), 0.5)
        assert img[14, 10] > img[5, 10]  # bottom brighter than top

    def test_gaussian_blob_peak_at_center(self):
        img = rendering.blank_image(20, 20)
        rendering.add_gaussian_blob(img, 10, 10, radius=2.0, amplitude=0.5)
        assert img[10, 10] == pytest.approx(0.5, rel=0.05)
        assert img[10, 10] == img.max()

    def test_blob_off_image_is_noop(self):
        img = rendering.blank_image(10, 10)
        rendering.add_gaussian_blob(img, 100, 100, radius=2.0, amplitude=0.5)
        assert img.max() == 0.0

    def test_finalize_clips_and_adds_noise(self, rng):
        img = rendering.blank_image(20, 20, 0.99)
        out = rendering.finalize(img, rng, noise_sigma=0.1)
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert out.std() > 0


class TestFig4Result:
    def result(self):
        return Fig4Result(
            domain="d",
            curves={"random": [50.0, 55.0, 60.0], "bal": [52.0, 58.0, 61.0]},
            initial_metric=40.0,
            budget_per_round=25,
        )

    def test_final(self):
        assert self.result().final("bal") == 61.0

    def test_labels_to_reach(self):
        result = self.result()
        assert result.labels_to_reach("bal", 57.0) == 50
        assert result.labels_to_reach("random", 57.0) == 75
        assert result.labels_to_reach("random", 99.0) is None

    def test_labels_savings_story(self):
        # the paper's "40% fewer labels" computation in miniature
        result = self.result()
        target = 57.0
        bal = result.labels_to_reach("bal", target)
        random = result.labels_to_reach("random", target)
        assert bal < random

    def test_format_table_contains_strategies(self):
        text = self.result().format_table()
        assert "random" in text and "bal" in text
        assert "40.0" in text  # pretrained shown in the title
