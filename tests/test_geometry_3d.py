"""Tests for repro.geometry.box3d and camera projection."""

import numpy as np
import pytest

from repro.geometry.box3d import Box3D, bev_iou_axis_aligned, box3d_corners
from repro.geometry.camera import PinholeCamera, project_box3d_to_2d


class TestBox3D:
    def test_volume_and_center(self):
        box = Box3D(10, 0, 1, length=4, width=2, height=2)
        assert box.volume == 16
        assert np.allclose(box.center, [10, 0, 1])

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Box3D(0, 0, 0, length=0, width=1, height=1)

    def test_with_score(self):
        assert Box3D(1, 0, 0, 1, 1, 1).with_score(0.2).score == 0.2

    def test_corners_axis_aligned(self):
        box = Box3D(0, 0, 0, length=2, width=4, height=6, yaw=0.0)
        corners = box3d_corners(box)
        assert corners.shape == (8, 3)
        assert np.allclose(corners.max(axis=0), [1, 2, 3])
        assert np.allclose(corners.min(axis=0), [-1, -2, -3])

    def test_corners_rotated_90(self):
        box = Box3D(0, 0, 0, length=2, width=4, height=2, yaw=np.pi / 2)
        corners = box3d_corners(box)
        # length now along y, width along x
        assert np.allclose(corners[:, 0].max(), 2)
        assert np.allclose(corners[:, 1].max(), 1)

    def test_bev_iou_identity_and_disjoint(self):
        a = Box3D(10, 0, 1, 4, 2, 2)
        assert np.isclose(bev_iou_axis_aligned(a, a), 1.0)
        b = Box3D(30, 10, 1, 4, 2, 2)
        assert bev_iou_axis_aligned(a, b) == 0.0


class TestPinholeCamera:
    def test_center_point_projects_to_principal_point(self):
        cam = PinholeCamera(width=160, height=96, focal=100.0, cz=0.0)
        uv, in_front = cam.project_points(np.array([[10.0, 0.0, 0.0]]))
        assert in_front[0]
        assert np.allclose(uv[0], [80, 48])

    def test_left_maps_to_smaller_u(self):
        cam = PinholeCamera()
        uv, _ = cam.project_points(np.array([[10.0, 1.0, 0.0], [10.0, -1.0, 0.0]]))
        assert uv[0, 0] < uv[1, 0]  # ego-left → image-left

    def test_up_maps_to_smaller_v(self):
        cam = PinholeCamera(cz=0.0)
        uv, _ = cam.project_points(np.array([[10.0, 0.0, 1.0], [10.0, 0.0, -1.0]]))
        assert uv[0, 1] < uv[1, 1]

    def test_behind_camera_flagged(self):
        cam = PinholeCamera()
        _, in_front = cam.project_points(np.array([[-5.0, 0.0, 0.0]]))
        assert not in_front[0]

    def test_farther_is_smaller(self):
        cam = PinholeCamera()
        near = project_box3d_to_2d(Box3D(10, 0, 1, 4, 2, 2), cam)
        far = project_box3d_to_2d(Box3D(40, 0, 1, 4, 2, 2), cam)
        assert near.area > far.area

    def test_behind_returns_none(self):
        cam = PinholeCamera()
        assert project_box3d_to_2d(Box3D(-10, 0, 1, 4, 2, 2), cam) is None

    def test_projection_carries_label_score(self):
        cam = PinholeCamera()
        box = project_box3d_to_2d(Box3D(15, 0, 1, 4, 2, 2, label="car", score=0.7), cam)
        assert box.label == "car" and box.score == 0.7

    def test_projection_clipped_to_image(self):
        cam = PinholeCamera(width=160, height=96)
        box = project_box3d_to_2d(Box3D(5, 0, 1, 4.5, 4.5, 2.5), cam)
        assert box.x1 >= 0 and box.y1 >= 0
        assert box.x2 <= 160 and box.y2 <= 96
