"""The declarative assertion-spec layer (``repro/core/spec.py``).

Covers the predicate registry, every spec dataclass's codec round trip
(the suite file format's substrate), the compiler's lowering onto the
assertion machinery, suite evolution helpers, lint, file I/O, and the
database/engine primitives suite diffs lower onto (disable → enable with
fire-count preservation).
"""

import json

import numpy as np
import pytest

from repro.core.database import AssertionDatabase
from repro.core.runtime import OMG
from repro.core.spec import (
    AssertionSuite,
    CompositeSpec,
    ConsistencySpecDecl,
    PerItemSpec,
    RollingWindowSpec,
    SuiteEntry,
    TemporalDecl,
    compile_spec,
    compile_suite,
    get_predicate,
    is_factory_predicate,
    lint_suite,
    load_suite,
    register_predicate,
    save_suite,
    spec_assertion_names,
    suite_from_payload,
    suite_payload,
)
from repro.utils.codec import from_jsonable, to_jsonable


# Test vocabulary, registered once at import (re-registration of the
# same callables is a no-op, so repeated collection stays safe).
@register_predicate("test.count_over")
def count_over(inp, outputs, threshold=2):
    """Severity = number of outputs beyond ``threshold``."""
    return float(max(0, len(outputs) - threshold))


@register_predicate("test.always_one")
def always_one(inp, outputs):
    return 1.0


@register_predicate("test.window_spread")
def window_spread(inputs, outputs_lists):
    """Rolling predicate: output-count spread over the window."""
    counts = [len(outs) for outs in outputs_lists]
    return float(max(counts) - min(counts))


@register_predicate("test.ident")
def ident(output):
    return output.get("id")


def roundtrip(obj):
    return from_jsonable(json.loads(json.dumps(to_jsonable(obj))))


def suite_of(*entries, name="test-suite", version=1, domain=""):
    return AssertionSuite(name=name, version=version, domain=domain, entries=tuple(entries))


class TestPredicateRegistry:
    def test_lookup_and_kind(self):
        assert get_predicate("test.count_over") is count_over
        assert not is_factory_predicate("test.count_over")
        from repro.domains.video import assertions as video_assertions

        assert is_factory_predicate("video.multibox")
        assert get_predicate("video.multibox") is video_assertions.multibox_assertion_factory

    def test_unknown_predicate_is_keyerror_with_hint(self):
        with pytest.raises(KeyError, match="register_predicate"):
            get_predicate("test.nope")

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            register_predicate("test.count_over", lambda i, o: 0.0)

    def test_reregistering_same_callable_is_noop(self):
        assert register_predicate("test.count_over", count_over) is count_over


class TestSpecValidation:
    def test_per_item_requires_names(self):
        with pytest.raises(ValueError):
            PerItemSpec(name="", predicate="test.always_one")
        with pytest.raises(ValueError):
            PerItemSpec(name="x", predicate="")

    def test_rolling_window_requires_window_ge_2(self):
        with pytest.raises(ValueError, match="window"):
            RollingWindowSpec(name="w", predicate="test.window_spread", window=1)

    def test_temporal_decl_mode_checked(self):
        with pytest.raises(ValueError, match="mode"):
            TemporalDecl(mode="sideways")

    def test_consistency_decl_zero_assertions_rejected(self):
        # The satellite regression: no attribute keys and no temporal
        # threshold would silently generate nothing.
        with pytest.raises(ValueError, match="zero"):
            ConsistencySpecDecl(name="empty", id_fn="test.ident")

    def test_consistency_decl_attr_keys_need_attrs_fn(self):
        with pytest.raises(ValueError, match="attrs_fn"):
            ConsistencySpecDecl(name="x", id_fn="test.ident", attr_keys=("a",))

    def test_consistency_decl_temporal_needs_threshold(self):
        with pytest.raises(ValueError, match="temporal_threshold"):
            ConsistencySpecDecl(
                name="x", id_fn="test.ident", temporal=(TemporalDecl(),)
            )

    def test_composite_validation(self):
        child = PerItemSpec(name="c", predicate="test.always_one")
        with pytest.raises(ValueError, match="op"):
            CompositeSpec(name="x", op="xor", children=(child,))
        with pytest.raises(ValueError, match="children"):
            CompositeSpec(name="x", op="and", children=())
        with pytest.raises(ValueError, match="one weight per child"):
            CompositeSpec(name="x", op="weighted", children=(child,), weights=(1.0, 2.0))
        with pytest.raises(ValueError, match="ConsistencySpecDecl"):
            CompositeSpec(
                name="x",
                op="and",
                children=(
                    ConsistencySpecDecl(
                        name="c", id_fn="test.ident", temporal_threshold=1.0
                    ),
                ),
            )

    def test_entry_weight_checked(self):
        spec = PerItemSpec(name="p", predicate="test.always_one")
        with pytest.raises(ValueError, match="weight"):
            SuiteEntry(spec=spec, weight=0.0)
        with pytest.raises(ValueError, match="re-weighted"):
            SuiteEntry(
                spec=ConsistencySpecDecl(
                    name="c", id_fn="test.ident", temporal_threshold=1.0
                ),
                weight=2.0,
            )

    def test_suite_rejects_duplicate_entry_names(self):
        spec = PerItemSpec(name="p", predicate="test.always_one")
        with pytest.raises(ValueError, match="two entries"):
            suite_of(SuiteEntry(spec=spec), SuiteEntry(spec=spec))


class TestCodecRoundTrips:
    """Satellite: every spec dataclass survives real JSON bit-exactly."""

    def test_per_item_spec(self):
        spec = PerItemSpec(
            name="crowded",
            predicate="test.count_over",
            params={"threshold": 3},
            description="too many outputs",
            taxonomy_class="domain knowledge",
        )
        assert roundtrip(spec) == spec

    def test_rolling_window_spec(self):
        spec = RollingWindowSpec(
            name="spread",
            predicate="test.window_spread",
            window=5,
            taxonomy_class="perturbation",
        )
        assert roundtrip(spec) == spec

    def test_consistency_decl_with_temporal_names(self):
        spec = ConsistencySpecDecl(
            name="track",
            id_fn="test.ident",
            attrs_fn="test.ident",
            attr_keys=("cls", "color"),
            temporal_threshold=0.4,
            temporal=(
                TemporalDecl(mode="gap", name="flicker"),
                TemporalDecl(mode="run", name="appear"),
            ),
            weak_label_fn="test.ident",
        )
        assert roundtrip(spec) == spec

    def test_composite_spec_nested(self):
        inner = CompositeSpec(
            name="either",
            op="or",
            children=(
                PerItemSpec(name="a", predicate="test.always_one"),
                PerItemSpec(name="b", predicate="test.count_over"),
            ),
        )
        spec = CompositeSpec(
            name="mixed",
            op="weighted",
            children=(inner, PerItemSpec(name="c", predicate="test.always_one")),
            weights=(0.5, 2.0),
            taxonomy_class="domain knowledge",
        )
        assert roundtrip(spec) == spec

    def test_suite_with_tags_disabled_entries_and_nesting(self):
        suite = suite_of(
            SuiteEntry(
                spec=PerItemSpec(name="a", predicate="test.always_one"),
                tags=("alpha", "beta"),
                author="dev@example",
                weight=1.5,
            ),
            SuiteEntry(
                spec=ConsistencySpecDecl(
                    name="c", id_fn="test.ident", temporal_threshold=2.0
                ),
                enabled=False,
            ),
            SuiteEntry(
                spec=CompositeSpec(
                    name="combo",
                    op="and",
                    children=(
                        PerItemSpec(name="x", predicate="test.always_one"),
                        PerItemSpec(name="y", predicate="test.count_over"),
                    ),
                ),
            ),
            name="full",
            version=7,
            domain="video",
        )
        assert roundtrip(suite) == suite

    def test_builtin_domain_suites_round_trip(self):
        from repro.domains.registry import domain_names, get_domain

        for name in domain_names():
            suite = get_domain(name).assertion_suite()
            assert roundtrip(suite) == suite


class TestCompiler:
    def stream(self, *counts):
        from repro.core.types import make_stream

        return make_stream([[{"id": i} for i in range(c)] for c in counts])

    def test_per_item_spec_binds_params(self):
        (assertion,) = compile_spec(
            PerItemSpec(
                name="crowded", predicate="test.count_over", params={"threshold": 1}
            )
        )
        severities = assertion.evaluate_stream(self.stream(1, 3, 0))
        np.testing.assert_array_equal(severities, [0.0, 2.0, 0.0])
        assert assertion.name == "crowded"
        # per-item streaming hook present
        assert callable(assertion.evaluate_item)

    def test_factory_predicate_yields_renamed_assertion(self):
        from repro.domains.video.assertions import MultiboxAssertion  # registers

        (assertion,) = compile_spec(
            PerItemSpec(
                name="overlap3",
                predicate="video.multibox",
                params={"iou_threshold": 0.2},
                taxonomy_class="domain knowledge",
            )
        )
        assert isinstance(assertion, MultiboxAssertion)
        assert assertion.name == "overlap3"
        assert assertion.iou_threshold == 0.2

    def test_rolling_window_spec(self):
        (assertion,) = compile_spec(
            RollingWindowSpec(name="spread", predicate="test.window_spread", window=3)
        )
        severities = assertion.evaluate_stream(self.stream(1, 1, 4, 4))
        np.testing.assert_array_equal(severities, [0.0, 0.0, 3.0, 3.0])

    def test_weighted_entry_scales_severity(self):
        entry = SuiteEntry(
            spec=PerItemSpec(
                name="crowded", predicate="test.count_over", params={"threshold": 1}
            ),
            weight=2.5,
        )
        database = compile_suite(suite_of(entry))
        severities = database.get("crowded").evaluate_stream(self.stream(3))
        np.testing.assert_array_equal(severities, [5.0])

    def test_composite_and_or_weighted(self):
        items = self.stream(0, 2, 5)
        a = PerItemSpec(name="a", predicate="test.count_over", params={"threshold": 1})
        b = PerItemSpec(name="b", predicate="test.count_over", params={"threshold": 4})
        # a → [0,1,4]; b → [0,0,1]
        (both,) = compile_spec(CompositeSpec(name="both", op="and", children=(a, b)))
        np.testing.assert_array_equal(both.evaluate_stream(items), [0.0, 0.0, 1.0])
        (either,) = compile_spec(CompositeSpec(name="either", op="or", children=(a, b)))
        np.testing.assert_array_equal(either.evaluate_stream(items), [0.0, 1.0, 4.0])
        (mix,) = compile_spec(
            CompositeSpec(name="mix", op="weighted", children=(a, b), weights=(1.0, 10.0))
        )
        np.testing.assert_array_equal(mix.evaluate_stream(items), [0.0, 1.0, 14.0])

    def test_composite_streams_per_item_online(self):
        a = PerItemSpec(name="a", predicate="test.count_over", params={"threshold": 1})
        b = PerItemSpec(name="b", predicate="test.always_one")
        suite = suite_of(SuiteEntry(spec=CompositeSpec(name="c", op="and", children=(a, b))))
        omg = OMG(compile_suite(suite))
        for outputs in ([{"id": 0}], [{"id": 0}, {"id": 1}, {"id": 2}]):
            omg.observe(None, outputs)
        online = omg.online_report()
        offline = OMG(compile_suite(suite)).monitor_outputs(
            [[{"id": 0}], [{"id": 0}, {"id": 1}, {"id": 2}]]
        )
        np.testing.assert_array_equal(online.severities, offline.severities)
        np.testing.assert_array_equal(online.severities[:, 0], [0.0, 1.0])

    def test_composite_with_rolling_child_streams_via_replay(self):
        # Regression: a rolling-window child must disable the composite's
        # per-item fast path (FunctionAssertion always *has* evaluate_item,
        # but guards it for window > 1).
        spec = CompositeSpec(
            name="mixed-window",
            op="or",
            children=(
                PerItemSpec(name="a", predicate="test.always_one"),
                RollingWindowSpec(
                    name="r", predicate="test.window_spread", window=3
                ),
            ),
        )
        (assertion,) = compile_spec(spec)
        assert not callable(getattr(assertion, "evaluate_item", None))
        suite = suite_of(SuiteEntry(spec=spec))
        streams = [[{"id": 0}], [{"id": 0}, {"id": 1}], [{"id": 0}]]
        omg = OMG(compile_suite(suite))
        for outputs in streams:
            omg.observe(None, outputs)  # must not raise
        offline = OMG(compile_suite(suite)).monitor_outputs(streams)
        np.testing.assert_array_equal(
            omg.online_report().severities, offline.severities
        )

    def test_consistency_decl_generates_named_assertions(self):
        decl = ConsistencySpecDecl(
            name="track",
            id_fn="test.ident",
            temporal_threshold=2.0,
            temporal=(TemporalDecl("gap", "flicker"), TemporalDecl("run", "appear")),
        )
        assert spec_assertion_names(decl) == ("flicker", "appear")
        assertions = compile_spec(decl)
        assert [a.name for a in assertions] == ["flicker", "appear"]
        # one shared ConsistencySpec instance across the generated family
        assert assertions[0].spec is assertions[1].spec

    def test_compile_suite_registers_disabled_entries(self):
        suite = suite_of(
            SuiteEntry(spec=PerItemSpec(name="on", predicate="test.always_one")),
            SuiteEntry(
                spec=PerItemSpec(name="off", predicate="test.always_one"),
                enabled=False,
            ),
        )
        database = compile_suite(suite)
        assert database.names() == ["on"]
        assert database.all_names() == ["on", "off"]
        assert database.suite == suite

    def test_duplicate_expanded_names_fail_compile(self):
        suite = suite_of(
            SuiteEntry(spec=PerItemSpec(name="x", predicate="test.always_one")),
            SuiteEntry(
                spec=ConsistencySpecDecl(
                    name="c",
                    id_fn="test.ident",
                    temporal_threshold=1.0,
                    temporal=(TemporalDecl("both", "x"),),
                )
            ),
        )
        with pytest.raises(ValueError, match="already registered"):
            compile_suite(suite)


class TestSuiteEvolution:
    def base(self):
        return suite_of(
            SuiteEntry(spec=PerItemSpec(name="a", predicate="test.always_one"), tags=("t1",)),
            SuiteEntry(spec=PerItemSpec(name="b", predicate="test.always_one"), tags=("t2",)),
        )

    def test_with_entry_without_and_versions(self):
        suite = self.base()
        grown = suite.with_entry(
            SuiteEntry(spec=PerItemSpec(name="c", predicate="test.always_one"))
        )
        assert grown.entry_names() == ["a", "b", "c"]
        assert grown.version == suite.version + 1
        shrunk = grown.without("a")
        assert shrunk.entry_names() == ["b", "c"]
        with pytest.raises(KeyError):
            grown.without("nope")
        with pytest.raises(ValueError, match="replace=True"):
            suite.with_entry(SuiteEntry(spec=PerItemSpec(name="a", predicate="test.always_one")))

    def test_enable_weight_and_tags(self):
        suite = self.base().with_enabled("a", False).with_weight("b", 3.0)
        assert suite.assertion_names() == ["b"]
        assert suite.assertion_names(include_disabled=True) == ["a", "b"]
        assert suite.get("b").weight == 3.0
        assert [e.name for e in suite.tagged("t1")] == ["a"]

    def test_diff(self):
        old = self.base()
        new = old.without("a").with_entry(
            SuiteEntry(spec=PerItemSpec(name="c", predicate="test.always_one"))
        ).with_weight("b", 2.0)
        diff = old.diff(new)
        assert diff.added == ("c",)
        assert diff.removed == ("a",)
        assert diff.changed == ("b",)
        assert bool(diff)
        assert not old.diff(old)


class TestLint:
    def test_builtin_suites_are_clean(self):
        from repro.domains.registry import domain_names, get_domain

        for name in domain_names():
            assert lint_suite(get_domain(name).assertion_suite()) == []

    def test_unresolved_predicate_reported(self):
        suite = suite_of(SuiteEntry(spec=PerItemSpec(name="x", predicate="test.missing")))
        problems = lint_suite(suite)
        assert any("test.missing" in p for p in problems)

    def test_custom_taxonomy_reported(self):
        suite = suite_of(SuiteEntry(spec=PerItemSpec(name="x", predicate="test.always_one")))
        problems = lint_suite(suite)
        assert any("taxonomy" in p for p in problems)

    def test_duplicate_names_reported_before_compile(self):
        suite = suite_of(
            SuiteEntry(spec=PerItemSpec(name="x", predicate="test.always_one")),
            SuiteEntry(
                spec=ConsistencySpecDecl(
                    name="c",
                    id_fn="test.ident",
                    temporal_threshold=1.0,
                    temporal=(TemporalDecl("both", "x"),),
                )
            ),
        )
        assert any("generated by both" in p for p in lint_suite(suite))


class TestSuiteFiles:
    def test_save_load_round_trip(self, tmp_path):
        suite = suite_of(
            SuiteEntry(
                spec=PerItemSpec(
                    name="crowded",
                    predicate="test.count_over",
                    params={"threshold": 2},
                    taxonomy_class="domain knowledge",
                )
            )
        )
        path = str(tmp_path / "suite.json")
        save_suite(suite, path)
        assert load_suite(path) == suite

    def test_payload_validation(self, tmp_path):
        with pytest.raises(ValueError, match="format"):
            suite_from_payload({"format": 99, "suite": {}})
        with pytest.raises(ValueError, match="suite"):
            suite_from_payload({"format": 1})
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_suite(str(path))

    def test_payload_is_json_loadable(self):
        suite = suite_of(SuiteEntry(spec=PerItemSpec(name="x", predicate="test.always_one")))
        payload = json.loads(json.dumps(suite_payload(suite)))
        assert suite_from_payload(payload) == suite


class TestDatabasePrimitives:
    """Satellite: the primitives suite diffs lower onto."""

    def build(self):
        database = AssertionDatabase()
        from repro.core.assertion import FunctionAssertion

        database.add(
            FunctionAssertion(lambda i, o: float(len(o)), "n_out"),
            tags=("volume", "core"),
        )
        database.add(
            FunctionAssertion(lambda i, o: 1.0, "heartbeat"), tags=("core",)
        )
        database.add(FunctionAssertion(lambda i, o: 0.0, "silent"))
        return database

    def test_disable_and_enabled_by_tags(self):
        database = self.build()
        assert database.enabled_by_tags("core") == ["n_out", "heartbeat"]
        assert database.enabled_by_tags("volume") == ["n_out"]
        database.disable("n_out")
        assert database.names() == ["heartbeat", "silent"]
        assert database.enabled_by_tags("core") == ["heartbeat"]
        database.enable("n_out")
        # registration slot (column order) is preserved across the cycle
        assert database.names() == ["n_out", "heartbeat", "silent"]

    def test_remove(self):
        database = self.build()
        database.remove("heartbeat")
        assert database.all_names() == ["n_out", "silent"]
        with pytest.raises(KeyError):
            database.remove("heartbeat")

    def test_disable_enable_preserves_fire_counts(self):
        database = self.build()
        omg = OMG(database)
        omg.observe(None, [1, 2])
        before = omg.online_report().fire_counts()
        assert before["n_out"] == 1
        database.disable("n_out")
        omg.observe(None, [1, 2, 3])  # not evaluated by n_out
        assert "n_out" not in omg.online_report().fire_counts()
        database.enable("n_out")
        omg.observe(None, [1])
        after = omg.online_report().fire_counts()
        # the pre-disable fire survives, plus the post-enable one;
        # the item observed while disabled was never evaluated.
        assert after["n_out"] == 2

    def test_disable_enable_preserves_fires_across_snapshot(self):
        suite = suite_of(
            SuiteEntry(
                spec=PerItemSpec(
                    name="crowded",
                    predicate="test.count_over",
                    params={"threshold": 1},
                    taxonomy_class="domain knowledge",
                )
            )
        )
        omg = OMG(compile_suite(suite))
        omg.observe(None, [{"id": 0}, {"id": 1}])  # fires
        omg.database.disable("crowded")
        payload = json.loads(json.dumps(omg.snapshot()))

        resumed = OMG(compile_suite(suite.with_enabled("crowded", False)))
        resumed.restore(payload)
        resumed.database.enable("crowded")
        resumed.observe(None, [{"id": 0}, {"id": 1}, {"id": 2}])
        counts = resumed.online_report().fire_counts()
        assert counts["crowded"] == 2  # pre-disable fire + fresh fire

    def test_remove_assertion_drops_streaming_state(self):
        database = self.build()
        omg = OMG(database)
        omg.observe(None, [1, 2])
        omg.remove_assertion("n_out")
        assert "n_out" not in omg.database
        report = omg.online_report()
        assert "n_out" not in report.assertion_names
        payload = omg.snapshot()
        assert "n_out" not in payload["streaming"]["log"]
        assert "n_out" not in payload["streaming"]["evaluators"]
