"""Determinism tests for repro.core.seeding (satellite: seed consolidation)."""

import numpy as np
import pytest

from repro.core.seeding import SEED_BOUND, derive_rng, derive_seed, spawn_seeds
from repro.utils.rng import as_generator


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(123, 8) == spawn_seeds(123, 8)

    def test_matches_legacy_integers_idiom(self):
        """spawn_seeds replaces rng.integers(0, 2**31-1, size=n) exactly."""
        legacy = as_generator(7).integers(0, 2**31 - 1, size=5)
        assert spawn_seeds(7, 5) == [int(s) for s in legacy]

    def test_generator_input_advances_shared_stream(self):
        """Passing a live generator preserves the caller's draw order."""
        rng_a = as_generator(0)
        first = spawn_seeds(rng_a, 3)
        second = spawn_seeds(rng_a, 3)
        assert first != second  # the stream advanced
        rng_b = as_generator(0)
        assert spawn_seeds(rng_b, 3) == first  # replay from the same state

    def test_types_and_range(self):
        seeds = spawn_seeds(0, 100)
        assert all(isinstance(s, int) for s in seeds)
        assert all(0 <= s < SEED_BOUND for s in seeds)

    def test_zero_and_negative_n(self):
        assert spawn_seeds(0, 0) == []
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestDeriveSeed:
    def test_pure_function_of_path(self):
        assert derive_seed(0, "fig4", "bal", 1) == derive_seed(0, "fig4", "bal", 1)

    def test_distinct_paths_distinct_seeds(self):
        seeds = {
            derive_seed(0, exp, strat, trial)
            for exp in ("fig4_video", "fig4_av", "fig5")
            for strat in ("random", "uncertainty", "uniform_ma", "bal")
            for trial in range(8)
        }
        assert len(seeds) == 3 * 4 * 8  # no collisions across the whole grid

    def test_root_seed_matters(self):
        assert derive_seed(0, "x") != derive_seed(1, "x")

    def test_range(self):
        for trial in range(50):
            assert 0 <= derive_seed(3, "t", trial) < SEED_BOUND

    def test_no_generator_state_involved(self):
        """Deriving in any order yields the same child streams."""
        forward = [derive_seed(0, "unit", i) for i in range(4)]
        backward = [derive_seed(0, "unit", i) for i in reversed(range(4))]
        assert forward == list(reversed(backward))


class TestDeriveRng:
    def test_streams_reproducible(self):
        a = derive_rng(0, "strategy", 2).integers(0, 1000, size=5)
        b = derive_rng(0, "strategy", 2).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_streams_independent(self):
        a = derive_rng(0, "strategy", 0).integers(0, 2**31 - 1, size=4)
        b = derive_rng(0, "strategy", 1).integers(0, 2**31 - 1, size=4)
        assert not np.array_equal(a, b)
