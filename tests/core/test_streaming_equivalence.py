"""Differential harness: online streaming == offline monitoring, exactly.

The refactor-safety invariant of the incremental streaming engine
(:mod:`repro.core.streaming`): for any stream, feeding the items through
``OMG.observe`` (or ``observe_batch``, serial or thread-pooled) and then
reading :meth:`OMG.online_report` must reproduce the offline
:meth:`OMG.monitor` severity matrix *bit-for-bit* — for all four
assertion families the paper's runtime supports:

1. per-item function assertions (``FunctionAssertion(window=1)``),
2. windowed function assertions (``FunctionAssertion(window>1)``),
3. attribute-consistency assertions (majority vote per identifier),
4. temporal-consistency assertions (gap / run / both modes).

Streams are randomized but seeded (property-style): identifiers flicker
in and out, attribute values flip, timestamps jitter — the regimes where
incremental majority tracking and retroactive gap/run attribution are
easiest to get wrong.
"""

import numpy as np
import pytest

from repro.core.assertion import FunctionAssertion
from repro.core.consistency import ConsistencySpec, generate_assertions
from repro.core.database import AssertionDatabase
from repro.core.runtime import OMG
from repro.core.types import make_stream

#: Seeds for the property-style sweep (acceptance floor is 20 streams).
SEEDS = list(range(24))

COLORS = ("red", "green", "blue")


def build_database() -> AssertionDatabase:
    """All four assertion families over dict outputs ``{id, color}``."""
    database = AssertionDatabase()
    # 1. Per-item function assertions.
    database.add(FunctionAssertion(lambda inp, outs: float(len(outs) > 2), "crowded"))
    database.add(
        FunctionAssertion(
            lambda inp, outs: float(sum(1 for o in outs if o["color"] == "red")),
            "red_count",
        )
    )
    # 2. Windowed function assertions (two distinct lookbacks).
    database.add(
        FunctionAssertion(
            lambda ins, outs: float(sum(len(o) for o in outs) > 6),
            "busy_w3",
            window=3,
        )
    )
    database.add(
        FunctionAssertion(
            lambda ins, outs: float(len(outs) == 5 and len(outs[0]) == len(outs[-1])),
            "echo_w5",
            window=5,
        )
    )
    # 3 + 4. Consistency assertions sharing one spec: one attribute key,
    # all three temporal modes as separately-named assertions.
    spec = ConsistencySpec(
        id_fn=lambda o: o.get("id"),
        attrs_fn=lambda o: {"color": o["color"]},
        temporal_threshold=2.5,
        name="track",
    )
    for assertion in generate_assertions(
        spec, attr_keys=["color"], temporal_modes=["gap", "run", "both"]
    ):
        database.add(assertion)
    return database


def random_stream(seed: int) -> list:
    """A seeded random stream exercising flicker, churn, and attr flips."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(20, 80))
    outputs, timestamps = [], []
    t = 0.0
    for _ in range(n):
        t += float(rng.uniform(0.4, 2.2))
        timestamps.append(t)
        outs = []
        for _ in range(int(rng.integers(0, 4))):
            identifier = int(rng.integers(0, 5)) if rng.random() > 0.15 else None
            outs.append({"id": identifier, "color": str(rng.choice(COLORS))})
        outputs.append(outs)
    return make_stream(outputs, timestamps=timestamps)


def offline_report(items):
    return OMG(build_database(), window_size=4096).monitor(items)


def feed_observe(items) -> OMG:
    omg = OMG(build_database(), window_size=4096)
    for item in items:
        omg.observe(None, list(item.outputs), timestamp=item.timestamp)
    return omg


def feed_observe_batch(items, seed: int, *, parallel: bool = False) -> OMG:
    """Feed in random-size chunks (1–8 items) via ``observe_batch``."""
    omg = OMG(build_database(), window_size=4096)
    rng = np.random.default_rng(seed + 10_000)
    pos = 0
    while pos < len(items):
        chunk = items[pos : pos + int(rng.integers(1, 9))]
        omg.observe_batch(
            None,
            [list(item.outputs) for item in chunk],
            timestamps=[item.timestamp for item in chunk],
            parallel=parallel,
        )
        pos += len(chunk)
    return omg


class TestOnlineOfflineEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_observe_matches_monitor(self, seed):
        items = random_stream(seed)
        offline = offline_report(items)
        online = feed_observe(items).online_report()
        assert online.assertion_names == offline.assertion_names
        np.testing.assert_array_equal(online.severities, offline.severities)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_observe_batch_matches_monitor(self, seed):
        items = random_stream(seed)
        offline = offline_report(items)
        online = feed_observe_batch(items, seed).online_report()
        np.testing.assert_array_equal(online.severities, offline.severities)

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_parallel_batch_matches_serial(self, seed):
        """Thread-pooled batches are bit-identical to the serial path."""
        items = random_stream(seed)
        serial = feed_observe_batch(items, seed)
        threaded = feed_observe_batch(items, seed, parallel=True)
        np.testing.assert_array_equal(
            threaded.online_report().severities, serial.online_report().severities
        )
        key = lambda r: (r.item_index, r.assertion_name, r.severity)
        assert sorted(map(key, threaded.online_records)) == sorted(
            map(key, serial.online_records)
        )

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_single_and_batch_records_identical(self, seed):
        """Fire records (incl. retroactive revisions) agree across paths."""
        items = random_stream(seed)
        key = lambda r: (r.item_index, r.assertion_name, r.severity)
        single = list(map(key, feed_observe(items).online_records))
        batched = list(map(key, feed_observe_batch(items, seed).online_records))
        assert single == batched

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_streaming_newest_records_match_legacy_for_function_assertions(self, seed):
        """Per-item/windowed fires agree step-by-step with the legacy engine.

        Consistency assertions are excluded: the legacy engine could only
        attribute severity to the newest item, so it silently dropped
        gap/run violations; the streaming engine reports them
        retroactively (and is checked against the offline monitor above).
        """
        items = random_stream(seed)
        legacy = OMG(build_database(), window_size=4096, engine="legacy")
        streaming = OMG(build_database(), window_size=4096)
        functional = {"crowded", "red_count", "busy_w3", "echo_w5"}
        for item in items:
            got_legacy = legacy.observe(None, list(item.outputs), timestamp=item.timestamp)
            got_streaming = streaming.observe(
                None, list(item.outputs), timestamp=item.timestamp
            )
            key = lambda r: (r.assertion_name, r.item_index, r.severity)
            assert sorted(
                key(r) for r in got_legacy if r.assertion_name in functional
            ) == sorted(key(r) for r in got_streaming if r.assertion_name in functional)


class TestRetroactiveAttribution:
    def test_flicker_gap_is_attributed_to_gap_items(self):
        """A gap violation lands on the missing items once the id returns."""
        omg = OMG(build_database(), window_size=4096)
        frames = [[{"id": 1, "color": "red"}], [], [{"id": 1, "color": "red"}]]
        records = []
        for pos, outs in enumerate(frames):
            records.extend(omg.observe(None, outs, timestamp=float(pos)))
        gap = [r for r in records if r.assertion_name == "track:temporal:gap"]
        assert [r.item_index for r in gap] == [1]
        np.testing.assert_array_equal(
            omg.online_report().column("track:temporal:gap"), [0.0, 1.0, 0.0]
        )

    def test_short_run_is_attributed_when_it_ends(self):
        """A short interior run is flagged on the run items at disappearance."""
        omg = OMG(build_database(), window_size=4096)
        frames = [[], [{"id": 2, "color": "red"}], []]
        records = []
        for pos, outs in enumerate(frames):
            records.extend(omg.observe(None, outs, timestamp=float(pos)))
        run = [r for r in records if r.assertion_name == "track:temporal:run"]
        assert [r.item_index for r in run] == [1]

    def test_majority_flip_revises_earlier_item(self):
        """When the majority changes, earlier severities are revised."""
        omg = OMG(build_database(), window_size=4096)
        # blue, blue, red, red, red → after item 4 the majority is red and
        # items 0/1 (blue) become the deviants.
        for pos, color in enumerate(["blue", "blue", "red", "red", "red"]):
            omg.observe(None, [{"id": 3, "color": color}], timestamp=float(pos))
        column = omg.online_report().column("track:attr:color")
        np.testing.assert_array_equal(column, [1.0, 1.0, 0.0, 0.0, 0.0])
        offline = offline_report(
            make_stream(
                [[{"id": 3, "color": c}] for c in ["blue", "blue", "red", "red", "red"]],
                timestamps=[0.0, 1.0, 2.0, 3.0, 4.0],
            )
        )
        np.testing.assert_array_equal(column, offline.column("track:attr:color"))


class TestEngineBehavior:
    def test_observe_batch_report_covers_chunk(self):
        omg = OMG(build_database(), window_size=4096)
        items = random_stream(3)
        half = len(items) // 2
        omg.observe_batch(
            None,
            [list(i.outputs) for i in items[:half]],
            timestamps=[i.timestamp for i in items[:half]],
        )
        report = omg.observe_batch(
            None,
            [list(i.outputs) for i in items[half:]],
            timestamps=[i.timestamp for i in items[half:]],
        )
        assert report.n_items == len(items) - half
        full = omg.online_report()
        np.testing.assert_array_equal(report.severities, full.severities[half:])

    def test_legacy_engine_rejects_batch_and_report(self):
        omg = OMG(build_database(), engine="legacy")
        with pytest.raises(RuntimeError):
            omg.observe_batch(None, [[]])
        with pytest.raises(RuntimeError):
            omg.online_report()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            OMG(engine="warp")

    def test_reset_clears_streaming_state(self):
        omg = OMG(build_database(), window_size=4096)
        for item in random_stream(5):
            omg.observe(None, list(item.outputs), timestamp=item.timestamp)
        omg.reset()
        assert omg.online_report().n_items == 0
        # Replaying the same stream after reset gives the same matrix.
        items = random_stream(6)
        for item in items:
            omg.observe(None, list(item.outputs), timestamp=item.timestamp)
        np.testing.assert_array_equal(
            omg.online_report().severities, offline_report(items).severities
        )

    def test_replaced_assertion_does_not_inherit_old_fires(self):
        """``replace=True`` re-registration restarts that name's log."""
        omg = OMG(window_size=4)
        omg.add_assertion(lambda inp, outs: float(len(outs) > 0), "check")
        for _ in range(10):
            omg.observe(None, [1])  # fires on every item
        omg.add_assertion(lambda inp, outs: 0.0, "check", replace=True)
        omg.observe(None, [1])
        report = omg.online_report()
        # Only the warm-up window could ever be re-attributed, and the
        # replacement assertion never fires: the column must be empty.
        np.testing.assert_array_equal(report.column("check"), np.zeros(11))

    def test_late_registered_assertion_joins_the_stream(self):
        """Assertions added mid-stream are warmed up on recent history."""
        omg = OMG(window_size=64)
        omg.add_assertion(lambda inp, outs: float(len(outs) > 2), "crowded")
        omg.observe(None, [1, 2, 3])
        omg.add_assertion(lambda inp, outs: float(len(outs) == 0), "empty")
        fresh = omg.observe(None, [])
        assert [r.assertion_name for r in fresh] == ["empty"]
        report = omg.online_report()
        assert report.fire_counts() == {"crowded": 1, "empty": 1}
