"""Tests for the registry-driven experiment runner (tentpole).

Covers registry completeness, the artifact cache, config overrides, and
the core determinism contract: for a fixed seed an experiment produces
bit-identical results run directly, through the registry, serially, or
with a process pool (``jobs > 1``).
"""

import dataclasses
import json

import pytest

import repro.experiments as experiments
from repro.experiments import (
    get_experiment,
    list_experiments,
    run_experiment,
    run_fig4_video,
    run_fig5,
    run_loc,
    run_table1,
    run_table5,
)
from repro.experiments.fig4 import Fig4VideoConfig
from repro.experiments.fig5 import Fig5Config
from repro.experiments.reporting import from_jsonable, to_jsonable
from repro.experiments.runner import config_fingerprint

#: Every paper artifact the registry must expose (ISSUE acceptance).
EXPECTED = {
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "fig3",
    "fig4_video",
    "fig4_av",
    "fig5",
    "loc",
}

#: Small-but-real fig4 configuration for equivalence runs.
TINY_FIG4 = dict(n_rounds=2, budget_per_round=10, n_pool=60, n_test=30, n_trials=2, fine_tune_epochs=1)
TINY_FIG5 = dict(n_rounds=2, budget_per_round=20, n_pool=120, n_test=40, n_trials=2, fine_tune_epochs=2)


class TestRegistry:
    def test_every_experiment_registered(self):
        names = {spec.name for spec in list_experiments()}
        assert EXPECTED <= names

    def test_specs_have_frozen_configs_and_artifacts(self):
        for spec in list_experiments():
            assert dataclasses.is_dataclass(spec.config_type)
            assert spec.config_type.__dataclass_params__.frozen, spec.name
            assert spec.artifact, spec.name
            assert spec.description, spec.name

    def test_unknown_name_raises_with_catalog(self):
        with pytest.raises(KeyError, match="table1"):
            get_experiment("nope")

    def test_run_functions_reachable_via_registry(self):
        """Direct run_* call == registry run for the cheap experiments."""
        assert get_experiment("table1").run() == run_table1()
        assert get_experiment("table5").run() == run_table5()
        assert get_experiment("loc").run() == run_loc()

    def test_duplicate_registration_rejected(self):
        spec = get_experiment("table1")
        from repro.experiments.runner import register_experiment

        with pytest.raises(ValueError, match="already registered"):
            register_experiment(
                "table1", config=spec.config_type, artifact="Table 1"
            )(lambda config: None)


#: Cheap seeded config for cache tests (table5/loc are uncacheable now).
TINY_TABLE6 = dict(n_video_frames=300)


class TestArtifactCache:
    def test_miss_then_hit(self, tmp_path):
        first = run_experiment("table6", cache_dir=tmp_path, **TINY_TABLE6)
        assert not first.cached
        assert first.path.is_file()
        second = run_experiment("table6", cache_dir=tmp_path, **TINY_TABLE6)
        assert second.cached
        assert second.result == first.result

    def test_force_recomputes(self, tmp_path):
        run_experiment("table6", cache_dir=tmp_path, **TINY_TABLE6)
        forced = run_experiment("table6", cache_dir=tmp_path, force=True, **TINY_TABLE6)
        assert not forced.cached

    def test_no_cache_leaves_no_artifact(self, tmp_path):
        run = run_experiment("table6", cache=False, cache_dir=tmp_path, **TINY_TABLE6)
        assert run.path is None
        assert list(tmp_path.iterdir()) == []

    def test_source_derived_experiments_never_cache(self, tmp_path):
        """table1/table2/table5/loc results derive from the source tree:
        a (name, config) fingerprint cannot see code changes, so their
        specs opt out of caching entirely."""
        for name in ("table1", "table2", "table5", "loc"):
            assert not get_experiment(name).cacheable, name
            run = run_experiment(name, cache_dir=tmp_path)
            assert not run.cached
            assert run.path is None
        assert list(tmp_path.iterdir()) == []

    def test_cached_payload_round_trips_bit_exactly(self, tmp_path):
        fresh = run_experiment(
            "table6", cache_dir=tmp_path, seed=3, n_video_frames=300
        )
        warm = run_experiment(
            "table6", cache_dir=tmp_path, seed=3, n_video_frames=300
        )
        assert warm.cached
        assert warm.result == fresh.result  # floats exact through JSON

    def test_fingerprint_is_config_sensitive(self):
        spec = get_experiment("table6")
        base = config_fingerprint("table6", spec.default_config())
        assert base == config_fingerprint("table6", spec.default_config())
        assert base != config_fingerprint("table6", spec.default_config(seed=1))

    def test_cache_key_ignores_jobs(self, tmp_path):
        """Parallelism is a placement choice, not part of the result identity."""
        run_experiment("fig5", cache_dir=tmp_path, jobs=1, **TINY_FIG5)
        warm = run_experiment("fig5", cache_dir=tmp_path, jobs=2, **TINY_FIG5)
        assert warm.cached

    def test_env_var_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        run = run_experiment("table6", **TINY_TABLE6)
        assert run.path.parent == tmp_path / "env-cache"


class TestOverrides:
    def test_field_overrides_build_config(self):
        run = run_experiment("table6", cache=False, seed=9, n_video_frames=300)
        assert run.config.seed == 9
        assert run.config.n_video_frames == 300

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            run_experiment("table6", cache=False, not_a_field=1)


class TestSerialParallelEquivalence:
    """Acceptance: fixed seed ⇒ bit-identical serially vs --jobs vs direct."""

    def test_fig4_video_direct_vs_registry_vs_jobs(self, tmp_path):
        direct = run_fig4_video(seed=5, **{k: v for k, v in TINY_FIG4.items()})
        config = Fig4VideoConfig(seed=5, **TINY_FIG4)
        serial = get_experiment("fig4_video").run(config)
        parallel = get_experiment("fig4_video").run(config, jobs=4)
        via_cache_layer = run_experiment(
            "fig4_video", config, cache_dir=tmp_path, jobs=2
        ).result
        assert direct == serial == parallel == via_cache_layer

    def test_fig5_serial_vs_jobs(self):
        config = Fig5Config(seed=2, n_train=60, **TINY_FIG5)
        serial = get_experiment("fig5").run(config)
        parallel = get_experiment("fig5").run(config, jobs=3)
        assert serial == parallel
        assert set(serial.curves) == {"random", "uncertainty", "bal"}

    def test_trial_units_are_independent_of_execution_order(self):
        """Any single unit recomputed in isolation matches the batch run."""
        spec = get_experiment("fig5")
        config = Fig5Config(seed=2, n_train=60, **TINY_FIG5)
        units = spec.make_units(config)
        batch = [spec.run_unit(config, unit) for unit in units]
        # Re-run the last unit alone — no shared generator state involved.
        assert spec.run_unit(config, units[-1]) == batch[-1]


class TestResultCodec:
    def test_round_trip_through_json_text(self):
        result = run_table1()
        payload = json.dumps(to_jsonable(result))
        assert from_jsonable(json.loads(payload)) == result

    def test_module_all_exports_runner_api(self):
        for name in ("run_experiment", "get_experiment", "list_experiments"):
            assert name in experiments.__all__


class TestCacheRobustness:
    def test_corrupt_artifact_recomputed_not_crashed(self, tmp_path):
        first = run_experiment("table6", cache_dir=tmp_path, **TINY_TABLE6)
        first.path.write_text("{ not json")
        recovered = run_experiment("table6", cache_dir=tmp_path, **TINY_TABLE6)
        assert not recovered.cached  # fell through to recompute
        assert recovered.result == first.result
        # ... and the artifact was rewritten, so the next run hits again.
        assert run_experiment("table6", cache_dir=tmp_path, **TINY_TABLE6).cached

    def test_unknown_payload_class_recomputed(self, tmp_path):
        first = run_experiment("table6", cache_dir=tmp_path, **TINY_TABLE6)
        payload = json.loads(first.path.read_text())
        payload["result"]["__dataclass__"] = "NoSuchResult"
        first.path.write_text(json.dumps(payload))
        assert not run_experiment("table6", cache_dir=tmp_path, **TINY_TABLE6).cached
