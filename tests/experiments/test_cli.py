"""Subprocess tests for the ``python -m repro`` CLI.

``test_list_shows_every_registered_experiment`` is the fast-tier smoke
test CI relies on: if an experiment module forgets to register, the
catalog shrinks and this fails.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.experiments import list_experiments

SRC = str(Path(repro.__file__).resolve().parent.parent)


def run_cli(*args, cwd=None, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"CLI failed ({proc.returncode}): {' '.join(args)}\n{proc.stderr}"
        )
    return proc


class TestList:
    def test_list_shows_every_registered_experiment(self):
        out = run_cli("list").stdout
        for spec in list_experiments():
            assert spec.name in out, f"{spec.name} missing from `python -m repro list`"
            assert spec.artifact in out

    def test_list_json(self):
        payload = json.loads(run_cli("list", "--json").stdout)
        assert {e["name"] for e in payload} >= {"table1", "fig4_video", "fig5", "loc"}


TINY_TABLE6 = ("--set", "n_video_frames=300")


class TestRunAndReport:
    def test_run_writes_artifact_then_hits_cache(self, tmp_path):
        first = run_cli("run", "table6", *TINY_TABLE6, "--cache-dir", str(tmp_path))
        assert "ran in" in first.stdout
        assert "Errors caught" in first.stdout  # rendered text table
        assert list(tmp_path.glob("table6-*.json")), "no JSON artifact written"

        second = run_cli("run", "table6", *TINY_TABLE6, "--cache-dir", str(tmp_path))
        assert "cache hit" in second.stdout

    def test_run_with_overrides_and_json(self, tmp_path):
        out = run_cli(
            "run", "table6",
            "--seed", "5",
            "--set", "n_video_frames=300",
            "--cache-dir", str(tmp_path),
            "--json",
        ).stdout
        payload = json.loads(out)
        assert payload["experiment"] == "table6"
        assert payload["config"]["fields"]["seed"] == 5
        assert payload["config"]["fields"]["n_video_frames"] == 300

    def test_report_renders_cached_without_recompute(self, tmp_path):
        run_cli("run", "table6", *TINY_TABLE6, "--cache-dir", str(tmp_path))
        out = run_cli("report", "table6", "--cache-dir", str(tmp_path)).stdout
        assert "cached at" in out
        assert "Errors caught" in out

    def test_multi_name_json_is_one_document(self, tmp_path):
        out = run_cli(
            "run", "table5", "table1", "--json", "--cache-dir", str(tmp_path)
        ).stdout
        payload = json.loads(out)  # an array, parseable as a single document
        assert [p["experiment"] for p in payload] == ["table5", "table1"]

    def test_bad_name_fails_before_any_experiment_runs(self, tmp_path):
        proc = run_cli(
            "run", "table5", "nope", "--cache-dir", str(tmp_path), check=False
        )
        assert proc.returncode != 0
        # Validation happens up front: table5 never produced output.
        assert "Sub-class" not in proc.stdout

    def test_report_empty_cache_errors(self, tmp_path):
        proc = run_cli("report", "--cache-dir", str(tmp_path), check=False)
        assert proc.returncode != 0
        assert "cache is empty" in proc.stderr

    def test_unknown_experiment_errors(self, tmp_path):
        proc = run_cli("run", "not-an-experiment", check=False)
        assert proc.returncode != 0
        assert "no experiment named" in proc.stderr

    def test_seed_override_rejected_for_knobless_experiment(self):
        proc = run_cli("run", "table5", "--seed", "1", "--no-cache", check=False)
        assert proc.returncode != 0
        assert "takes no seed" in proc.stderr

    def test_unknown_set_field_lists_fields(self):
        proc = run_cli("run", "table6", "--set", "bogus=1", check=False)
        assert proc.returncode != 0
        assert "n_video_frames" in proc.stderr  # catalog of valid fields


class TestAllModeOverrides:
    def test_overrides_apply_only_where_fields_exist(self):
        """`run --all --seed 7` must not abort on knobless experiments."""
        from argparse import Namespace

        from repro.__main__ import _config_overrides
        from repro.experiments import get_experiment

        args = Namespace(seed=7, trials=None, set=["n_video_frames=300"], all=True)
        assert _config_overrides(get_experiment("table5"), args, strict=False) == {}
        assert _config_overrides(get_experiment("table6"), args, strict=False) == {
            "seed": 7,
            "n_video_frames": 300,
        }
        # Explicitly named experiments keep the strict error.
        with pytest.raises(SystemExit):
            _config_overrides(get_experiment("table5"), args, strict=True)

    def test_report_json_multiple_names_is_one_document(self, tmp_path):
        run_cli("run", "table6", *TINY_TABLE6, "--cache-dir", str(tmp_path))
        run_cli("run", "fig3", "--set", "n_pool=150", "--cache-dir", str(tmp_path))
        out = run_cli("report", "--cache-dir", str(tmp_path), "--json").stdout
        payload = json.loads(out)
        assert {p["experiment"] for p in payload} == {"table6", "fig3"}
