"""Tests for repro.core.assertion and repro.core.database."""

import numpy as np
import pytest

from repro.core.assertion import FunctionAssertion, ModelAssertion, as_assertion
from repro.core.database import AssertionDatabase
from repro.core.types import make_stream


class TestFunctionAssertion:
    def test_per_item_signature(self):
        assertion = FunctionAssertion(lambda inp, outs: float(len(outs)), "count")
        sev = assertion.evaluate_stream(make_stream([[1], [1, 2], []]))
        assert sev.tolist() == [1.0, 2.0, 0.0]

    def test_windowed_signature(self):
        def delta(recent_inputs, recent_outputs):
            return float(len(recent_outputs[-1]) - len(recent_outputs[0]))

        assertion = FunctionAssertion(delta, "delta", window=2)
        sev = assertion.evaluate_stream(make_stream([[1], [1, 2], [1, 2, 3]]))
        assert sev.tolist() == [0.0, 1.0, 1.0]

    def test_name_inferred_from_function(self):
        def my_check(inp, outs):
            return 0.0

        assert FunctionAssertion(my_check).name == "my_check"

    def test_lambda_requires_name(self):
        with pytest.raises(ValueError):
            FunctionAssertion(lambda i, o: 0.0)

    def test_negative_severity_rejected(self):
        assertion = FunctionAssertion(lambda i, o: -1.0, "bad")
        with pytest.raises(ValueError, match="negative"):
            assertion.evaluate_stream(make_stream([[1]]))

    def test_boolean_severity_coerced(self):
        assertion = FunctionAssertion(lambda i, o: len(o) > 1, "boolean")
        sev = assertion.evaluate_stream(make_stream([[1], [1, 2]]))
        assert sev.tolist() == [0.0, 1.0]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            FunctionAssertion(lambda i, o: 0.0, "w", window=0)

    def test_default_corrections_empty(self):
        assertion = FunctionAssertion(lambda i, o: 1.0, "x")
        assert assertion.corrections(make_stream([[1]])) == []


class TestAsAssertion:
    def test_idempotent(self):
        assertion = FunctionAssertion(lambda i, o: 0.0, "a")
        assert as_assertion(assertion) is assertion

    def test_rename_existing_raises(self):
        assertion = FunctionAssertion(lambda i, o: 0.0, "a")
        with pytest.raises(ValueError):
            as_assertion(assertion, name="b")

    def test_non_callable_raises(self):
        with pytest.raises(TypeError):
            as_assertion(42)


class TestAssertionDatabase:
    def make(self, name):
        return FunctionAssertion(lambda i, o: 0.0, name)

    def test_registration_order_preserved(self):
        db = AssertionDatabase()
        for name in ("c", "a", "b"):
            db.add(self.make(name))
        assert db.names() == ["c", "a", "b"]

    def test_duplicate_rejected_unless_replace(self):
        db = AssertionDatabase()
        db.add(self.make("x"))
        # The error must name the duplicate and point at replace=True —
        # never silently overwrite.
        with pytest.raises(ValueError, match=r"'x'.*replace=True"):
            db.add(self.make("x"))
        assert db.get("x") is not None  # original registration untouched
        db.add(self.make("x"), replace=True)
        assert len(db) == 1

    def test_duplicate_rejected_through_omg_entry_points(self):
        from repro.core.runtime import OMG

        omg = OMG()
        omg.add_assertion(lambda i, o: 0.0, name="dup")
        with pytest.raises(ValueError, match="'dup'"):
            omg.add_assertion(lambda i, o: 1.0, name="dup")
        omg.add_consistency_assertion(
            id_fn=lambda o: o.get("id"),
            attrs_fn=lambda o: {"c": o.get("c")},
            attr_keys=["c"],
            name="spec",
        )
        with pytest.raises(ValueError, match="spec:attr:c"):
            omg.add_consistency_assertion(
                id_fn=lambda o: o.get("id"),
                attrs_fn=lambda o: {"c": o.get("c")},
                attr_keys=["c"],
                name="spec",
            )

    def test_disable_hides_from_iteration(self):
        db = AssertionDatabase()
        db.add(self.make("x"))
        db.add(self.make("y"))
        db.enable("x", False)
        assert db.names() == ["y"]
        assert [a.name for a in db] == ["y"]
        assert db.all_names() == ["x", "y"]

    def test_remove(self):
        db = AssertionDatabase()
        db.add(self.make("x"))
        db.remove("x")
        assert "x" not in db
        with pytest.raises(KeyError):
            db.get("x")

    def test_metadata_stored(self):
        db = AssertionDatabase()
        db.add(self.make("x"), domain="video", author="dev", tags=("t1",))
        entry = db.entry("x")
        assert entry.domain == "video" and entry.author == "dev" and entry.tags == ("t1",)
