"""Tests for the active-learning harness on a controlled toy task."""

import numpy as np
import pytest

from repro.core.active_learning import (
    ActiveLearningResult,
    ActiveLearningTask,
    RoundResult,
    compare_strategies,
    run_active_learning,
)
from repro.core.strategies import RandomStrategy, UncertaintyStrategy


class ToyTask(ActiveLearningTask):
    """Metric = fraction of pool labeled (monotone in labels)."""

    def __init__(self, n=50):
        self.n = n
        self.labeled = np.zeros(n, dtype=bool)
        self.trained_on = []

    def pool_size(self):
        return self.n

    def initial_model(self):
        self.labeled = np.zeros(self.n, dtype=bool)
        return {"labels": 0}

    def train(self, model, labeled_indices):
        self.trained_on.append(np.array(labeled_indices))
        model["labels"] = len(labeled_indices)
        return model

    def predict_pool(self, model):
        return model

    def severities(self, predictions):
        sev = np.zeros((self.n, 1))
        sev[: self.n // 2, 0] = 1.0
        return sev

    def uncertainty(self, predictions):
        return np.linspace(0, 1, self.n)

    def evaluate(self, model):
        return 100.0 * model["labels"] / self.n


class TestRunActiveLearning:
    def test_labels_accumulate(self):
        task = ToyTask()
        result = run_active_learning(
            task, RandomStrategy(seed=0), n_rounds=3, budget_per_round=5
        )
        assert [r.n_labeled for r in result.rounds] == [5, 10, 15]
        assert result.metrics == [10.0, 20.0, 30.0]

    def test_initial_metric_recorded(self):
        result = run_active_learning(
            ToyTask(), RandomStrategy(seed=0), n_rounds=1, budget_per_round=5
        )
        assert result.initial_metric == 0.0

    def test_cumulative_training_set(self):
        task = ToyTask()
        run_active_learning(task, RandomStrategy(seed=0), n_rounds=2, budget_per_round=4)
        assert len(task.trained_on[0]) == 4
        assert len(task.trained_on[1]) == 8
        assert set(task.trained_on[0]).issubset(set(task.trained_on[1]))

    def test_no_relabeling(self):
        task = ToyTask(n=10)
        result = run_active_learning(
            task, UncertaintyStrategy(), n_rounds=3, budget_per_round=4
        )
        # 10 points, 12 requested: the last round gets only the remainder.
        assert result.rounds[-1].n_labeled == 10

    def test_fire_counts_recorded(self):
        result = run_active_learning(
            ToyTask(), RandomStrategy(seed=0), n_rounds=1, budget_per_round=2
        )
        assert result.rounds[0].fire_counts == {"assertion_0": 25}

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            run_active_learning(ToyTask(), RandomStrategy(), n_rounds=0, budget_per_round=1)
        with pytest.raises(ValueError):
            run_active_learning(ToyTask(), RandomStrategy(), n_rounds=1, budget_per_round=0)


class TestResultHelpers:
    def test_labels_to_reach(self):
        result = ActiveLearningResult(strategy_name="x")
        for i, metric in enumerate([10.0, 30.0, 60.0]):
            result.rounds.append(RoundResult(i, metric, (i + 1) * 5))
        assert result.labels_to_reach(25.0) == 10
        assert result.labels_to_reach(60.0) == 15
        assert result.labels_to_reach(99.0) is None

    def test_final_metric(self):
        result = ActiveLearningResult(strategy_name="x", initial_metric=5.0)
        assert result.final_metric == 5.0
        result.rounds.append(RoundResult(0, 42.0, 5))
        assert result.final_metric == 42.0


class TestCompareStrategies:
    def test_averages_over_trials(self):
        results = compare_strategies(
            lambda trial: ToyTask(),
            [RandomStrategy(seed=0), UncertaintyStrategy()],
            n_rounds=2,
            budget_per_round=5,
            n_trials=3,
        )
        assert set(results) == {"random", "uncertainty"}
        # deterministic toy metric: averaging changes nothing
        assert results["random"].metrics == [10.0, 20.0]
