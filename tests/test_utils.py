"""Tests for repro.utils: seeding and validation."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import check_finite, check_fraction, check_positive, check_shape


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(as_generator(1).random(5), as_generator(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnGenerators:
    def test_spawn_count(self):
        assert len(spawn_generators(0, 4)) == 4

    def test_spawn_zero(self):
        assert spawn_generators(0, 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_are_independent(self):
        a, b = spawn_generators(0, 2)
        assert not np.allclose(a.random(10), b.random(10))

    def test_spawn_is_deterministic(self):
        a = spawn_generators(3, 2)[0].random(4)
        b = spawn_generators(3, 2)[0].random(4)
        assert np.allclose(a, b)


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive(1.5, "x") == 1.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive(0.0, "x")

    def test_check_positive_nonstrict_accepts_zero(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_check_fraction_bounds(self):
        assert check_fraction(0.0, "f") == 0.0
        assert check_fraction(1.0, "f") == 1.0
        with pytest.raises(ValueError):
            check_fraction(1.01, "f")
        with pytest.raises(ValueError):
            check_fraction(-0.01, "f")

    def test_check_shape_wildcard(self):
        arr = np.zeros((3, 4))
        check_shape(arr, (None, 4), "a")
        with pytest.raises(ValueError):
            check_shape(arr, (None, 5), "a")
        with pytest.raises(ValueError):
            check_shape(arr, (3, 4, 1), "a")

    def test_check_finite(self):
        check_finite(np.ones(3), "a")
        with pytest.raises(ValueError):
            check_finite(np.array([1.0, np.nan]), "a")
        with pytest.raises(ValueError):
            check_finite(np.array([np.inf]), "a")


class TestCodecRegistry:
    def test_reregistering_the_same_class_is_idempotent(self):
        from repro.core.types import StreamItem
        from repro.utils.codec import register_result_type

        assert register_result_type(StreamItem) is StreamItem

    def test_name_collision_with_a_different_class_is_rejected(self):
        from dataclasses import dataclass

        from repro.utils.codec import register_result_type

        @dataclass
        class StreamItem:  # collides with the registered core type
            y: int = 0

        with pytest.raises(ValueError, match="StreamItem"):
            register_result_type(StreamItem)


class TestAtomicWriteJson:
    def test_rename_target_is_always_complete_json(self, tmp_path):
        import json

        from repro.utils.io import atomic_write_json

        path = str(tmp_path / "out.json")
        atomic_write_json({"a": 1}, path)
        assert json.load(open(path)) == {"a": 1}
        # overwrite: a crash mid-write must never leave a torn file at
        # `path` — the new content lands via rename only
        atomic_write_json({"b": [1, 2, 3]}, path)
        assert json.load(open(path)) == {"b": [1, 2, 3]}
        assert list(tmp_path.iterdir()) == [tmp_path / "out.json"]  # no tmp debris

    def test_data_is_fsynced_before_rename(self, tmp_path, monkeypatch):
        """Satellite fix: flush + fsync the temp file, then fsync the
        directory after the rename — a crash right after return cannot
        lose the write."""
        import os

        from repro.utils import io as io_mod

        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(os, "fsync", lambda fd: (events.append("fsync"), real_fsync(fd))[1])
        monkeypatch.setattr(
            os, "replace", lambda a, b: (events.append("replace"), real_replace(a, b))[1]
        )
        io_mod.atomic_write_json({"x": 1}, str(tmp_path / "out.json"))
        # file fsync strictly before the rename; directory fsync after
        assert events[:2] == ["fsync", "replace"]
        if os.name == "posix":
            assert events == ["fsync", "replace", "fsync"]

    def test_failed_write_leaves_existing_file_intact(self, tmp_path):
        import json

        from repro.utils.io import atomic_write_json

        path = str(tmp_path / "out.json")
        atomic_write_json({"keep": True}, path)
        with pytest.raises(TypeError):
            atomic_write_json({"bad": object()}, path)  # not JSON-serializable
        assert json.load(open(path)) == {"keep": True}  # old content survives
        assert list(tmp_path.iterdir()) == [tmp_path / "out.json"]  # tmp removed


class TestFraming:
    def test_registered_dataclasses_round_trip_bit_exact(self):
        from repro.core.types import AssertionRecord
        from repro.utils.codec import from_jsonable
        from repro.utils.framing import decode_frame, encode_frame

        record = AssertionRecord("a", 3, 0.1 + 0.2, context="s1")
        line = encode_frame({"op": "x", "record": record})
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        doc = decode_frame(line)
        # decode is json-only: the codec tag survives for the caller
        restored = from_jsonable(doc["record"])
        assert restored == record
        assert restored.severity == 0.1 + 0.2  # floats bit-exact

    def test_already_encoded_payloads_pass_through_unchanged(self):
        from repro.utils.framing import decode_frame, encode_frame

        # e.g. a service snapshot travelling inside a frame: stored in
        # codec-encoded form, must round-trip untouched
        payload = {"__dataclass__": "Whatever", "fields": {"x": 1}}
        assert decode_frame(encode_frame({"snapshot": payload}))["snapshot"] == payload

    def test_oversize_and_malformed_frames_raise_frame_error(self):
        from repro.utils.framing import FrameError, decode_frame, encode_frame

        with pytest.raises(FrameError, match="exceeds"):
            decode_frame(b'"' + b"x" * 64 + b'"', max_bytes=32)
        with pytest.raises(FrameError, match="not a JSON frame"):
            decode_frame(b"{truncated")
        with pytest.raises(FrameError, match="not a JSON frame"):
            decode_frame(b"\xff\xfe")
        with pytest.raises(FrameError, match="not codec-encodable"):
            encode_frame({"x": object()})
