"""Tests for repro.utils: seeding and validation."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import check_finite, check_fraction, check_positive, check_shape


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(as_generator(1).random(5), as_generator(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnGenerators:
    def test_spawn_count(self):
        assert len(spawn_generators(0, 4)) == 4

    def test_spawn_zero(self):
        assert spawn_generators(0, 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_are_independent(self):
        a, b = spawn_generators(0, 2)
        assert not np.allclose(a.random(10), b.random(10))

    def test_spawn_is_deterministic(self):
        a = spawn_generators(3, 2)[0].random(4)
        b = spawn_generators(3, 2)[0].random(4)
        assert np.allclose(a, b)


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive(1.5, "x") == 1.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive(0.0, "x")

    def test_check_positive_nonstrict_accepts_zero(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_check_fraction_bounds(self):
        assert check_fraction(0.0, "f") == 0.0
        assert check_fraction(1.0, "f") == 1.0
        with pytest.raises(ValueError):
            check_fraction(1.01, "f")
        with pytest.raises(ValueError):
            check_fraction(-0.01, "f")

    def test_check_shape_wildcard(self):
        arr = np.zeros((3, 4))
        check_shape(arr, (None, 4), "a")
        with pytest.raises(ValueError):
            check_shape(arr, (None, 5), "a")
        with pytest.raises(ValueError):
            check_shape(arr, (3, 4, 1), "a")

    def test_check_finite(self):
        check_finite(np.ones(3), "a")
        with pytest.raises(ValueError):
            check_finite(np.array([1.0, np.nan]), "a")
        with pytest.raises(ValueError):
            check_finite(np.array([np.inf]), "a")


class TestCodecRegistry:
    def test_reregistering_the_same_class_is_idempotent(self):
        from repro.core.types import StreamItem
        from repro.utils.codec import register_result_type

        assert register_result_type(StreamItem) is StreamItem

    def test_name_collision_with_a_different_class_is_rejected(self):
        from dataclasses import dataclass

        from repro.utils.codec import register_result_type

        @dataclass
        class StreamItem:  # collides with the registered core type
            y: int = 0

        with pytest.raises(ValueError, match="StreamItem"):
            register_result_type(StreamItem)
