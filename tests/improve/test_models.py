"""``ModelRegistry`` semantics and the model-state serialization layer.

The hot-swap/versioning story rests on ``get_state``/``set_state`` being
(a) lossless through JSON and (b) *aliasing-free*: restored models must
never share arrays with the payload, or training would silently mutate
published versions.
"""

import json

import numpy as np
import pytest

from repro.improve import ModelRegistry
from repro.utils.codec import from_jsonable, to_jsonable


def json_round_trip(payload):
    return from_jsonable(json.loads(json.dumps(to_jsonable(payload))))


class TestModelRegistry:
    def test_versions_are_monotonic_from_one(self):
        registry = ModelRegistry()
        assert registry.latest_version is None
        v1 = registry.publish({"w": 1}, metric=10.0, round_index=-1)
        v2 = registry.publish({"w": 2}, metric=20.0, round_index=0)
        assert (v1, v2) == (1, 2)
        assert registry.latest_version == 2
        assert registry.latest().state == {"w": 2}
        assert registry.get(1).metric == 10.0
        assert registry.history() == [(1, 10.0, -1), (2, 20.0, 0)]

    def test_ring_bound_keeps_latest_and_numbering(self):
        registry = ModelRegistry(max_versions=2)
        for i in range(5):
            registry.publish({"w": i})
        assert [v.version for v in registry.versions()] == [4, 5]
        with pytest.raises(KeyError, match="not in the registry"):
            registry.get(1)
        assert registry.publish({"w": 9}) == 6  # numbering never resets

    def test_empty_registry_latest_raises(self):
        with pytest.raises(KeyError, match="empty"):
            ModelRegistry().latest()

    def test_snapshot_round_trip(self):
        registry = ModelRegistry(max_versions=3)
        for i in range(4):
            registry.publish({"w": i}, metric=float(i), round_index=i - 1)
        restored = ModelRegistry()
        restored.restore(json.loads(json.dumps(registry.snapshot())))
        assert restored.history() == registry.history()
        assert restored.max_versions == 3
        assert restored.publish({"w": 99}) == registry.publish({"w": 99})

    def test_restore_validates_format(self):
        with pytest.raises(ValueError, match="format"):
            ModelRegistry().restore({"format": -1})


class TestModelStateRoundTrips:
    def test_ecg_classifier_restore_then_finetune_is_bit_identical(self):
        from repro.domains.ecg.model import ECGClassifier
        from repro.domains.ecg.task import bootstrap_ecg_classifier, make_ecg_task_data

        data = make_ecg_task_data(0, n_train=30, n_pool=8, n_test=8)
        original = bootstrap_ecg_classifier(data, seed=1)
        restored = ECGClassifier(seed=999)
        restored.set_state(json_round_trip(original.get_state()))

        original.fine_tune(data.pool, epochs=3)
        restored.fine_tune(data.pool, epochs=3)
        for a, b in zip(original.mlp.weights, restored.mlp.weights):
            np.testing.assert_array_equal(a, b)
        assert original.accuracy(data.test) == restored.accuracy(data.test)

    def test_detector_restore_then_finetune_is_bit_identical(self):
        from repro.detection.detector import Detector
        from repro.domains.video.task import bootstrap_detector, make_video_task_data

        data = make_video_task_data(0, n_bootstrap_day=8, n_bootstrap_night=2,
                                    n_pool=4, n_test=2)
        original = bootstrap_detector(data, seed=3)
        restored = Detector(seed=42)
        restored.set_state(json_round_trip(original.get_state()))

        images = [f.image for f in data.pool]
        truths = [f.ground_truth for f in data.pool]
        original.fine_tune(images, truths, epochs=2)
        restored.fine_tune(images, truths, epochs=2)
        np.testing.assert_array_equal(original.scorer.weights, restored.scorer.weights)

    def test_set_state_never_aliases_the_payload(self):
        """Training a restored model must not mutate the stored payload
        (the registry's published versions are immutable)."""
        from repro.domains.ecg.model import ECGClassifier
        from repro.domains.ecg.task import bootstrap_ecg_classifier, make_ecg_task_data

        data = make_ecg_task_data(0, n_train=30, n_pool=8, n_test=8)
        model = bootstrap_ecg_classifier(data, seed=1)
        payload = model.get_state()  # live ndarrays, no JSON round trip
        frozen = json.dumps(to_jsonable(payload))

        clone = ECGClassifier(seed=0)
        clone.set_state(payload)
        clone.fine_tune(data.pool, epochs=2)
        assert json.dumps(to_jsonable(payload)) == frozen

    def test_architecture_mismatch_is_rejected(self):
        from repro.ml.mlp import MLPClassifier

        a = MLPClassifier(n_features=4, hidden=(8,), n_classes=3, seed=0)
        b = MLPClassifier(n_features=4, hidden=(16,), n_classes=3, seed=0)
        with pytest.raises(ValueError, match="architecture"):
            b.set_state(a.get_state())

    def test_detector_scorer_type_mismatch_is_rejected(self):
        from repro.detection.detector import Detector, DetectorConfig

        linear = Detector(DetectorConfig(scorer_type="linear"), seed=0)
        mlp = Detector(DetectorConfig(scorer_type="mlp"), seed=0)
        with pytest.raises(ValueError, match="scorer"):
            mlp.set_state(linear.get_state())

    def test_generator_state_round_trip_continues_the_stream(self):
        from repro.utils.rng import generator_from_state, generator_state

        rng = np.random.default_rng(5)
        rng.random(100)
        resumed = generator_from_state(
            json.loads(json.dumps(generator_state(rng)))
        )
        np.testing.assert_array_equal(rng.random(16), resumed.random(16))

    def test_generator_from_state_rejects_unknown_bit_generator(self):
        from repro.utils.rng import generator_from_state

        with pytest.raises(ValueError, match="bit generator"):
            generator_from_state({"bit_generator": "nope"})
