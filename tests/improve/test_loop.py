"""Closed-loop determinism, hot-swap invisibility, and resume fidelity.

The three pillars the ISSUE pins down:

- same seed → bit-identical label picks, bandit posteriors, and model
  metrics, whether retraining runs inline or in a worker process;
- snapshot → resume equals an uninterrupted run, bit for bit;
- hot-swapping a model version mid-stream leaves monitoring output
  bit-identical to a run that started on that version from the swap
  point onward.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.domains.registry import get_domain
from repro.improve import ImproveConfig, ImprovementLoop
from repro.serve import MonitorService
from repro.utils.codec import to_jsonable

SMALL = ImproveConfig(
    domain="ecg",
    policy="bal",
    n_streams=2,
    items_per_round=4,
    budget=4,
    n_rounds=2,
    seed=0,
)


def fingerprint(loop):
    """Every bit the determinism contract covers, as one JSON string."""
    return json.dumps(
        to_jsonable(
            {
                "adapter": loop.adapter.get_state(),
                "policy": loop.policy.get_state(),
                "versions": [
                    (v.version, v.metric, v.round_index)
                    for v in loop.registry.versions()
                ],
                "ledger": loop.queue.snapshot(),
                "fires": loop.fire_store.snapshot(),
                "rounds": loop.rounds,
                "adopted": loop.adopted_version,
                "pending": loop._pending_version,
            }
        )
    )


class TestClosedLoopDeterminism:
    def test_serial_and_worker_pool_retraining_are_bit_identical(self):
        serial = ImprovementLoop(SMALL)
        serial.run()
        with ImprovementLoop(dataclasses.replace(SMALL, jobs=2)) as pooled:
            pooled.run()
            assert fingerprint(serial) == fingerprint(pooled)

    def test_snapshot_resume_matches_uninterrupted(self):
        config = dataclasses.replace(SMALL, n_rounds=3, swap_tick=2)

        uninterrupted = ImprovementLoop(config)
        uninterrupted.run()

        paused = ImprovementLoop(config)
        paused.run_round()
        payload = json.loads(json.dumps(paused.snapshot()))  # file round trip
        resumed = ImprovementLoop.from_snapshot(payload)
        resumed.run(2)
        assert fingerprint(resumed) == fingerprint(uninterrupted)

    def test_same_seed_same_picks_different_seed_different_picks(self):
        a = ImprovementLoop(SMALL)
        b = ImprovementLoop(SMALL)
        c = ImprovementLoop(dataclasses.replace(SMALL, seed=1))
        for loop in (a, b, c):
            loop.run(1)
        keys = lambda loop: [e.key for e in loop.queue.entries()]  # noqa: E731
        assert keys(a) == keys(b)
        assert fingerprint(a) == fingerprint(b)
        assert fingerprint(a) != fingerprint(c)

    def test_resume_survives_a_version_ring_that_dropped_the_adopted_model(self):
        """With max_versions=1 the registry keeps only the newest
        (pending) version while the fleet still serves the previous one;
        the snapshot must restore the serving weights regardless."""
        config = dataclasses.replace(SMALL, max_versions=1, n_rounds=2)
        paused = ImprovementLoop(config)
        paused.run()  # ends with a published-but-unadopted pending version
        assert paused._pending_version is not None
        assert paused._pending_version != paused.adopted_version
        payload = json.loads(json.dumps(paused.snapshot()))
        resumed = ImprovementLoop.from_snapshot(payload)
        assert fingerprint(resumed) == fingerprint(paused)
        resumed.run(1)  # and it keeps running (adopting the pending one)
        assert resumed.adopted_version > 1

    def test_snapshot_pins_the_domain_config(self):
        from repro.domains.ecg.domain import EcgDomainConfig

        custom = EcgDomainConfig(n_eval=40)
        paused = ImprovementLoop(SMALL, domain_config=custom)
        paused.run(1)
        payload = json.loads(json.dumps(paused.snapshot()))

        # from_snapshot rebuilds the same domain config automatically …
        resumed = ImprovementLoop.from_snapshot(payload)
        assert resumed._domain_config == custom
        assert resumed._evaluator.config.n_eval == 40
        assert fingerprint(resumed) == fingerprint(paused)

        # … and restore() into a default-config loop is rejected loudly.
        mismatched = ImprovementLoop(SMALL)
        with pytest.raises(ValueError, match="domain_config"):
            mismatched.restore(payload)

    def test_restore_rejects_other_configs_and_formats(self):
        loop = ImprovementLoop(SMALL)
        payload = loop.snapshot()
        other = ImprovementLoop(dataclasses.replace(SMALL, seed=9))
        with pytest.raises(ValueError, match="config"):
            other.restore(payload)
        with pytest.raises(ValueError, match="format"):
            loop.restore({"format": -1})
        with pytest.raises(ValueError, match="snapshot"):
            ImprovementLoop.from_snapshot({"format": 1, "config": None})


class TestHotSwap:
    def test_mid_stream_swap_is_invisible_to_monitoring(self):
        """Acceptance: fires after a mid-stream hot-swap equal those of a
        run that started on the new version from the swap point onward
        (same monitor state, same inputs ⇒ same bits)."""
        domain = get_domain("ecg")
        sensor = domain.build_sensor(0)
        stream = domain.iter_samples(sensor)
        samples = [next(stream) for _ in range(10)]

        v1_model = domain.retrainable(0)
        v1 = v1_model.get_state()
        tuned = domain.retrainable(0, bootstrap=False)
        tuned.set_state(v1)
        tuned.fine_tune([(s, tuned.oracle_label(s)) for s in samples[:4]])
        v2 = json.loads(json.dumps(to_jsonable(tuned.get_state())))
        from repro.utils.codec import from_jsonable

        v2 = from_jsonable(v2)

        # Live run: 5 units on v1, hot-swap, 5 units on v2.
        adapter = domain.retrainable(0, bootstrap=False)
        adapter.set_state(v1)
        live = MonitorService(domain)
        for sample in samples[:5]:
            live.ingest("s", adapter.predict_raw(sample))
        checkpoint = json.loads(json.dumps(live.snapshot()))
        adapter.set_state(v2)  # the hot-swap, at a raw-unit boundary
        live_fires = [
            live.ingest("s", adapter.predict_raw(sample))
            for sample in samples[5:]
        ]

        # Control: a fleet restored at the swap point that started on v2.
        control = MonitorService.from_snapshot(checkpoint)
        fresh = domain.retrainable(0, bootstrap=False)
        fresh.set_state(v2)
        control_fires = [
            control.ingest("s", fresh.predict_raw(sample))
            for sample in samples[5:]
        ]

        assert live_fires == control_fires
        live_report = live.report("s")
        control_report = control.report("s")
        assert live_report.assertion_names == control_report.assertion_names
        np.testing.assert_array_equal(
            live_report.severities, control_report.severities
        )

    def test_loop_swaps_at_the_configured_tick(self):
        config = dataclasses.replace(SMALL, n_rounds=2, swap_tick=2)
        loop = ImprovementLoop(config)
        first = loop.run_round()
        assert (first.version_start, first.version_end) == (1, 1)
        second = loop.run_round()
        # round 0's retrain was published and adopted mid-round-1
        assert (second.version_start, second.version_end) == (1, 2)
        assert loop.adopted_version == 2


class TestLoopMechanics:
    def test_fires_accumulate_and_attribute_to_candidates(self):
        loop = ImprovementLoop(SMALL)
        loop.run_round()
        assert loop.fire_store.n_seen == sum(r.n_fires for r in loop.rounds)
        attributed = sum(c.severity.sum() for c in loop._pool) > 0 or any(
            e for e in loop.queue.entries()
        )
        assert attributed

    def test_labeled_candidates_leave_the_pool(self):
        loop = ImprovementLoop(SMALL)
        loop.run_round()
        pool_keys = {c.key for c in loop._pool}
        for entry in loop.queue.entries():
            assert entry.key not in pool_keys

    def test_max_pool_bounds_the_candidate_pool(self):
        config = dataclasses.replace(SMALL, max_pool=3, budget=0)
        loop = ImprovementLoop(config)
        loop.run_round()
        assert len(loop._pool) == 3
        # newest candidates are the ones kept
        assert [c.unit_index for c in loop._pool] == sorted(
            c.unit_index for c in loop._pool
        )

    def test_budget_zero_streams_without_retraining(self):
        config = dataclasses.replace(SMALL, budget=0)
        loop = ImprovementLoop(config)
        result = loop.run(2)
        assert result.n_labeled == 0
        assert [v for v, _m, _r in result.versions] == [1]  # bootstrap only

    def test_weak_supervision_routes_fired_candidates(self):
        config = dataclasses.replace(SMALL, weak=True, weak_cap=8, budget=1)
        loop = ImprovementLoop(config)
        result = loop.run(2)
        assert result.n_weak > 0
        sources = {e.source for e in loop.queue.entries()}
        assert sources <= {"oracle", "weak"} and "weak" in sources

    def test_eviction_during_loop_is_survivable(self):
        """The loop's service snapshots sessions on evict, so a stream
        bounced by the LRU can be re-admitted without losing history."""
        loop = ImprovementLoop(SMALL)
        loop.run_round()
        stream_ids = loop.stream_ids()
        session = loop.service.evict(stream_ids[0])
        assert session.evict_snapshot is not None
        loop.service.restore_session(stream_ids[0], session.evict_snapshot)
        reference = ImprovementLoop(SMALL)
        reference.run_round()
        np.testing.assert_array_equal(
            loop.service.report(stream_ids[0]).severities,
            reference.service.report(stream_ids[0]).severities,
        )

    def test_config_validation(self):
        with pytest.raises(ValueError, match="policy"):
            ImproveConfig(policy="greedy")
        with pytest.raises(ValueError, match="swap_tick"):
            ImproveConfig(items_per_round=4, swap_tick=4)
        with pytest.raises(ValueError, match="budget"):
            ImproveConfig(budget=-1)
        with pytest.raises(ValueError, match="n_streams"):
            ImproveConfig(n_streams=0)
