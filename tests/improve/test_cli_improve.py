"""``python -m repro improve`` smoke tests (fast tier)."""

import json

import pytest

from repro.__main__ import main


def run_cli(argv, capsys):
    code = main(argv)
    return code, capsys.readouterr().out


class TestImproveCLI:
    def test_smoke_run_and_resume(self, capsys, tmp_path):
        snapshot = str(tmp_path / "loop.json")
        argv = [
            "improve", "ecg", "--rounds", "1", "--budget", "4",
            "--streams", "2", "--items-per-round", "4",
            "--snapshot", snapshot, "--json",
        ]
        code, out = run_cli(argv, capsys)
        assert code == 0
        first = json.loads(out)
        assert first["resumed"] is False
        assert [r["round"] for r in first["rounds"]] == [0]
        assert first["n_labeled"] == 4

        code, out = run_cli(argv, capsys)
        assert code == 0
        second = json.loads(out)
        assert second["resumed"] is True
        assert [r["round"] for r in second["rounds"]] == [0, 1]
        assert second["initial_metric"] == first["initial_metric"]
        assert second["n_labeled"] == 8

    def test_conflicting_flags_on_resume_are_rejected(self, capsys, tmp_path):
        snapshot = str(tmp_path / "loop.json")
        base = [
            "improve", "ecg", "--rounds", "1", "--budget", "4",
            "--streams", "2", "--items-per-round", "4", "--snapshot", snapshot,
        ]
        assert main(base) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="--seed"):
            main(base + ["--seed", "5"])
        with pytest.raises(SystemExit, match="--policy"):
            main(base + ["--policy", "random"])

    def test_unknown_domain_and_bad_config_fail_cleanly(self):
        with pytest.raises(SystemExit, match="unknown domain"):
            main(["improve", "nope"])
        with pytest.raises(SystemExit, match="swap_tick"):
            main(["improve", "ecg", "--items-per-round", "2", "--swap-tick", "2"])

    def test_non_retrainable_domain_fails_cleanly(self):
        with pytest.raises(NotImplementedError, match="retrainable"):
            main(["improve", "tvnews", "--rounds", "1"])
