"""``FireStore``: ring bounds, totals, and lossless snapshots."""

import json

import pytest

from repro.core.types import AssertionRecord
from repro.improve import FireStore
from repro.serve import StreamFire


def fire(stream_id, name="osc", item_index=0, severity=1.0):
    return StreamFire(
        stream_id,
        AssertionRecord(
            assertion_name=name, item_index=item_index, severity=severity
        ),
    )


class TestFireStore:
    def test_accumulates_per_stream_in_order(self):
        store = FireStore()
        store.add(fire("a", item_index=0))
        store.add(fire("b", item_index=1))
        store.add(fire("a", item_index=2))
        assert store.stream_ids() == ["a", "b"]
        assert [r.item_index for r in store.fires("a")] == [0, 2]
        assert [f.stream_id for f in store.all_fires()] == ["a", "a", "b"]
        assert store.fires("never-fired") == []
        assert len(store) == 3

    def test_ring_drops_oldest_but_totals_keep_counting(self):
        store = FireStore(max_per_stream=2)
        for i in range(5):
            store.add(fire("a", item_index=i))
        assert [r.item_index for r in store.fires("a")] == [3, 4]
        assert len(store) == 2
        assert store.n_seen == 5
        assert store.seen_counts() == {"a": 5}

    def test_fire_counts_by_assertion(self):
        store = FireStore()
        store.add(fire("a", name="osc"))
        store.add(fire("a", name="flicker"))
        store.add(fire("b", name="osc"))
        assert store.fire_counts() == {"osc": 2, "flicker": 1}

    def test_snapshot_round_trips_through_json(self):
        store = FireStore(max_per_stream=3)
        for i in range(5):
            store.add(fire("a", item_index=i, severity=float(i) + 0.25))
        store.add(fire("b", name="flicker"))
        payload = json.loads(json.dumps(store.snapshot()))
        restored = FireStore.from_snapshot(payload)
        assert restored.n_seen == store.n_seen
        assert restored.fires("a") == store.fires("a")
        assert restored.fires("b") == store.fires("b")
        assert restored.fire_counts() == store.fire_counts()

    def test_restore_validates_format_and_bounds(self):
        store = FireStore(max_per_stream=3)
        with pytest.raises(ValueError, match="format"):
            store.restore({"format": 99})
        other = FireStore(max_per_stream=8)
        with pytest.raises(ValueError, match="max_per_stream"):
            other.restore(store.snapshot())

    def test_max_per_stream_validation(self):
        with pytest.raises(ValueError, match="max_per_stream"):
            FireStore(max_per_stream=0)

    def test_wires_directly_into_service_on_fire(self):
        from repro.domains.registry import get_domain
        from repro.serve import MonitorService

        domain = get_domain("tvnews")
        service = MonitorService(domain)
        store = FireStore()
        dispatched = []
        service.on_fire(store.add)
        service.on_fire(dispatched.append)
        stream = domain.iter_stream(domain.build_world(seed=0))
        for _ in range(12):
            service.ingest("feed", next(stream))
        assert store.n_seen == len(dispatched) > 0
        assert store.all_fires() == dispatched
