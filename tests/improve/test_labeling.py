"""``LabelQueue`` routing and the candidate/ledger serialization."""

import json

import numpy as np
import pytest

from repro.improve import Candidate, LabelQueue


class StubModel:
    """Oracle = sample value; weak label = raw value (None when < 0)."""

    def oracle_label(self, sample):
        return ("oracle", sample)

    def weak_labels(self, samples, raws=None):
        return [None if raw < 0 else ("weak", raw) for raw in raws]


def candidate(stream_id, unit_index, sample=0, raw=0, severity=(1.0,)):
    return Candidate(
        stream_id=stream_id,
        unit_index=unit_index,
        item_start=unit_index * 10,
        item_stop=unit_index * 10 + 10,
        sample=sample,
        raw=raw,
        severity=np.asarray(severity, dtype=np.float64),
        uncertainty=0.5,
        round_index=0,
    )


class TestLabelQueue:
    def test_oracle_labels_accumulate_in_order(self):
        queue = LabelQueue()
        added = queue.submit_oracle(
            [candidate("s0", 0, sample=7), candidate("s1", 3, sample=9)],
            StubModel(),
            round_index=0,
        )
        assert [e.label for e in added] == [("oracle", 7), ("oracle", 9)]
        assert queue.examples() == [(7, ("oracle", 7)), (9, ("oracle", 9))]
        assert queue.n_oracle == 2 and queue.n_weak == 0
        assert ("s0", 0) in queue

    def test_double_oracle_spend_is_skipped(self):
        queue = LabelQueue()
        queue.submit_oracle([candidate("s0", 0)], StubModel(), round_index=0)
        added = queue.submit_oracle([candidate("s0", 0)], StubModel(), round_index=1)
        assert added == []
        assert len(queue) == 1

    def test_weak_then_oracle_upgrades_in_place(self):
        queue = LabelQueue()
        queue.submit_weak(
            [candidate("s0", 0, raw=5), candidate("s0", 1, raw=6)],
            StubModel(),
            round_index=0,
        )
        assert queue.n_weak == 2
        queue.submit_oracle([candidate("s0", 0, sample=1)], StubModel(), round_index=1)
        # upgraded entry keeps its ledger position; counts shift
        assert queue.n_oracle == 1 and queue.n_weak == 1
        assert [e.source for e in queue.entries()] == ["oracle", "weak"]
        assert [e.key for e in queue.entries()] == [("s0", 0), ("s0", 1)]

    def test_weak_never_overwrites_any_existing_label(self):
        queue = LabelQueue()
        queue.submit_oracle([candidate("s0", 0)], StubModel(), round_index=0)
        queue.submit_weak([candidate("s0", 0, raw=5)], StubModel(), round_index=1)
        assert queue.entries()[0].source == "oracle"

    def test_weak_none_labels_are_dropped(self):
        queue = LabelQueue()
        added = queue.submit_weak(
            [candidate("s0", 0, raw=-1), candidate("s0", 1, raw=2)],
            StubModel(),
            round_index=0,
        )
        assert [e.key for e in added] == [("s0", 1)]

    def test_weak_groups_per_stream_in_unit_order(self):
        calls = []

        class RecordingModel(StubModel):
            def weak_labels(self, samples, raws=None):
                calls.append(list(raws))
                return super().weak_labels(samples, raws)

        queue = LabelQueue()
        queue.submit_weak(
            [
                candidate("s1", 2, raw=12),
                candidate("s0", 1, raw=1),
                candidate("s1", 0, raw=10),
            ],
            RecordingModel(),
            round_index=0,
        )
        assert calls == [[10, 12], [1]]

    def test_snapshot_round_trips_through_json(self):
        queue = LabelQueue()
        queue.submit_weak([candidate("s0", 0, raw=5)], StubModel(), round_index=0)
        queue.submit_oracle([candidate("s1", 1, sample=3)], StubModel(), round_index=1)
        restored = LabelQueue()
        restored.restore(json.loads(json.dumps(queue.snapshot())))
        assert [(e.key, e.label, e.source, e.round_index) for e in restored.entries()] \
            == [(e.key, e.label, e.source, e.round_index) for e in queue.entries()]

    def test_restore_validates_format(self):
        with pytest.raises(ValueError, match="format"):
            LabelQueue().restore({"format": 0})


class TestCandidatePayload:
    def test_round_trip_preserves_everything(self):
        original = candidate("ecg-1", 4, sample=3, raw=7, severity=(0.5, 2.0))
        restored = Candidate.from_payload(
            json.loads(json.dumps(original.to_payload()))
        )
        assert restored.key == original.key == ("ecg-1", 4)
        assert restored.contains_item(44) and not restored.contains_item(50)
        np.testing.assert_array_equal(restored.severity, original.severity)
        assert (restored.sample, restored.raw) == (3, 7)
        assert restored.uncertainty == original.uncertainty
