"""``SelectionPolicy``: name routing and checkpointable selection state."""

import json

import numpy as np
import pytest

from repro.improve import POLICY_NAMES, SelectionPolicy
from repro.utils.codec import from_jsonable, to_jsonable


def pool(seed, n=40, d=3):
    rng = np.random.default_rng(seed)
    severities = rng.random((n, d)) * (rng.random((n, d)) < 0.4)
    uncertainty = rng.random(n)
    return severities, uncertainty


class TestSelectionPolicy:
    def test_unknown_policy_is_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            SelectionPolicy("greedy")

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_select_respects_budget_and_pool(self, name):
        policy = SelectionPolicy(name, seed=0)
        severities, uncertainty = pool(3)
        picked = policy.select(severities, uncertainty, 10, round_index=0)
        assert len(picked) <= 10
        assert len(set(picked.tolist())) == len(picked)
        assert np.all((picked >= 0) & (picked < severities.shape[0]))

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_same_seed_same_picks(self, name):
        a = SelectionPolicy(name, seed=7)
        b = SelectionPolicy(name, seed=7)
        for round_index in range(3):
            severities, uncertainty = pool(round_index)
            np.testing.assert_array_equal(
                a.select(severities, uncertainty, 8, round_index=round_index),
                b.select(severities, uncertainty, 8, round_index=round_index),
            )

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_state_round_trip_continues_bit_identically(self, name):
        reference = SelectionPolicy(name, seed=11)
        paused = SelectionPolicy(name, seed=11)
        for round_index in range(2):
            severities, uncertainty = pool(10 + round_index)
            reference.select(severities, uncertainty, 6, round_index=round_index)
            paused.select(severities, uncertainty, 6, round_index=round_index)

        # checkpoint through a real JSON round trip, restore into a
        # freshly seeded policy, and continue both for two more rounds
        payload = json.loads(json.dumps(to_jsonable(paused.get_state())))
        resumed = SelectionPolicy(name, seed=999)
        resumed.set_state(from_jsonable(payload))
        for round_index in range(2, 4):
            severities, uncertainty = pool(10 + round_index)
            np.testing.assert_array_equal(
                reference.select(severities, uncertainty, 6, round_index=round_index),
                resumed.select(severities, uncertainty, 6, round_index=round_index),
            )

    def test_bal_state_carries_posteriors(self):
        policy = SelectionPolicy("bal", seed=0)
        severities, uncertainty = pool(0)
        policy.select(severities, uncertainty, 6, round_index=0)
        state = policy.get_state()
        assert state["strategy"]["bal"]["round"] == 1
        assert state["strategy"]["bal"]["prev_fire_counts"] is not None

    def test_state_is_policy_specific(self):
        bal = SelectionPolicy("bal", seed=0)
        other = SelectionPolicy("random", seed=0)
        with pytest.raises(ValueError, match="policy"):
            other.set_state(bal.get_state())


class TestStrategyStateContracts:
    def test_stateless_strategy_rejects_foreign_state(self):
        from repro.core.strategies import UncertaintyStrategy

        strategy = UncertaintyStrategy()
        assert strategy.get_state() == {}
        strategy.set_state({})
        with pytest.raises(ValueError, match="stateless"):
            strategy.set_state({"rng": {}})

    def test_bal_round_trip_matches_uninterrupted(self):
        from repro.core.bal import BAL

        rng = np.random.default_rng(0)
        sev = rng.random((30, 4)) * (rng.random((30, 4)) < 0.5)
        a = BAL(seed=3)
        b = BAL(seed=3)
        a.select(sev, 5)
        b.select(sev, 5)
        resumed = BAL(seed=77)
        resumed.set_state(json_round_trip(b.get_state()))
        sev2 = rng.random((30, 4)) * (rng.random((30, 4)) < 0.5)
        np.testing.assert_array_equal(
            a.select(sev2, 5).indices, resumed.select(sev2, 5).indices
        )


def json_round_trip(state):
    return from_jsonable(json.loads(json.dumps(to_jsonable(state))))
