"""Legacy setup shim.

The primary build configuration lives in ``pyproject.toml``; this file
exists so editable installs work in offline environments that lack the
``wheel`` package (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
