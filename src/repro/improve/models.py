"""``ModelRegistry``: monotonically versioned model states for hot-swap.

A version is a full training-state payload (weights, optimizer moments,
generator positions — see ``RetrainableModel.get_state``) plus its
publish-time held-out metric. Versions are immutable and numbered from 1
upward; the serving fleet *adopts* a version by ``set_state`` at a
stream-item boundary, which touches no evaluator state — the hot-swap
the improvement loop performs every time retraining lands.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Version tag of the :meth:`ModelRegistry.snapshot` payload layout.
MODEL_REGISTRY_FORMAT = 1


@dataclass(frozen=True)
class ModelVersion:
    """One published model: its number, state payload, and provenance."""

    version: int
    state: dict
    metric: "float | None" = None
    round_index: int = -1  # -1: the bootstrap model, before any round

    def __repr__(self) -> str:  # state payloads are huge; keep repr sane
        metric = "?" if self.metric is None else f"{self.metric:.2f}"
        return (
            f"ModelVersion(v{self.version}, metric={metric}, "
            f"round={self.round_index})"
        )


class ModelRegistry:
    """Append-only, ring-bounded store of :class:`ModelVersion` s.

    Parameters
    ----------
    max_versions:
        Retained versions (oldest dropped first); ``None`` = keep all.
        The numbering stays monotonic across drops, and the latest
        version is always retained.
    """

    def __init__(self, max_versions: "int | None" = None) -> None:
        if max_versions is not None and max_versions < 1:
            raise ValueError(f"max_versions must be >= 1, got {max_versions}")
        self.max_versions = max_versions
        self._versions: list = []
        self._next = 1

    def __len__(self) -> int:
        return len(self._versions)

    @property
    def latest_version(self) -> "int | None":
        """Highest published version number (``None`` when empty)."""
        return self._versions[-1].version if self._versions else None

    def publish(
        self, state: dict, *, metric: "float | None" = None, round_index: int = -1
    ) -> int:
        """Register a new model state; returns its version number."""
        version = ModelVersion(
            version=self._next,
            state=state,
            metric=metric,
            round_index=round_index,
        )
        self._next += 1
        self._versions.append(version)
        if self.max_versions is not None:
            del self._versions[: max(0, len(self._versions) - self.max_versions)]
        return version.version

    def get(self, version: int) -> ModelVersion:
        """The published version, or KeyError (unknown / ring-dropped)."""
        for candidate in self._versions:
            if candidate.version == version:
                return candidate
        raise KeyError(
            f"model version {version} is not in the registry "
            f"(retained: {[v.version for v in self._versions]})"
        )

    def latest(self) -> ModelVersion:
        """The newest version, or KeyError when empty."""
        if not self._versions:
            raise KeyError("the model registry is empty; publish first")
        return self._versions[-1]

    def versions(self) -> list:
        """Retained :class:`ModelVersion` s, oldest first."""
        return list(self._versions)

    def history(self) -> list:
        """``(version, metric, round_index)`` rows, oldest first."""
        return [(v.version, v.metric, v.round_index) for v in self._versions]

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-encodable checkpoint (state payloads included)."""
        return {
            "format": MODEL_REGISTRY_FORMAT,
            "max_versions": self.max_versions,
            "next": self._next,
            "versions": [
                {
                    "version": v.version,
                    "state": v.state,
                    "metric": v.metric,
                    "round_index": v.round_index,
                }
                for v in self._versions
            ],
        }

    def restore(self, payload: dict) -> None:
        """Replace contents with a :meth:`snapshot` payload."""
        fmt = payload.get("format")
        if fmt != MODEL_REGISTRY_FORMAT:
            raise ValueError(
                f"unsupported model-registry snapshot format {fmt!r} "
                f"(expected {MODEL_REGISTRY_FORMAT})"
            )
        self.max_versions = payload["max_versions"]
        self._next = int(payload["next"])
        self._versions = [
            ModelVersion(
                version=int(row["version"]),
                state=row["state"],
                metric=row["metric"],
                round_index=int(row["round_index"]),
            )
            for row in payload["versions"]
        ]
