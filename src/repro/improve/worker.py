"""``RetrainWorker``: background fine-tuning with bit-identical results.

Retraining is a pure function of ``(domain, model state payload, labeled
examples)`` — :func:`retrain_once` rebuilds a bare model shell
(``retrainable(bootstrap=False)``), restores the state (weights,
optimizer moments, *and* generator positions), fine-tunes, and returns
the new state. Because nothing depends on ambient process state, the
exact same bits come back whether the call runs inline (``jobs=1``) or
on a :class:`~concurrent.futures.ProcessPoolExecutor` — the property
``tests/improve/test_loop.py`` pins down, mirroring the experiment
runner's serial ≡ ``--jobs N`` guarantee.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any


def retrain_once(
    domain_name: str,
    domain_config: Any,
    seed: int,
    state: dict,
    examples: list,
) -> dict:
    """Fine-tune one model state on the labeled set; return the new state.

    Runs in the main process or a pool worker interchangeably: the
    domain (and its config, pickled across) rebuilds the adapter shell,
    ``set_state`` restores the full training state, and the examples are
    the ledger's ``(sample, label)`` pairs.
    """
    from repro.domains.registry import get_domain

    adapter = get_domain(domain_name, domain_config).retrainable(
        seed, bootstrap=False
    )
    adapter.set_state(state)
    adapter.fine_tune(examples)
    return adapter.get_state()


class RetrainWorker:
    """Runs :func:`retrain_once` inline or on a process pool.

    Parameters
    ----------
    domain_name, domain_config, seed:
        Forwarded to :func:`retrain_once` on every submission (the seed
        is the loop's adapter seed, so shells match the serving model's
        architecture).
    jobs:
        ``1`` (default) computes at :meth:`submit` time on the calling
        thread; ``> 1`` dispatches to a process pool so the serving loop
        keeps ingesting while the model trains. Results are bit-identical
        either way.
    """

    def __init__(
        self,
        domain_name: str,
        domain_config: Any = None,
        *,
        seed: int = 0,
        jobs: int = 1,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.domain_name = domain_name
        self.domain_config = domain_config
        self.seed = seed
        self.jobs = jobs
        self._pool: "ProcessPoolExecutor | None" = None

    def submit(self, state: dict, examples: list) -> Future:
        """Schedule one retraining; returns a future of the new state."""
        if self.jobs == 1:
            future: Future = Future()
            try:
                future.set_result(
                    retrain_once(
                        self.domain_name, self.domain_config, self.seed,
                        state, examples,
                    )
                )
            except BaseException as exc:  # parity with the pool path
                future.set_exception(exc)
            return future
        if self._pool is None:
            # Sized 1: retraining rounds are sequential by construction
            # (each starts from the previous result); the pool buys
            # overlap with serving, not retrain-vs-retrain parallelism.
            self._pool = ProcessPoolExecutor(max_workers=1)
        return self._pool.submit(
            retrain_once, self.domain_name, self.domain_config, self.seed,
            state, examples,
        )

    def close(self) -> None:
        """Shut the pool down (idempotent; inline mode is a no-op)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "RetrainWorker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
