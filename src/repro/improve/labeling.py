"""``LabelQueue``: route selected candidates to labels, keep the ledger.

Two labeling routes, as in the paper:

- **oracle** — the human-labeler stand-in (§5.1 uses ground truth for
  CINC17/night-street): :meth:`~repro.domains.registry.RetrainableModel.
  oracle_label` per sample, charged against the round's label budget;
- **weak** — consistency-propagated pseudo-labels (§4.2):
  :meth:`~repro.domains.registry.RetrainableModel.weak_labels` over the
  flagged units, free of human cost.

The queue owns the cumulative labeled set the
:class:`~repro.improve.worker.RetrainWorker` fine-tunes on. An oracle
label upgrades an earlier weak label in place (same ledger position, so
example order — and therefore retraining — is independent of when the
upgrade happened).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.utils.codec import from_jsonable, to_jsonable

#: Version tag of the :meth:`LabelQueue.snapshot` payload layout.
LABEL_QUEUE_FORMAT = 1


@dataclass
class Candidate:
    """One streamed raw unit, eligible for labeling.

    ``severity`` is the unit's per-assertion fire severity (monitor
    database order); it keeps accumulating after creation when temporal
    assertions attribute later evidence back into this unit's items.
    """

    stream_id: str
    unit_index: int
    item_start: int
    item_stop: int
    sample: object
    raw: object
    severity: np.ndarray
    uncertainty: float
    round_index: int

    @property
    def key(self) -> tuple:
        return (self.stream_id, self.unit_index)

    def contains_item(self, item_index: int) -> bool:
        return self.item_start <= item_index < self.item_stop

    def to_payload(self) -> dict:
        return {
            "stream_id": self.stream_id,
            "unit_index": self.unit_index,
            "items": [self.item_start, self.item_stop],
            "sample": to_jsonable(self.sample),
            "raw": to_jsonable(self.raw),
            "severity": to_jsonable(self.severity),
            "uncertainty": self.uncertainty,
            "round_index": self.round_index,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Candidate":
        return cls(
            stream_id=payload["stream_id"],
            unit_index=int(payload["unit_index"]),
            item_start=int(payload["items"][0]),
            item_stop=int(payload["items"][1]),
            sample=from_jsonable(payload["sample"]),
            raw=from_jsonable(payload["raw"]),
            severity=np.asarray(from_jsonable(payload["severity"]), dtype=np.float64),
            uncertainty=float(payload["uncertainty"]),
            round_index=int(payload["round_index"]),
        )


@dataclass
class LabeledExample:
    """One ledger entry: a sample, its label, and the label's provenance."""

    key: tuple  # (stream_id, unit_index)
    sample: object
    label: object
    source: str  # "oracle" | "weak"
    round_index: int


class LabelQueue:
    """The cumulative labeled set, keyed by ``(stream_id, unit_index)``."""

    def __init__(self) -> None:
        self._examples: "OrderedDict[tuple, LabeledExample]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._examples)

    def __contains__(self, key: tuple) -> bool:
        return key in self._examples

    @property
    def n_oracle(self) -> int:
        return sum(1 for e in self._examples.values() if e.source == "oracle")

    @property
    def n_weak(self) -> int:
        return sum(1 for e in self._examples.values() if e.source == "weak")

    def examples(self) -> list:
        """``(sample, label)`` pairs in ledger order — the retrain input."""
        return [(e.sample, e.label) for e in self._examples.values()]

    def entries(self) -> list:
        """The full :class:`LabeledExample` ledger, in order."""
        return list(self._examples.values())

    # ------------------------------------------------------------------
    def submit_oracle(self, candidates: list, model, round_index: int) -> list:
        """Label candidates through the oracle; returns the new entries.

        An oracle label replaces an earlier weak label for the same key
        in place; a candidate already oracle-labeled is skipped (no
        double spend).
        """
        added = []
        for candidate in candidates:
            existing = self._examples.get(candidate.key)
            if existing is not None and existing.source == "oracle":
                continue
            entry = LabeledExample(
                key=candidate.key,
                sample=candidate.sample,
                label=model.oracle_label(candidate.sample),
                source="oracle",
                round_index=round_index,
            )
            # Reassigning an existing key keeps its ledger position, so a
            # weak→oracle upgrade does not reorder the retrain input.
            self._examples[candidate.key] = entry
            added.append(entry)
        return added

    def submit_weak(self, candidates: list, model, round_index: int) -> list:
        """Pseudo-label candidates via consistency weak supervision.

        Candidates are grouped per stream in unit order (so temporal
        corrections see a coherent sub-stream); keys already labeled are
        skipped; ``None`` pseudo-labels are dropped.
        """
        fresh = [c for c in candidates if c.key not in self._examples]
        by_stream: "OrderedDict[str, list]" = OrderedDict()
        for candidate in fresh:
            by_stream.setdefault(candidate.stream_id, []).append(candidate)
        added = []
        for group in by_stream.values():
            group = sorted(group, key=lambda c: c.unit_index)
            labels = model.weak_labels(
                [c.sample for c in group], [c.raw for c in group]
            )
            for candidate, label in zip(group, labels):
                if label is None:
                    continue
                entry = LabeledExample(
                    key=candidate.key,
                    sample=candidate.sample,
                    label=label,
                    source="weak",
                    round_index=round_index,
                )
                self._examples[candidate.key] = entry
                added.append(entry)
        return added

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-encodable checkpoint of the full ledger."""
        return {
            "format": LABEL_QUEUE_FORMAT,
            "entries": [
                {
                    "key": to_jsonable(e.key),
                    "sample": to_jsonable(e.sample),
                    "label": to_jsonable(e.label),
                    "source": e.source,
                    "round_index": e.round_index,
                }
                for e in self._examples.values()
            ],
        }

    def restore(self, payload: dict) -> None:
        """Replace the ledger with a :meth:`snapshot` payload."""
        fmt = payload.get("format")
        if fmt != LABEL_QUEUE_FORMAT:
            raise ValueError(
                f"unsupported label-queue snapshot format {fmt!r} "
                f"(expected {LABEL_QUEUE_FORMAT})"
            )
        self._examples = OrderedDict()
        for row in payload["entries"]:
            entry = LabeledExample(
                key=from_jsonable(row["key"]),
                sample=from_jsonable(row["sample"]),
                label=from_jsonable(row["label"]),
                source=row["source"],
                round_index=int(row["round_index"]),
            )
            self._examples[entry.key] = entry
