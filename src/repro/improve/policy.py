"""``SelectionPolicy``: pluggable label selection over the fired pool.

A thin, checkpointable wrapper around the §5.4 strategies: ``random``
(uniform over the pool), ``uniform`` (uniform over assertion-flagged
points, the paper's "uniform MA"), and ``bal`` (the Algorithm 2 bandit,
reusing :mod:`repro.core.bal` — marginal fire-count reductions as the
posterior signal, ε-greedy exploration, severity-rank weighting within
an assertion).

The wrapper's job is operational: one name-keyed constructor for the
CLI, and ``get_state``/``set_state`` that captures the strategy's
cross-round state (bandit posteriors, generator positions) so a resumed
improvement loop picks bit-identically to an uninterrupted one.
"""

from __future__ import annotations

import numpy as np

from repro.core.strategies import (
    BALStrategy,
    RandomStrategy,
    SelectionContext,
    UniformAssertionStrategy,
)

#: CLI-facing policy names, in display order.
POLICY_NAMES = ("random", "uniform", "bal")


class SelectionPolicy:
    """One labeling round's point picker (see the module docstring).

    Parameters
    ----------
    name:
        ``"random"`` | ``"uniform"`` | ``"bal"``.
    seed:
        Seed for the strategy's own stream (derive it from the loop's
        root seed so runs are reproducible).
    fallback:
        BAL's baseline when every assertion has stalled (``"random"`` or
        ``"uncertainty"``); ignored by the other policies.
    """

    def __init__(
        self,
        name: str,
        *,
        seed: "int | None" = None,
        fallback: str = "random",
    ) -> None:
        if name not in POLICY_NAMES:
            raise ValueError(
                f"unknown policy {name!r}; choose from {', '.join(POLICY_NAMES)}"
            )
        self.name = name
        if name == "random":
            self.strategy = RandomStrategy(seed=seed)
        elif name == "uniform":
            self.strategy = UniformAssertionStrategy(seed=seed)
        else:
            self.strategy = BALStrategy(seed=seed, fallback=fallback)

    def select(
        self,
        severities: np.ndarray,
        uncertainty: np.ndarray,
        budget: int,
        *,
        round_index: int,
    ) -> np.ndarray:
        """Pick up to ``budget`` pool indices for labeling this round.

        ``severities`` is the ``(n, d)`` assertion matrix over the
        *unlabeled* candidate pool (the loop removes labeled candidates),
        so the whole pool is selectable.
        """
        severities = np.asarray(severities, dtype=np.float64)
        ctx = SelectionContext(
            severities=severities,
            uncertainty=np.asarray(uncertainty, dtype=np.float64),
            labeled_mask=np.zeros(severities.shape[0], dtype=bool),
            round_index=round_index,
        )
        return np.asarray(self.strategy.select(ctx, budget), dtype=np.intp)

    def reset(self) -> None:
        self.strategy.reset()

    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """JSON-encodable checkpoint (policy name + strategy state)."""
        return {"name": self.name, "strategy": self.strategy.get_state()}

    def set_state(self, payload: dict) -> None:
        """Restore :meth:`get_state` output into a same-named policy."""
        if payload.get("name") != self.name:
            raise ValueError(
                f"state is for policy {payload.get('name')!r}, this policy "
                f"is {self.name!r}"
            )
        self.strategy.set_state(payload["strategy"])
