"""``FireStore``: durable accumulation of a serving fleet's assertion fires.

The improvement loop's raw material is the stream of
:class:`~repro.serve.service.StreamFire` records a
:class:`~repro.serve.MonitorService` dispatches. This store keeps them
per stream in a bounded ring (old fires age out; totals keep counting),
and serializes losslessly through :mod:`repro.utils.codec` so a resumed
loop sees exactly the fire history the interrupted one had.

``store.add`` has the ``on_fire`` hook signature, so wiring is one line:

>>> service.on_fire(store.add)                        # doctest: +SKIP
"""

from __future__ import annotations

from collections import OrderedDict, deque

from repro.serve.service import StreamFire
from repro.utils.codec import from_jsonable, to_jsonable

#: Version tag of the :meth:`FireStore.snapshot` payload layout.
FIRE_STORE_FORMAT = 1


class FireStore:
    """Ring-buffered, per-stream accumulation of :class:`StreamFire` s.

    Parameters
    ----------
    max_per_stream:
        Retained fires per stream (the ring bound); ``None`` = unbounded.
        Totals (:attr:`n_seen`, :meth:`seen_counts`) count every fire
        ever added, including ones the ring has dropped.
    """

    def __init__(self, max_per_stream: "int | None" = 256) -> None:
        if max_per_stream is not None and max_per_stream < 1:
            raise ValueError(f"max_per_stream must be >= 1, got {max_per_stream}")
        self.max_per_stream = max_per_stream
        self._fires: "OrderedDict[str, deque]" = OrderedDict()
        self._seen: "OrderedDict[str, int]" = OrderedDict()

    # ------------------------------------------------------------------
    def add(self, fire: StreamFire) -> None:
        """Record one fire (usable directly as an ``on_fire`` hook)."""
        ring = self._fires.get(fire.stream_id)
        if ring is None:
            ring = self._fires[fire.stream_id] = deque(maxlen=self.max_per_stream)
            self._seen[fire.stream_id] = 0
        ring.append(fire.record)
        self._seen[fire.stream_id] += 1

    def stream_ids(self) -> list:
        """Streams that ever fired, in first-fire order."""
        return list(self._fires)

    def fires(self, stream_id: str) -> list:
        """Retained :class:`~repro.core.types.AssertionRecord` s for one
        stream, oldest first (empty when the stream never fired)."""
        return list(self._fires.get(stream_id, ()))

    def all_fires(self) -> list:
        """Retained fires fleet-wide as ``StreamFire`` s, stream-major."""
        return [
            StreamFire(stream_id, record)
            for stream_id, ring in self._fires.items()
            for record in ring
        ]

    def __len__(self) -> int:
        """Retained fires fleet-wide."""
        return sum(len(ring) for ring in self._fires.values())

    @property
    def n_seen(self) -> int:
        """Fires ever added, including ring-dropped ones."""
        return sum(self._seen.values())

    def seen_counts(self) -> dict:
        """Stream id → fires ever added on that stream."""
        return dict(self._seen)

    def fire_counts(self) -> dict:
        """Assertion name → retained fire count, fleet-wide."""
        counts: dict = {}
        for ring in self._fires.values():
            for record in ring:
                counts[record.assertion_name] = counts.get(record.assertion_name, 0) + 1
        return counts

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-encodable checkpoint (codec-encoded fire records)."""
        return {
            "format": FIRE_STORE_FORMAT,
            "max_per_stream": self.max_per_stream,
            "streams": [
                [
                    stream_id,
                    {
                        "seen": self._seen[stream_id],
                        "fires": [to_jsonable(record) for record in ring],
                    },
                ]
                for stream_id, ring in self._fires.items()
            ],
        }

    def restore(self, payload: dict) -> None:
        """Replace contents with a :meth:`snapshot` payload."""
        fmt = payload.get("format")
        if fmt != FIRE_STORE_FORMAT:
            raise ValueError(
                f"unsupported fire-store snapshot format {fmt!r} "
                f"(expected {FIRE_STORE_FORMAT})"
            )
        max_per_stream = payload["max_per_stream"]
        if max_per_stream != self.max_per_stream:
            raise ValueError(
                f"snapshot was taken with max_per_stream={max_per_stream}, "
                f"this store uses {self.max_per_stream}"
            )
        self._fires = OrderedDict()
        self._seen = OrderedDict()
        for stream_id, entry in payload["streams"]:
            ring = deque(
                (from_jsonable(record) for record in entry["fires"]),
                maxlen=self.max_per_stream,
            )
            self._fires[stream_id] = ring
            self._seen[stream_id] = int(entry["seen"])

    @classmethod
    def from_snapshot(cls, payload: dict) -> "FireStore":
        """Build a store sized like the payload and restore into it."""
        store = cls(max_per_stream=payload.get("max_per_stream", 256))
        store.restore(payload)
        return store
