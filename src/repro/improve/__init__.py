"""Closed-loop model improvement over the serving fleet (§3, §4.2).

The paper's second contribution — assertion fires *improving* models via
bandit-driven active learning and consistency weak supervision — as a
running subsystem on top of :mod:`repro.serve`:

fires (:class:`FireStore`) → selection (:class:`SelectionPolicy`) →
labels (:class:`LabelQueue`) → retraining (:class:`RetrainWorker`) →
versioned hot-swap (:class:`ModelRegistry`), orchestrated by
:class:`ImprovementLoop` with full snapshot/resume.

CLI entry point: ``python -m repro improve DOMAIN --rounds R --budget B
--policy bal|random|uniform``; worked example in
``examples/closed_loop_improvement.py``.
"""

from repro.improve.fires import FIRE_STORE_FORMAT, FireStore
from repro.improve.labeling import Candidate, LabeledExample, LabelQueue
from repro.improve.loop import (
    IMPROVE_SNAPSHOT_FORMAT,
    ImproveConfig,
    ImprovementLoop,
    ImproveResult,
    ImproveRound,
)
from repro.improve.models import ModelRegistry, ModelVersion
from repro.improve.policy import POLICY_NAMES, SelectionPolicy
from repro.improve.snapshot import (
    load_improvement_loop,
    load_loop_payload,
    save_loop_snapshot,
)
from repro.improve.worker import RetrainWorker, retrain_once

__all__ = [
    "FIRE_STORE_FORMAT",
    "FireStore",
    "Candidate",
    "LabeledExample",
    "LabelQueue",
    "IMPROVE_SNAPSHOT_FORMAT",
    "ImproveConfig",
    "ImprovementLoop",
    "ImproveResult",
    "ImproveRound",
    "ModelRegistry",
    "ModelVersion",
    "POLICY_NAMES",
    "SelectionPolicy",
    "RetrainWorker",
    "retrain_once",
    "load_improvement_loop",
    "load_loop_payload",
    "save_loop_snapshot",
]
