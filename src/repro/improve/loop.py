"""The closed improvement loop: monitor → select → label → retrain → swap.

One :class:`ImprovementLoop` turns a :class:`~repro.serve.MonitorService`
fleet into the paper's full lifecycle. Each round:

1. **stream** — every stream's sensor yields ``items_per_round`` raw
   samples; the *current* model version predicts on them; the fleet
   ingests the predictions, and fresh fires land in the
   :class:`~repro.improve.fires.FireStore` and accumulate into
   per-unit severity vectors on the candidate pool;
2. **select** — the :class:`~repro.improve.policy.SelectionPolicy`
   (random / uniform-assertion / BAL bandit) picks up to ``budget``
   candidates from the unlabeled pool;
3. **label** — picks go to the oracle; with ``weak=True`` the remaining
   fired candidates get consistency pseudo-labels
   (:class:`~repro.improve.labeling.LabelQueue`);
4. **retrain** — the :class:`~repro.improve.worker.RetrainWorker`
   fine-tunes the current version on the cumulative ledger (inline or in
   a background process, bit-identically);
5. **hot-swap** — the result is published to the
   :class:`~repro.improve.models.ModelRegistry` and *adopted* at the
   ``swap_tick`` raw-unit boundary of the next round's stream phase:
   predictions switch to the new weights mid-stream while every
   session's evaluator state (rolling windows, temporal runs, trackers)
   carries over untouched.

Determinism contract: the whole loop is a pure function of
``ImproveConfig`` — serial and ``jobs>1`` retraining, and
snapshot → resume versus uninterrupted runs, produce bit-identical label
picks, bandit posteriors, model weights, and metrics
(``tests/improve/test_loop.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.seeding import derive_seed
from repro.domains.registry import get_domain
from repro.improve.fires import FireStore
from repro.improve.labeling import Candidate, LabelQueue
from repro.improve.models import ModelRegistry
from repro.improve.policy import POLICY_NAMES, SelectionPolicy
from repro.improve.worker import RetrainWorker
from repro.serve import MonitorService, ServiceConfig
from repro.utils.codec import register_result_type

#: Version tag of the :meth:`ImprovementLoop.snapshot` payload layout.
IMPROVE_SNAPSHOT_FORMAT = 1


@register_result_type
@dataclass(frozen=True)
class ImproveConfig:
    """Everything an improvement loop run depends on.

    Attributes
    ----------
    domain:
        A retrainable registered domain (``ecg`` or ``video`` built in).
    policy:
        ``"bal"`` | ``"random"`` | ``"uniform"`` — the selection policy.
    n_streams:
        Keyed streams served concurrently (each its own seeded sensor).
    items_per_round:
        Raw units ingested per stream per round before selection.
    budget:
        Oracle labels per round (the human-labeling budget ``B_t``).
    n_rounds:
        Default round count for :meth:`ImprovementLoop.run`.
    seed:
        Root seed; every stream, the model bootstrap, and the policy
        derive independent child streams from it.
    jobs:
        ``1`` retrains inline; ``>1`` retrains in a background process
        (bit-identical results either way).
    swap_tick:
        Raw-unit boundary (0-based, within a round's stream phase) at
        which a pending model version is adopted. ``0`` swaps before the
        round's first unit; larger values demonstrate a genuinely
        mid-stream swap. Must be < ``items_per_round``.
    weak:
        Also pseudo-label fired-but-unselected candidates through
        consistency weak supervision (zero label cost).
    weak_cap:
        Pseudo-labels per round when ``weak`` is on.
    fallback:
        BAL's baseline when every assertion stalls (``random`` |
        ``uncertainty``).
    max_pool:
        Bound on the unlabeled candidate pool (oldest dropped); ``None``
        = unbounded.
    fires_per_stream:
        :class:`FireStore` ring bound per stream.
    max_versions:
        :class:`ModelRegistry` ring bound; ``None`` = keep all.
    suite:
        Optional declarative :class:`~repro.core.spec.AssertionSuite`
        the fleet monitors with instead of the domain's built-in set
        (what ``python -m repro improve --suite FILE`` loads). Must
        target the loop's domain. The suite rides along in loop
        snapshots like every other config field.
    """

    domain: str = "ecg"
    policy: str = "bal"
    n_streams: int = 2
    items_per_round: int = 8
    budget: int = 8
    n_rounds: int = 5
    seed: int = 0
    jobs: int = 1
    swap_tick: int = 0
    weak: bool = False
    weak_cap: int = 64
    fallback: str = "random"
    max_pool: "int | None" = None
    fires_per_stream: int = 256
    max_versions: "int | None" = None
    suite: "object | None" = None

    def __post_init__(self) -> None:
        if self.suite is not None and self.suite.domain and self.suite.domain != self.domain:
            raise ValueError(
                f"suite {self.suite.name!r} targets domain "
                f"{self.suite.domain!r}, not {self.domain!r}"
            )
        if self.policy not in POLICY_NAMES:
            raise ValueError(
                f"policy must be one of {', '.join(POLICY_NAMES)}, got {self.policy!r}"
            )
        for name in ("n_streams", "items_per_round", "n_rounds", "jobs"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.budget < 0:
            raise ValueError(f"budget must be >= 0, got {self.budget}")
        if not 0 <= self.swap_tick < self.items_per_round:
            raise ValueError(
                f"swap_tick must be in [0, items_per_round), got {self.swap_tick}"
            )


@register_result_type
@dataclass
class ImproveRound:
    """Telemetry for one completed round."""

    round_index: int
    version_start: int
    version_end: int
    n_units: int = 0
    n_items: int = 0
    n_fires: int = 0
    n_selected: int = 0
    n_oracle_new: int = 0
    n_weak_new: int = 0
    pool_size: int = 0

    @property
    def fires_per_item(self) -> float:
        return self.n_fires / self.n_items if self.n_items else 0.0


@register_result_type
@dataclass
class ImproveResult:
    """Outcome of a full :meth:`ImprovementLoop.run`."""

    domain: str
    policy: str
    budget: int
    metric_name: str
    initial_metric: float
    rounds: list = field(default_factory=list)
    #: ``(version, metric, round_index)`` for every published version.
    versions: list = field(default_factory=list)
    n_labeled: int = 0
    n_weak: int = 0

    @property
    def final_metric(self) -> float:
        """Metric of the newest published version."""
        return self.versions[-1][1] if self.versions else self.initial_metric

    @property
    def fires_per_item_curve(self) -> list:
        return [r.fires_per_item for r in self.rounds]

    def format_table(self) -> str:
        from repro.utils.tables import format_table

        metric_of = {round_index: metric for _v, metric, round_index in self.versions}
        rows = []
        for r in self.rounds:
            rows.append(
                (
                    r.round_index,
                    f"v{r.version_start}" + (
                        f"→v{r.version_end}" if r.version_end != r.version_start else ""
                    ),
                    r.n_items,
                    r.n_fires,
                    f"{r.fires_per_item:.3f}",
                    r.n_oracle_new,
                    r.n_weak_new,
                    (
                        f"{metric_of[r.round_index]:.2f}"
                        if r.round_index in metric_of
                        else "-"
                    ),
                )
            )
        title = (
            f"Improvement loop — {self.domain!r}, policy {self.policy!r}, "
            f"budget {self.budget}/round "
            f"(pretrained {self.metric_name} = {self.initial_metric:.2f})"
        )
        return format_table(
            ["Round", "Model", "Items", "Fires", "Fires/item", "Oracle", "Weak",
             f"New {self.metric_name}"],
            rows,
            title=title,
        )


class ImprovementLoop:
    """Drive the closed loop over a serving fleet (see module docstring).

    Parameters
    ----------
    config:
        The run's :class:`ImproveConfig`.
    domain_config:
        Optional domain config dataclass (must be picklable when
        ``jobs > 1``); ``None`` = the domain's defaults.
    """

    def __init__(self, config: ImproveConfig, *, domain_config=None) -> None:
        self._init_shell(config, domain_config)
        self.adapter = self.domain.retrainable(
            derive_seed(config.seed, "improve", "model"), bootstrap=True
        )
        state = self.adapter.get_state()
        self.initial_metric = self._evaluate(state)
        self.adopted_version = self.registry.publish(
            state, metric=self.initial_metric, round_index=-1
        )

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def stream_ids(self) -> list:
        return [f"{self.config.domain}-{k}" for k in range(self.config.n_streams)]

    def _sample_iterator(self, position: int, replay: int):
        sensor = self.domain.build_sensor(
            derive_seed(self.config.seed, "improve", "sensor", position)
        )
        iterator = self.domain.iter_samples(sensor)
        for _ in range(replay):  # deterministic fast-forward on resume
            next(iterator)
        return iterator

    def _ensure_samples(self) -> None:
        if self._samples:
            return
        for position, stream_id in enumerate(self.stream_ids()):
            self._samples[stream_id] = self._sample_iterator(
                position, self._unit_counts.get(stream_id, 0)
            )

    # ------------------------------------------------------------------
    # Model versions
    # ------------------------------------------------------------------
    def _evaluate(self, state: dict) -> float:
        self._evaluator.set_state(state)
        return float(self._evaluator.evaluate())

    def _collect_retrain(self) -> None:
        """Join an outstanding retrain; publish (not adopt) the result."""
        if self._future is None:
            return
        state = self._future.result()
        self._future = None
        self._pending_version = self.registry.publish(
            state,
            metric=self._evaluate(state),
            round_index=self.round_index - 1,
        )

    def _adopt_pending(self) -> None:
        """Hot-swap: serving predictions move to the pending version.

        Called at a raw-unit boundary; monitor/evaluator state in every
        stream session is untouched, which is what makes the swap
        invisible to the monitoring output (see the hot-swap test).
        """
        if self._pending_version is None:
            return
        self.adapter.set_state(self.registry.get(self._pending_version).state)
        self.adopted_version = self._pending_version
        self._pending_version = None

    def _submit_retrain(self) -> None:
        """Kick off fine-tuning on the grown ledger (skip when unchanged)."""
        if len(self.queue) == 0 or len(self.queue) == self._ledger_size_at_submit:
            return
        self._ledger_size_at_submit = len(self.queue)
        self._future = self._worker.submit(
            self.adapter.get_state(), self.queue.examples()
        )

    # ------------------------------------------------------------------
    # Round phases
    # ------------------------------------------------------------------
    def _attribute_fires(self, fires: list) -> int:
        """Fold fresh fires into pool candidates' severity vectors.

        Temporal assertions attribute severity retroactively (a flicker
        fire lands on the gap item); the fire's ``item_index`` finds the
        unit that contained the item. Units already labeled or aged out
        of the pool absorb nothing (the :class:`FireStore` still counts
        every fire).
        """
        name_index = {name: i for i, name in enumerate(self.assertion_names)}
        for fire in fires:
            column = name_index[fire.record.assertion_name]
            for candidate in reversed(self._by_stream.get(fire.stream_id, ())):
                if candidate.contains_item(fire.record.item_index):
                    candidate.severity[column] += fire.record.severity
                    break
                if candidate.item_stop <= fire.record.item_index:
                    break  # older candidates end even earlier
        return len(fires)

    def _drop_from_pool(self, candidates: list) -> None:
        keys = {c.key for c in candidates}
        self._pool = [c for c in self._pool if c.key not in keys]
        for stream_id in {c.stream_id for c in candidates}:
            self._by_stream[stream_id] = [
                c for c in self._by_stream.get(stream_id, []) if c.key not in keys
            ]

    def _enforce_pool_bound(self) -> None:
        limit = self.config.max_pool
        if limit is None or len(self._pool) <= limit:
            return
        self._drop_from_pool(self._pool[: len(self._pool) - limit])

    def _stream_phase(self, report: ImproveRound) -> None:
        self._ensure_samples()
        stream_ids = self.stream_ids()
        items_before = sum(
            self.service.session(sid).n_items for sid in stream_ids
        )
        for tick in range(self.config.items_per_round):
            if tick == self.config.swap_tick:
                self._adopt_pending()
            pairs = []
            fresh: list = []
            for stream_id in stream_ids:
                sample = next(self._samples[stream_id])
                raw = self.adapter.predict_raw(sample)
                session = self.service.session(stream_id)
                candidate = Candidate(
                    stream_id=stream_id,
                    unit_index=self._unit_counts.get(stream_id, 0),
                    item_start=session.n_items,
                    item_stop=session.n_items,  # filled after ingest
                    sample=sample,
                    raw=raw,
                    severity=np.zeros(len(self.assertion_names), dtype=np.float64),
                    uncertainty=float(self.adapter.uncertainty(sample, raw)),
                    round_index=self.round_index,
                )
                self._unit_counts[stream_id] = candidate.unit_index + 1
                pairs.append((stream_id, raw))
                fresh.append(candidate)
            fires = self.service.ingest_batch(pairs)
            for candidate in fresh:
                candidate.item_stop = self.service.session(
                    candidate.stream_id
                ).n_items
                self._pool.append(candidate)
                self._by_stream.setdefault(candidate.stream_id, []).append(candidate)
            report.n_fires += self._attribute_fires(fires)
            report.n_units += len(pairs)
        self._enforce_pool_bound()
        report.n_items = (
            sum(self.service.session(sid).n_items for sid in stream_ids)
            - items_before
        )

    def _select_phase(self) -> list:
        if not self._pool or self.config.budget == 0:
            return []
        severities = np.stack([c.severity for c in self._pool])
        uncertainty = np.asarray([c.uncertainty for c in self._pool])
        picked = self.policy.select(
            severities, uncertainty, self.config.budget,
            round_index=self.round_index,
        )
        return [self._pool[i] for i in picked]

    def _label_phase(self, selected: list, report: ImproveRound) -> None:
        oracle_added = self.queue.submit_oracle(
            selected, self.adapter, self.round_index
        )
        self._drop_from_pool(selected)
        report.n_selected = len(selected)
        report.n_oracle_new = len(oracle_added)
        if self.config.weak and self.config.weak_cap > 0:
            fired = [
                c
                for c in self._pool
                if c.severity.sum() > 0 and c.key not in self._weak_seen
            ][: self.config.weak_cap]
            weak_added = self.queue.submit_weak(fired, self.adapter, self.round_index)
            self._weak_seen.update(c.key for c in fired)
            report.n_weak_new = len(weak_added)

    # ------------------------------------------------------------------
    # Public driving API
    # ------------------------------------------------------------------
    def run_round(self) -> ImproveRound:
        """One full monitor → select → label → retrain round."""
        self._collect_retrain()
        report = ImproveRound(
            round_index=self.round_index,
            version_start=self.adopted_version,
            version_end=self.adopted_version,
        )
        self._stream_phase(report)
        report.version_end = self.adopted_version
        selected = self._select_phase()
        self._label_phase(selected, report)
        self._submit_retrain()
        report.pool_size = len(self._pool)
        self.rounds.append(report)
        self.round_index += 1
        return report

    def finish(self) -> None:
        """Join and publish any outstanding retrain (adoption stays
        scheduled for the next stream phase, exactly as in an
        uninterrupted run)."""
        self._collect_retrain()

    def run(self, n_rounds: "int | None" = None) -> ImproveResult:
        """Run ``n_rounds`` (default: the config's) rounds and finish."""
        for _ in range(n_rounds if n_rounds is not None else self.config.n_rounds):
            self.run_round()
        self.finish()
        return self.result()

    def result(self) -> ImproveResult:
        """The run's telemetry as one codec-serializable object."""
        return ImproveResult(
            domain=self.config.domain,
            policy=self.config.policy,
            budget=self.config.budget,
            metric_name=self.adapter.metric_name,
            initial_metric=self.initial_metric,
            rounds=list(self.rounds),
            versions=self.registry.history(),
            n_labeled=self.queue.n_oracle,
            n_weak=self.queue.n_weak,
        )

    def close(self) -> None:
        """Release the retrain worker's process pool, if any."""
        self._worker.close()

    def __enter__(self) -> "ImprovementLoop":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Checkpoint the *entire* loop as one JSON payload.

        Covers the serving fleet (monitor state per stream), the fire
        store, the bandit/policy state, the labeled ledger, the candidate
        pool, every retained model version, and the adoption bookkeeping.
        An outstanding retrain is joined first, so the payload never
        loses an in-flight model.
        """
        self._collect_retrain()
        from repro.utils.codec import to_jsonable

        try:
            domain_config = to_jsonable(self._domain_config)
        except TypeError:
            raise ValueError(
                f"domain_config {type(self._domain_config).__name__} is not "
                "codec-registered; decorate it with @register_result_type so "
                "a resumed loop can rebuild the same domain"
            ) from None
        return {
            "format": IMPROVE_SNAPSHOT_FORMAT,
            "config": to_jsonable(self.config),
            "domain_config": domain_config,
            "round_index": self.round_index,
            "service": self.service.snapshot(),
            "fires": self.fire_store.snapshot(),
            # Policy and model states hold live ndarrays (fast in
            # process); the snapshot boundary is where they become JSON.
            "policy": to_jsonable(self.policy.get_state()),
            "queue": self.queue.snapshot(),
            "pool": [c.to_payload() for c in self._pool],
            "registry": to_jsonable(self.registry.snapshot()),
            # The serving weights, verbatim: the registry ring may have
            # dropped the adopted version, so it is persisted explicitly.
            "adapter_state": to_jsonable(self.adapter.get_state()),
            "adopted_version": self.adopted_version,
            "pending_version": self._pending_version,
            "ledger_size_at_submit": self._ledger_size_at_submit,
            "unit_counts": dict(self._unit_counts),
            "weak_seen": [to_jsonable(key) for key in sorted(self._weak_seen)],
            "rounds": [to_jsonable(r) for r in self.rounds],
            "initial_metric": self.initial_metric,
        }

    def restore(self, payload: dict) -> None:
        """Resume from a :meth:`snapshot` payload (same config required)."""
        from repro.utils.codec import from_jsonable

        fmt = payload.get("format")
        if fmt != IMPROVE_SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported improvement-loop snapshot format {fmt!r} "
                f"(expected {IMPROVE_SNAPSHOT_FORMAT})"
            )
        config = from_jsonable(payload["config"])
        if config != self.config:
            raise ValueError(
                f"snapshot was taken with config {config}, this loop runs "
                f"{self.config}; build the loop from the snapshot's config"
            )
        domain_config = from_jsonable(payload["domain_config"])
        if domain_config != self._domain_config:
            raise ValueError(
                f"snapshot was taken with domain_config {domain_config!r}, "
                f"this loop was built with {self._domain_config!r}; pass the "
                "snapshot's domain config (from_snapshot does this for you)"
            )
        self.round_index = int(payload["round_index"])
        self.service.restore(payload["service"])
        self.fire_store.restore(payload["fires"])
        self.policy.set_state(from_jsonable(payload["policy"]))
        self.queue.restore(payload["queue"])
        self.registry.restore(from_jsonable(payload["registry"]))
        self._pool = [Candidate.from_payload(row) for row in payload["pool"]]
        self._by_stream = {}
        for candidate in self._pool:
            self._by_stream.setdefault(candidate.stream_id, []).append(candidate)
        self.adopted_version = int(payload["adopted_version"])
        pending = payload["pending_version"]
        self._pending_version = None if pending is None else int(pending)
        self._ledger_size_at_submit = int(payload["ledger_size_at_submit"])
        self._unit_counts = {
            sid: int(count) for sid, count in payload["unit_counts"].items()
        }
        self._weak_seen = {from_jsonable(key) for key in payload["weak_seen"]}
        self.rounds = [from_jsonable(row) for row in payload["rounds"]]
        self.initial_metric = float(payload["initial_metric"])
        # Serving weights come from the explicit payload, not the
        # registry: a max_versions ring may have dropped the adopted
        # version while newer (pending) ones were published.
        self.adapter.set_state(from_jsonable(payload["adapter_state"]))
        self._future = None
        self._samples = {}  # rebuilt (with replay) on the next stream phase

    @classmethod
    def from_snapshot(cls, payload: dict, *, domain_config=None) -> "ImprovementLoop":
        """Build a loop for the payload's config and restore into it.

        Skips the bootstrap training an ordinary constructor performs —
        the snapshot carries every model version already.
        """
        from repro.utils.codec import from_jsonable

        config = from_jsonable(payload.get("config"))
        if not isinstance(config, ImproveConfig):
            raise ValueError("not an improvement-loop snapshot (no config)")
        if domain_config is None and payload.get("domain_config") is not None:
            domain_config = from_jsonable(payload["domain_config"])
        loop = cls.__new__(cls)
        loop._init_shell(config, domain_config)
        loop.adapter = loop.domain.retrainable(
            derive_seed(config.seed, "improve", "model"), bootstrap=False
        )
        loop.restore(payload)
        return loop

    def _init_shell(self, config: ImproveConfig, domain_config) -> None:
        """Constructor minus bootstrap training (the restore path)."""
        self.config = config
        self.domain = get_domain(config.domain, domain_config)
        self._domain_config = domain_config
        seed = config.seed
        self.service = MonitorService(
            self.domain,
            config=ServiceConfig(snapshot_on_evict=True),
            suite=config.suite,
        )
        self.fire_store = FireStore(max_per_stream=config.fires_per_stream)
        self.service.on_fire(self.fire_store.add)
        if config.suite is not None:
            self.assertion_names = list(config.suite.assertion_names())
        else:
            self.assertion_names = list(self.domain.build_monitor().database.names())
        self.policy = SelectionPolicy(
            config.policy,
            seed=derive_seed(seed, "improve", "policy"),
            fallback=config.fallback,
        )
        self.queue = LabelQueue()
        self.registry = ModelRegistry(max_versions=config.max_versions)
        self._worker = RetrainWorker(
            config.domain,
            domain_config,
            seed=derive_seed(seed, "improve", "model"),
            jobs=config.jobs,
        )
        #: Evaluation shell: versions are scored on the domain's held-out
        #: set without touching the serving weights.
        self._evaluator = self.domain.retrainable(
            derive_seed(seed, "improve", "model"), bootstrap=False
        )
        #: The serving model; each construction path binds its own
        #: (bootstrap-trained in __init__, a bare shell in from_snapshot).
        self.adapter = None
        self.round_index = 0
        self.rounds = []
        self._pool = []  # unlabeled Candidates, arrival order
        self._by_stream = {}  # stream_id -> pool candidates, unit order
        self._weak_seen = set()  # keys already routed to weak labeling
        self._unit_counts = {}  # stream_id -> raw units ever ingested
        self._samples = {}  # stream_id -> live sample iterator
        self._future = None  # outstanding retrain, if any
        self._pending_version = None  # published, not yet adopted
        self._ledger_size_at_submit = 0
        self.adopted_version = 0
        self.initial_metric = 0.0
