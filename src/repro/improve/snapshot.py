"""File persistence for :class:`~repro.improve.ImprovementLoop` snapshots.

A loop snapshot is plain JSON-encodable primitives (model states and
policy arrays are codec-encoded at the snapshot boundary), so
persistence is ``json`` plus a header check, with atomic writes — the
same contract :mod:`repro.serve.snapshot` gives fleet snapshots.
"""

from __future__ import annotations

from repro.improve.loop import IMPROVE_SNAPSHOT_FORMAT, ImprovementLoop
from repro.utils.io import atomic_write_json, read_json


def save_loop_snapshot(loop: ImprovementLoop, path: str) -> dict:
    """Snapshot ``loop`` and write it to ``path`` atomically.

    Joins any outstanding retrain first (see
    :meth:`ImprovementLoop.snapshot`). Returns the written payload.
    """
    payload = loop.snapshot()
    atomic_write_json(payload, path)
    return payload


def load_loop_payload(path: str) -> dict:
    """Read and validate an improvement-loop snapshot payload."""
    payload = read_json(path)
    if (
        not isinstance(payload, dict)
        or payload.get("format") != IMPROVE_SNAPSHOT_FORMAT
        or "config" not in payload
        or "registry" not in payload
    ):
        raise ValueError(
            f"{path} is not an improvement-loop snapshot "
            f"(format {IMPROVE_SNAPSHOT_FORMAT} with config/registry)"
        )
    return payload


def load_improvement_loop(path: str, *, domain_config=None) -> ImprovementLoop:
    """Rebuild a loop (fleet, ledger, versions, bandit) from a snapshot."""
    return ImprovementLoop.from_snapshot(
        load_loop_payload(path), domain_config=domain_config
    )
