"""The traffic world: a synthetic ``night-street`` video.

The paper's video-analytics experiments run an SSD vehicle detector on the
``night-street`` (jackson) webcam feed. This simulator generates the
equivalent: a fixed street camera watching multi-lane traffic, rendered as
low-resolution grayscale frames with exact per-frame ground-truth boxes.

The generator supports two appearance profiles:

- ``"day"`` — bright, high-contrast vehicles, no glare. Used to bootstrap
  ("pretrain") the detector, playing the role of MS-COCO still images.
- ``"night"`` — dim vehicles with a wide brightness spread, headlight
  glare blobs, road reflections, and more sensor noise. Used as the
  deployment distribution.

The day→night shift is what makes the pretrained detector exhibit the
paper's systematic errors: dim vehicles hover at the score threshold and
*flicker*; glare produces short-lived spurious detections (*appear*);
and wide vehicles fracture into overlapping duplicates (*multibox*).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.geometry.box2d import Box2D, make_box
from repro.utils.codec import register_result_type
from repro.utils.rng import as_generator
from repro.worlds import rendering

#: Vehicle classes present in the world (confusable sizes on purpose:
#: Table 6 needs human labelers to make occasional class mistakes).
VEHICLE_CLASSES = ("car", "truck")


@register_result_type
@dataclass(frozen=True)
class VehicleState:
    """Ground-truth state of one vehicle in one frame."""

    object_id: int
    label: str
    box: Box2D
    speed: float
    brightness: float
    direction: int  # +1 rightward, -1 leftward


@register_result_type
@dataclass(frozen=True)
class TrafficFrame:
    """One rendered frame plus its ground truth."""

    index: int
    timestamp: float
    image: np.ndarray
    vehicles: tuple

    @property
    def ground_truth(self) -> list:
        """Ground-truth boxes with class labels (score 1.0)."""
        return [v.box.with_label(v.label) for v in self.vehicles]


@register_result_type
@dataclass(frozen=True)
class TrafficWorldConfig:
    """Tunable parameters of the street scene.

    The defaults are calibrated so that a detector bootstrapped on ~40
    day frames lands in the mid-30s mAP% on night video (paper Table 4:
    34.4) with plenty of flicker/appear/multibox errors to monitor.
    """

    width: int = 160
    height: int = 96
    fps: float = 15.0
    profile: str = "night"  # "day" or "night"

    # Traffic process
    lanes: tuple = (36, 50, 64, 78)  # lane center rows; first half go right
    spawn_probability: float = 0.10  # per frame, per direction
    max_vehicles: int = 8
    class_probabilities: tuple = (0.78, 0.22)  # car, truck
    speed_range: tuple = (1.2, 3.2)  # pixels per frame
    #: Night traffic comes in waves (a light turning green up the road);
    #: the spawn probability is modulated by a sinusoid with this period
    #: in seconds (0 disables). Long sparse stretches mean a random label
    #: budget is often spent on near-empty frames, while assertion-flagged
    #: frames concentrate in the dense, error-rich stretches.
    traffic_wave_period: float = 20.0
    traffic_wave_min: float = 0.05  # spawn multiplier at the trough

    # Vehicle geometry (width, height) ranges per class
    car_size: tuple = ((15.0, 21.0), (8.0, 11.0))
    truck_size: tuple = ((26.0, 36.0), (11.0, 14.0))

    # Appearance
    day_brightness: tuple = (0.45, 0.88)
    night_brightness: tuple = (0.35, 0.70)
    #: Fraction of night vehicles that are *dim* — barely above the noise
    #: floor. Dim vehicles are the sample-limited hard subpopulation: the
    #: detector needs many labeled examples to separate them from glare,
    #: and they are exactly what the ``flicker`` assertion flags.
    dim_fraction: float = 0.35
    dim_brightness: tuple = (0.18, 0.30)
    day_background: float = 0.22
    night_background: float = 0.08
    road_contrast: float = 0.05
    brightness_jitter: float = 0.04  # per-frame flicker of vehicle brightness
    noise_sigma_day: float = 0.015
    noise_sigma_night: float = 0.03

    # Night-only distractors. The amplitude range reaches well above the
    # dim-vehicle band: bright glare is what produces *high-confidence*
    # spurious appearances (Figure 3) — a detector monitoring only its own
    # confidence would never flag them.
    glare_probability: float = 0.15  # per frame: spawn a transient glare blob
    glare_lifetime: tuple = (2, 7)  # frames
    glare_amplitude: tuple = (0.15, 0.55)
    n_reflections: int = 3  # static dim road reflections

    def __post_init__(self) -> None:
        if self.profile not in ("day", "night"):
            raise ValueError(f"profile must be 'day' or 'night', got {self.profile!r}")
        if abs(sum(self.class_probabilities) - 1.0) > 1e-9:
            raise ValueError("class_probabilities must sum to 1")

    @property
    def background(self) -> float:
        return self.day_background if self.profile == "day" else self.night_background

    @property
    def brightness_range(self) -> tuple:
        return self.day_brightness if self.profile == "day" else self.night_brightness

    @property
    def noise_sigma(self) -> float:
        return self.noise_sigma_day if self.profile == "day" else self.noise_sigma_night

    def size_range(self, label: str) -> tuple:
        return {"car": self.car_size, "truck": self.truck_size}[label]


@dataclass
class _Glare:
    cx: float
    cy: float
    radius: float
    amplitude: float
    frames_left: int


class TrafficWorld:
    """Stateful traffic simulator; :meth:`generate` renders a video."""

    def __init__(
        self,
        config: "TrafficWorldConfig | None" = None,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        self.config = config if config is not None else TrafficWorldConfig()
        self._rng = as_generator(seed)
        self._next_object_id = 0
        self._step_count = 0
        self._vehicles: list = []
        self._glares: list = []
        cfg = self.config
        # Static scene texture and reflections are fixed per world so that
        # consecutive frames differ only by traffic and sensor noise.
        self._texture = rendering.smooth_noise(
            self._rng, cfg.height, cfg.width, sigma=0.012, scale=6.0
        )
        self._reflections = []
        if cfg.profile == "night":
            for _ in range(cfg.n_reflections):
                cx = self._rng.uniform(10, cfg.width - 10)
                cy = self._rng.uniform(cfg.lanes[0] - 4, cfg.lanes[-1] + 4)
                w = self._rng.uniform(6, 14)
                h = self._rng.uniform(2, 4)
                self._reflections.append(make_box(cx, cy, w, h))

    # ------------------------------------------------------------------
    # Traffic process
    # ------------------------------------------------------------------
    def _sample_vehicle(self, direction: int) -> VehicleState:
        cfg = self.config
        label = str(
            self._rng.choice(VEHICLE_CLASSES, p=np.asarray(cfg.class_probabilities))
        )
        (w_lo, w_hi), (h_lo, h_hi) = cfg.size_range(label)
        width = float(self._rng.uniform(w_lo, w_hi))
        height = float(self._rng.uniform(h_lo, h_hi))
        lanes = cfg.lanes
        half = len(lanes) // 2
        lane_pool = lanes[:half] if direction > 0 else lanes[half:]
        cy = float(self._rng.choice(np.asarray(lane_pool))) + float(self._rng.uniform(-1.5, 1.5))
        cx = -width / 2 + 1 if direction > 0 else cfg.width + width / 2 - 1
        speed = float(self._rng.uniform(*cfg.speed_range))
        if cfg.profile == "night" and self._rng.random() < cfg.dim_fraction:
            brightness = float(self._rng.uniform(*cfg.dim_brightness))
        else:
            brightness = float(self._rng.uniform(*cfg.brightness_range))
        vehicle = VehicleState(
            object_id=self._next_object_id,
            label=label,
            box=make_box(cx, cy, width, height, label=label),
            speed=speed,
            brightness=brightness,
            direction=direction,
        )
        self._next_object_id += 1
        return vehicle

    def _spawn_multiplier(self) -> float:
        cfg = self.config
        if cfg.traffic_wave_period <= 0 or cfg.profile != "night":
            return 1.0
        phase = 2.0 * np.pi * self._step_count / (cfg.traffic_wave_period * cfg.fps)
        wave = 0.5 * (1.0 + np.sin(phase))
        return cfg.traffic_wave_min + (1.0 - cfg.traffic_wave_min) * wave

    def _step_traffic(self) -> None:
        cfg = self.config
        self._step_count += 1
        moved = []
        for v in self._vehicles:
            dx = v.speed * v.direction
            box = v.box.shifted(dx, 0.0)
            # Despawn once fully off-screen.
            if box.x2 < -2 or box.x1 > cfg.width + 2:
                continue
            moved.append(replace(v, box=box))
        self._vehicles = moved
        spawn_p = cfg.spawn_probability * self._spawn_multiplier()
        for direction in (+1, -1):
            crowded = len(self._vehicles) >= cfg.max_vehicles
            if not crowded and self._rng.random() < spawn_p:
                candidate = self._sample_vehicle(direction)
                # Avoid spawning into the back of an existing vehicle.
                same_lane = [
                    v
                    for v in self._vehicles
                    if v.direction == direction
                    and abs(v.box.center[1] - candidate.box.center[1]) < 6
                ]
                edge = 0 if direction > 0 else cfg.width
                if all(abs(v.box.center[0] - edge) > v.box.width + 8 for v in same_lane):
                    self._vehicles.append(candidate)

    def _step_glare(self) -> None:
        cfg = self.config
        if cfg.profile != "night":
            return
        self._glares = [g for g in self._glares if g.frames_left > 0]
        for g in self._glares:
            g.frames_left -= 1
            g.cx += self._rng.uniform(-0.5, 0.5)
        if self._rng.random() < cfg.glare_probability:
            self._glares.append(
                _Glare(
                    cx=self._rng.uniform(5, cfg.width - 5),
                    cy=self._rng.uniform(cfg.lanes[0] - 6, cfg.lanes[-1] + 6),
                    radius=self._rng.uniform(3.0, 6.0),
                    amplitude=self._rng.uniform(*cfg.glare_amplitude),
                    frames_left=int(self._rng.integers(*cfg.glare_lifetime)),
                )
            )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _render(self) -> np.ndarray:
        cfg = self.config
        image = rendering.blank_image(cfg.height, cfg.width, cfg.background)
        road_top = int(cfg.lanes[0] - 10)
        road_bottom = int(cfg.lanes[-1] + 10)
        image[road_top:road_bottom, :] += cfg.road_contrast
        image += self._texture
        for box in self._reflections:
            rendering.fill_box(image, box, cfg.background + 0.10)
        for glare in self._glares:
            rendering.add_gaussian_blob(
                image, glare.cx, glare.cy, glare.radius, glare.amplitude
            )
        # Render back-to-front by lane so nearer (lower) vehicles occlude.
        for v in sorted(self._vehicles, key=lambda v: v.box.center[1]):
            jitter = float(self._rng.normal(0.0, cfg.brightness_jitter))
            level = float(np.clip(v.brightness + jitter, 0.05, 1.0))
            rendering.fill_box_shaded(image, v.box, level, rng=self._rng)
            # Headlights at the leading edge, bright even on dim vehicles.
            lead_x = v.box.x2 - 2 if v.direction > 0 else v.box.x1 + 2
            for dy in (0.3, 0.7):
                rendering.add_gaussian_blob(
                    image,
                    lead_x,
                    v.box.y1 + dy * v.box.height,
                    radius=1.2,
                    amplitude=0.35 if cfg.profile == "night" else 0.15,
                )
        return rendering.finalize(image, self._rng, noise_sigma=cfg.noise_sigma)

    # ------------------------------------------------------------------
    def stream(self, n_frames: int, *, warmup: int = 30):
        """Simulate and render frames one at a time (generator).

        The streaming form of :meth:`generate`: frames are yielded as
        they are simulated, so an online monitor can consume an
        arbitrarily long feed without materializing it. ``warmup`` steps
        run (and are discarded) first so the street is populated from
        frame 0 rather than starting empty.
        """
        if n_frames < 0:
            raise ValueError(f"n_frames must be >= 0, got {n_frames}")
        for _ in range(warmup):
            self._step_traffic()
            self._step_glare()
        cfg = self.config
        for i in range(n_frames):
            self._step_traffic()
            self._step_glare()
            visible = tuple(
                v for v in self._vehicles if v.box.x2 > 1 and v.box.x1 < cfg.width - 1
            )
            yield TrafficFrame(
                index=i,
                timestamp=i / cfg.fps,
                image=self._render(),
                vehicles=visible,
            )

    def generate(self, n_frames: int, *, warmup: int = 30) -> list:
        """Simulate and render ``n_frames`` frames as a list."""
        return list(self.stream(n_frames, warmup=warmup))


def day_config(**overrides) -> TrafficWorldConfig:
    """Config for the bootstrap ("pretraining") distribution."""
    return TrafficWorldConfig(profile="day", **overrides)


def night_config(**overrides) -> TrafficWorldConfig:
    """Config for the deployment distribution."""
    return TrafficWorldConfig(profile="night", **overrides)
