"""The ECG world: CINC17-like single-lead ECG records.

The paper classifies atrial fibrillation from single-lead ECG using the
network of Rajpurkar et al. (2019) on the CINC17 challenge data: four
record-level classes — Normal sinus rhythm, AF, Other rhythm, and Noisy.
The network emits a rhythm prediction per short window, and the deployed
assertion checks that predictions do not oscillate A→B→A within 30 s
(European Society of Cardiology guidance, §2.2).

This simulator generates records as sequences of per-window feature
vectors — the statistics a standard ECG front-end extracts (RR-interval
mean/variability, RMSSD, pNN50, P-wave amplitude, QRS variability, noise
level, heart rate). Class-conditional distributions follow clinical
structure:

- **Normal**: regular RR, clear P-waves, low noise;
- **AF**: irregularly irregular RR (high RMSSD/pNN50), absent P-waves,
  elevated rate;
- **Other**: ectopic-beat patterns — intermittent RR disturbance with
  preserved P-waves (overlaps both Normal and AF, the genuinely hard
  class);
- **Noisy**: high noise floor corrupting every feature.

Windows within a record share record-level latent parameters plus
window-level noise, so model errors are bursty and oscillating — which is
what makes the 30 s consistency assertion fire on real mistakes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.codec import register_result_type
from repro.utils.rng import as_generator

#: Record classes, CINC17 order.
ECG_CLASSES = ("normal", "af", "other", "noisy")

#: Per-window feature names.
ECG_FEATURE_NAMES = (
    "rr_mean",
    "rr_std",
    "rmssd",
    "pnn50",
    "p_wave_amp",
    "qrs_var",
    "noise_level",
    "heart_rate",
)

N_ECG_FEATURES = len(ECG_FEATURE_NAMES)


@register_result_type
@dataclass(frozen=True)
class ECGRecord:
    """One record: per-window features plus the record-level label."""

    record_id: int
    label: int  # index into ECG_CLASSES
    features: np.ndarray  # (n_windows, N_ECG_FEATURES)
    window_times: np.ndarray  # (n_windows,) window start seconds

    @property
    def n_windows(self) -> int:
        return int(self.features.shape[0])

    @property
    def label_name(self) -> str:
        return ECG_CLASSES[self.label]


@register_result_type
@dataclass(frozen=True)
class ECGWorldConfig:
    """Parameters of the record generator."""

    record_seconds: float = 60.0
    window_seconds: float = 10.0
    window_stride: float = 5.0
    class_probabilities: tuple = (0.50, 0.16, 0.24, 0.10)  # CINC17-ish mix
    #: Within-record feature correlation: window features are the record's
    #: latent values plus noise of this relative magnitude.
    window_noise: float = 2.2
    #: Between-record spread of the latent class parameters; larger =
    #: more class overlap = harder problem.
    record_spread: float = 4.5
    #: Shrinks class-mean separation toward the grand mean; 1.0 keeps the
    #: clinical prototypes, smaller values overlap the classes. The
    #: default is calibrated so a bootstrapped classifier lands near the
    #: paper's 70.7% record accuracy (Table 4).
    class_separation: float = 0.55

    def __post_init__(self) -> None:
        if abs(sum(self.class_probabilities) - 1.0) > 1e-9:
            raise ValueError("class_probabilities must sum to 1")
        if self.window_seconds > self.record_seconds:
            raise ValueError("window_seconds cannot exceed record_seconds")


# Class-conditional latent means for
# (rr_mean, rr_std, rmssd, pnn50, p_wave_amp, qrs_var, noise_level, heart_rate)
_CLASS_MEANS = np.array(
    [
        [0.85, 0.045, 0.035, 0.04, 1.00, 0.08, 0.05, 71.0],  # normal
        [0.66, 0.180, 0.210, 0.55, 0.12, 0.14, 0.08, 95.0],  # af
        [0.80, 0.110, 0.120, 0.28, 0.80, 0.30, 0.09, 77.0],  # other
        [0.78, 0.130, 0.130, 0.30, 0.50, 0.25, 0.45, 80.0],  # noisy
    ]
)

_CLASS_SCALES = np.array(
    [
        [0.06, 0.015, 0.012, 0.03, 0.12, 0.03, 0.02, 6.0],
        [0.08, 0.040, 0.050, 0.12, 0.08, 0.05, 0.03, 9.0],
        [0.07, 0.045, 0.050, 0.14, 0.18, 0.10, 0.03, 8.0],
        [0.09, 0.050, 0.055, 0.14, 0.25, 0.10, 0.10, 9.0],
    ]
)


class ECGWorld:
    """Record generator; :meth:`generate_records` yields :class:`ECGRecord`."""

    def __init__(
        self,
        config: "ECGWorldConfig | None" = None,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        self.config = config if config is not None else ECGWorldConfig()
        self._rng = as_generator(seed)
        self._next_id = 0

    def window_times(self) -> np.ndarray:
        """Start times of the sliding windows within a record."""
        cfg = self.config
        starts = np.arange(
            0.0, cfg.record_seconds - cfg.window_seconds + 1e-9, cfg.window_stride
        )
        return starts

    def _class_means(self) -> np.ndarray:
        grand = _CLASS_MEANS.mean(axis=0)
        return grand + self.config.class_separation * (_CLASS_MEANS - grand)

    def generate_record(self) -> ECGRecord:
        """Generate one record."""
        cfg = self.config
        label = int(
            self._rng.choice(len(ECG_CLASSES), p=np.asarray(cfg.class_probabilities))
        )
        times = self.window_times()
        n_windows = times.shape[0]
        latent = self._class_means()[label] + cfg.record_spread * _CLASS_SCALES[
            label
        ] * self._rng.normal(size=N_ECG_FEATURES)
        window_noise = (
            cfg.window_noise
            * _CLASS_SCALES[label]
            * self._rng.normal(size=(n_windows, N_ECG_FEATURES))
        )
        features = latent[None, :] + window_noise
        # Physical floors: no negative intervals/amplitudes/rates.
        features = np.maximum(features, 1e-3)
        record = ECGRecord(
            record_id=self._next_id,
            label=label,
            features=features,
            window_times=times.copy(),
        )
        self._next_id += 1
        return record

    def iter_records(self, n_records: int):
        """Generate records lazily (the streaming form of
        :meth:`generate_records`)."""
        if n_records < 0:
            raise ValueError(f"n_records must be >= 0, got {n_records}")
        for _ in range(n_records):
            yield self.generate_record()

    def generate_records(self, n_records: int) -> list:
        """Generate ``n_records`` independent records."""
        return list(self.iter_records(n_records))
