"""Shared low-level rendering helpers for the image-producing worlds.

Images are single-channel float arrays in ``[0, 1]`` with shape
``(height, width)``, origin at the top-left — cheap enough to render by
the thousand yet structured enough that a real trainable detector
(:mod:`repro.detection`) succeeds and fails on them for the same reasons a
deep detector does on video: contrast, size, occlusion, and clutter.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.geometry.box2d import Box2D


def blank_image(height: int, width: int, base: float = 0.0) -> np.ndarray:
    """A constant image of the given brightness."""
    return np.full((height, width), float(base), dtype=np.float64)


def smooth_noise(
    rng: np.random.Generator, height: int, width: int, *, sigma: float, scale: float
) -> np.ndarray:
    """Zero-mean spatially smooth noise (static texture, cloud patterns).

    White noise of standard deviation ``sigma`` blurred with a Gaussian of
    width ``scale`` pixels, renormalized to keep its amplitude.
    """
    noise = rng.normal(0.0, sigma, size=(height, width))
    smoothed = ndimage.gaussian_filter(noise, sigma=scale)
    std = smoothed.std()
    if std > 1e-12:
        smoothed *= sigma / std
    return smoothed


def fill_box(image: np.ndarray, box: Box2D, value: float) -> None:
    """Fill a box region with a constant intensity, clipped to the image."""
    h, w = image.shape
    x1 = max(int(round(box.x1)), 0)
    y1 = max(int(round(box.y1)), 0)
    x2 = min(int(round(box.x2)), w)
    y2 = min(int(round(box.y2)), h)
    if x2 > x1 and y2 > y1:
        image[y1:y2, x1:x2] = value


def fill_box_shaded(
    image: np.ndarray,
    box: Box2D,
    brightness: float,
    *,
    rng: "np.random.Generator | None" = None,
    texture_sigma: float = 0.02,
) -> None:
    """Fill a box with a vertically shaded, lightly textured body.

    The top of the body is slightly darker than the bottom (roof vs
    headlight line), which gives proposals a distinctive vertical-gradient
    feature separating vehicles from flat glare blobs.
    """
    h, w = image.shape
    x1 = max(int(round(box.x1)), 0)
    y1 = max(int(round(box.y1)), 0)
    x2 = min(int(round(box.x2)), w)
    y2 = min(int(round(box.y2)), h)
    if x2 <= x1 or y2 <= y1:
        return
    rows = y2 - y1
    shade = np.linspace(0.85, 1.1, rows)[:, None]
    body = brightness * shade
    if rng is not None and texture_sigma > 0:
        body = body + rng.normal(0.0, texture_sigma, size=(rows, x2 - x1))
    image[y1:y2, x1:x2] = np.clip(body, 0.0, 1.0)


def add_gaussian_blob(
    image: np.ndarray, cx: float, cy: float, radius: float, amplitude: float
) -> None:
    """Add a radially symmetric Gaussian bump (headlight glare, flare)."""
    h, w = image.shape
    span = int(np.ceil(3 * radius))
    x1 = max(int(cx) - span, 0)
    x2 = min(int(cx) + span + 1, w)
    y1 = max(int(cy) - span, 0)
    y2 = min(int(cy) + span + 1, h)
    if x2 <= x1 or y2 <= y1:
        return
    ys, xs = np.mgrid[y1:y2, x1:x2]
    bump = amplitude * np.exp(-((xs - cx) ** 2 + (ys - cy) ** 2) / (2 * radius**2))
    image[y1:y2, x1:x2] += bump


def finalize(
    image: np.ndarray, rng: np.random.Generator, *, noise_sigma: float, blur: float = 0.6
) -> np.ndarray:
    """Sensor model: slight optical blur, additive noise, clip to [0, 1]."""
    out = ndimage.gaussian_filter(image, sigma=blur) if blur > 0 else image
    if noise_sigma > 0:
        out = out + rng.normal(0.0, noise_sigma, size=out.shape)
    return np.clip(out, 0.0, 1.0)
