"""Synthetic worlds standing in for the paper's datasets.

Each world is a seeded, deterministic simulator that produces both sensor
data and exact ground truth:

- :mod:`repro.worlds.traffic` — the ``night-street`` video (street-camera
  vehicle detection);
- :mod:`repro.worlds.av` — NuScenes-like scenes with time-aligned LIDAR
  point clouds and camera frames at 2 Hz;
- :mod:`repro.worlds.ecg` — CINC17-like ECG records with per-window
  rhythm features;
- :mod:`repro.worlds.tvnews` — TV-news footage with per-scene face
  detections carrying identity/gender/hair-color predictions.

See DESIGN.md §2 for why each substitution preserves the behaviour the
paper's experiments measure.
"""

from repro.worlds.av import AVSample, AVScene, AVWorld, AVWorldConfig
from repro.worlds.ecg import ECGRecord, ECGWorld, ECGWorldConfig, ECG_CLASSES
from repro.worlds.traffic import (
    TrafficFrame,
    TrafficWorld,
    TrafficWorldConfig,
    VehicleState,
)
from repro.worlds.tvnews import (
    FaceObservation,
    TVNewsWorld,
    TVNewsWorldConfig,
)

__all__ = [
    "AVSample",
    "AVScene",
    "AVWorld",
    "AVWorldConfig",
    "ECGRecord",
    "ECGWorld",
    "ECGWorldConfig",
    "ECG_CLASSES",
    "FaceObservation",
    "TVNewsWorld",
    "TVNewsWorldConfig",
    "TrafficFrame",
    "TrafficWorld",
    "TrafficWorldConfig",
    "VehicleState",
]
