"""The TV-news world: face detections with identity/gender/hair predictions.

The paper's TV-news collaborators run face detection every three seconds
over a decade of footage, then identify the face and classify gender and
hair color; scene cuts are computed separately, and "most TV news hosts do
not move much between scenes", so faces that highly overlap within one
scene should have consistent identity, gender, and hair color (§2.2).

The paper received *precomputed* model outputs and could not retrain this
domain; accordingly this world generates exactly that: per-sample face
boxes with predicted identity/gender/hair-color attributes, where the
predictions contain injected, realistically structured errors (identity
swaps to a similar-looking cast member, occasional gender/hair flips),
plus exact ground truth for measuring assertion precision (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.box2d import Box2D, make_box
from repro.utils.codec import register_result_type
from repro.utils.rng import as_generator

GENDERS = ("female", "male")
HAIR_COLORS = ("black", "blond", "brown", "gray")


@dataclass(frozen=True)
class CastMember:
    """A recurring on-screen person with fixed true attributes."""

    identity: int
    gender: str
    hair_color: str


@register_result_type
@dataclass(frozen=True)
class FaceObservation:
    """One face detection at one sample time, with model predictions.

    ``pred_*`` fields are the (possibly wrong) precomputed model outputs;
    ``true_*`` fields are the simulator's ground truth.
    """

    video_id: int
    scene_id: int
    sample_index: int
    timestamp: float
    box: Box2D
    true_identity: int
    true_gender: str
    true_hair: str
    pred_identity: int
    pred_gender: str
    pred_hair: str

    @property
    def identity_wrong(self) -> bool:
        return self.pred_identity != self.true_identity

    @property
    def any_error(self) -> bool:
        return (
            self.pred_identity != self.true_identity
            or self.pred_gender != self.true_gender
            or self.pred_hair != self.true_hair
        )


@register_result_type
@dataclass(frozen=True)
class Scene:
    """One scene: consecutive samples sharing anchors and framing.

    Codec-registered: a scene is the tvnews domain's raw unit, so it
    must cross the network serving layer's NDJSON frames losslessly.
    """

    video_id: int
    scene_id: int
    start_time: float
    duration: float
    observations: tuple


@dataclass(frozen=True)
class TVNewsWorldConfig:
    """Parameters of the TV-news generator."""

    cast_size: int = 20
    sample_period: float = 3.0  # face detection every 3 seconds
    scene_duration_mean: float = 12.0
    scene_duration_min: float = 3.0
    faces_per_scene: tuple = (1, 2)
    frame_width: int = 320
    frame_height: int = 180
    face_size: tuple = (28.0, 44.0)
    position_jitter: float = 2.0  # hosts barely move within a scene

    # Injected model-error rates (per observation)
    identity_error_rate: float = 0.03
    gender_error_rate: float = 0.015
    hair_error_rate: float = 0.025


class TVNewsWorld:
    """Footage generator; :meth:`generate_video` yields scenes."""

    def __init__(
        self,
        config: "TVNewsWorldConfig | None" = None,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        self.config = config if config is not None else TVNewsWorldConfig()
        self._rng = as_generator(seed)
        self.cast = [
            CastMember(
                identity=i,
                gender=str(self._rng.choice(GENDERS)),
                hair_color=str(self._rng.choice(HAIR_COLORS)),
            )
            for i in range(self.config.cast_size)
        ]

    # ------------------------------------------------------------------
    def _predict(self, member: CastMember):
        """Apply the injected model-error process to one observation."""
        cfg = self.config
        pred_identity = member.identity
        if self._rng.random() < cfg.identity_error_rate:
            others = [m.identity for m in self.cast if m.identity != member.identity]
            pred_identity = int(self._rng.choice(np.asarray(others)))
        pred_gender = member.gender
        if self._rng.random() < cfg.gender_error_rate:
            pred_gender = GENDERS[1 - GENDERS.index(member.gender)]
        pred_hair = member.hair_color
        if self._rng.random() < cfg.hair_error_rate:
            others = [h for h in HAIR_COLORS if h != member.hair_color]
            pred_hair = str(self._rng.choice(np.asarray(others)))
        return pred_identity, pred_gender, pred_hair

    def generate_video(self, video_id: int, duration_seconds: float) -> list:
        """Generate the scenes of one video segment.

        Returns a list of :class:`Scene` in time order.
        """
        cfg = self.config
        scenes = []
        t = 0.0
        scene_id = 0
        while t < duration_seconds:
            duration = max(
                cfg.scene_duration_min, float(self._rng.exponential(cfg.scene_duration_mean))
            )
            duration = min(duration, duration_seconds - t)
            n_faces = int(self._rng.integers(cfg.faces_per_scene[0], cfg.faces_per_scene[1] + 1))
            members = [
                self.cast[int(i)]
                for i in self._rng.choice(len(self.cast), size=n_faces, replace=False)
            ]
            # Fixed anchor position per member for the whole scene.
            anchors = []
            for k in range(n_faces):
                size = float(self._rng.uniform(*cfg.face_size))
                cx = cfg.frame_width * (0.3 + 0.4 * k) + float(self._rng.uniform(-20, 20))
                cy = cfg.frame_height * 0.45 + float(self._rng.uniform(-10, 10))
                anchors.append((cx, cy, size))

            sample_times = np.arange(0.0, duration, cfg.sample_period)
            observations = []
            for s_idx, offset in enumerate(sample_times):
                for member, (cx, cy, size) in zip(members, anchors):
                    jx = float(self._rng.normal(0.0, cfg.position_jitter))
                    jy = float(self._rng.normal(0.0, cfg.position_jitter))
                    pred_identity, pred_gender, pred_hair = self._predict(member)
                    observations.append(
                        FaceObservation(
                            video_id=video_id,
                            scene_id=scene_id,
                            sample_index=s_idx,
                            timestamp=t + float(offset),
                            box=make_box(cx + jx, cy + jy, size, size * 1.2),
                            true_identity=member.identity,
                            true_gender=member.gender,
                            true_hair=member.hair_color,
                            pred_identity=pred_identity,
                            pred_gender=pred_gender,
                            pred_hair=pred_hair,
                        )
                    )
            if observations:
                scenes.append(
                    Scene(
                        video_id=video_id,
                        scene_id=scene_id,
                        start_time=t,
                        duration=duration,
                        observations=tuple(observations),
                    )
                )
                scene_id += 1
            t += duration
        return scenes

    def generate_videos(self, n_videos: int, duration_seconds: float) -> list:
        """Generate several videos → flat list of scenes (distinct ids)."""
        all_scenes = []
        for video_id in range(n_videos):
            all_scenes.extend(self.generate_video(video_id, duration_seconds))
        return all_scenes
