"""The AV world: NuScenes-like scenes with time-aligned LIDAR and camera.

The paper's AV experiments use NuScenes (Caesar et al., 2019): scenes
sampled at 2 Hz with labeled LIDAR point clouds and camera images, a
PointPillars-style LIDAR detector, and SSD on the camera. This simulator
generates the equivalent: short scenes of an ego vehicle driving a
straight two-lane road with other vehicles ahead, emitting per sample

- a LIDAR point cloud: points on the visible faces of each vehicle
  (density falling with distance), ground returns, and non-vehicle
  clutter clusters (poles, bushes) that a naive clusterer confuses for
  vehicles;
- a camera frame: the same scene rendered through the pinhole camera of
  :mod:`repro.geometry.camera`, with contrast falling with distance;
- exact 3-D ground-truth boxes (and their 2-D projections).

Because the LIDAR and camera pipelines fail independently — LIDAR misses
sparse distant clusters and fires on clutter; the camera misses
low-contrast distant vehicles — their disagreement is exactly the signal
the paper's ``agree`` assertion monitors.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.geometry.box2d import Box2D
from repro.geometry.box3d import Box3D
from repro.geometry.camera import PinholeCamera, project_box3d_to_2d
from repro.utils.rng import as_generator
from repro.worlds import rendering

AV_CLASSES = ("car", "truck")


@dataclass(frozen=True)
class AVSample:
    """One 2 Hz sample: point cloud + camera frame + ground truth."""

    scene_id: int
    index: int  # sample index within the scene
    timestamp: float
    point_cloud: np.ndarray  # (n, 3) ego-frame points
    camera_image: np.ndarray  # (h, w) grayscale
    ground_truth_3d: tuple  # Box3D per visible vehicle
    ground_truth_2d: tuple  # Box2D projections (same order, may be fewer)


@dataclass(frozen=True)
class AVScene:
    """A scene: consecutive samples plus its id."""

    scene_id: int
    samples: tuple

    def __len__(self) -> int:
        return len(self.samples)


@dataclass(frozen=True)
class AVWorldConfig:
    """Parameters of the AV simulator."""

    samples_per_scene: int = 20
    sample_hz: float = 2.0

    # Road layout (ego frame: x forward, y left)
    lane_offsets: tuple = (-1.8, 1.8)
    spawn_range: tuple = (8.0, 55.0)
    vehicles_per_scene: tuple = (3, 7)  # min, max
    parked_probability: float = 0.3
    relative_speed: tuple = (-4.0, 4.0)  # m/s relative to ego

    # Vehicle sizes (length, width, height) per class
    car_size: tuple = ((4.0, 4.8), (1.7, 2.0), (1.4, 1.7))
    truck_size: tuple = ((7.0, 10.0), (2.3, 2.6), (2.6, 3.4))
    truck_probability: float = 0.25

    # LIDAR model
    points_at_10m: float = 220.0  # expected returns on a car at 10 m
    lidar_noise: float = 0.04  # meters
    ground_points: int = 250
    clutter_clusters: tuple = (2, 6)  # per scene
    clutter_points: tuple = (8, 28)
    dropout_probability: float = 0.06  # a vehicle returns no points this sample

    # Camera model (a dusk scene: near-uniform dark background so that
    # vehicle contrast, falling with distance, is the detection signal)
    camera: PinholeCamera = field(default_factory=lambda: PinholeCamera(width=160, height=96, focal=110.0, cz=1.4))
    camera_noise: float = 0.025
    sky_brightness: float = 0.13
    road_brightness: float = 0.10
    vehicle_contrast: float = 0.45  # close-range brightness above the road
    contrast_falloff: float = 0.006  # per meter of distance
    min_gt_box_area: float = 16.0  # drop sub-visible 2-D ground truth


@dataclass
class _ActorState:
    label: str
    x: float
    y: float
    speed: float
    length: float
    width: float
    height: float


class AVWorld:
    """Scene generator; :meth:`generate_scenes` yields :class:`AVScene` s."""

    def __init__(
        self,
        config: "AVWorldConfig | None" = None,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        self.config = config if config is not None else AVWorldConfig()
        self._rng = as_generator(seed)

    # ------------------------------------------------------------------
    def _spawn_scene_actors(self) -> list:
        cfg = self.config
        n = int(self._rng.integers(cfg.vehicles_per_scene[0], cfg.vehicles_per_scene[1] + 1))
        actors = []
        for _ in range(n):
            is_truck = self._rng.random() < cfg.truck_probability
            label = "truck" if is_truck else "car"
            (l_lo, l_hi), (w_lo, w_hi), (h_lo, h_hi) = (
                cfg.truck_size if is_truck else cfg.car_size
            )
            parked = self._rng.random() < cfg.parked_probability
            y = (
                float(self._rng.choice(np.asarray(cfg.lane_offsets)))
                if not parked
                else float(self._rng.choice([-5.5, 5.5]))
            )
            actors.append(
                _ActorState(
                    label=label,
                    x=float(self._rng.uniform(*cfg.spawn_range)),
                    y=y + float(self._rng.uniform(-0.3, 0.3)),
                    speed=0.0 if parked else float(self._rng.uniform(*cfg.relative_speed)),
                    length=float(self._rng.uniform(l_lo, l_hi)),
                    width=float(self._rng.uniform(w_lo, w_hi)),
                    height=float(self._rng.uniform(h_lo, h_hi)),
                )
            )
        return actors

    def _actor_box(self, actor: _ActorState) -> Box3D:
        return Box3D(
            cx=actor.x,
            cy=actor.y,
            cz=actor.height / 2.0,
            length=actor.length,
            width=actor.width,
            height=actor.height,
            yaw=0.0,
            label=actor.label,
        )

    # ------------------------------------------------------------------
    # LIDAR
    # ------------------------------------------------------------------
    def _vehicle_points(self, box: Box3D) -> np.ndarray:
        """Returns on the rear and near-side faces, density ∝ 1/distance²."""
        cfg = self.config
        distance = max(np.hypot(box.cx, box.cy), 1.0)
        expected = cfg.points_at_10m * (10.0 / distance) ** 2
        expected *= box.length * box.height / 6.0  # bigger targets, more returns
        n = int(self._rng.poisson(min(expected, 400)))
        if n < 1 or self._rng.random() < cfg.dropout_probability:
            return np.zeros((0, 3))
        n_rear = max(int(0.6 * n), 1)
        n_side = n - n_rear
        rear_x = np.full(n_rear, box.cx - box.length / 2.0)
        rear_y = self._rng.uniform(box.cy - box.width / 2, box.cy + box.width / 2, n_rear)
        rear_z = self._rng.uniform(0.2, box.height, n_rear)
        side_sign = -1.0 if box.cy > 0 else 1.0  # the face toward the ego
        side_x = self._rng.uniform(box.cx - box.length / 2, box.cx + box.length / 2, n_side)
        side_y = np.full(n_side, box.cy + side_sign * box.width / 2.0)
        side_z = self._rng.uniform(0.2, box.height, n_side)
        points = np.concatenate(
            [
                np.stack([rear_x, rear_y, rear_z], axis=1),
                np.stack([side_x, side_y, side_z], axis=1),
            ]
        )
        return points + self._rng.normal(0.0, cfg.lidar_noise, size=points.shape)

    def _scene_clutter(self) -> list:
        """Static clutter blobs: pole/bush-like point clusters."""
        cfg = self.config
        n_clusters = int(self._rng.integers(cfg.clutter_clusters[0], cfg.clutter_clusters[1] + 1))
        clutter = []
        for _ in range(n_clusters):
            cx = float(self._rng.uniform(6.0, 58.0))
            cy = float(self._rng.choice([-1.0, 1.0])) * float(self._rng.uniform(6.0, 14.0))
            n_pts = int(self._rng.integers(cfg.clutter_points[0], cfg.clutter_points[1] + 1))
            spread = self._rng.uniform(0.2, 0.9)
            height = self._rng.uniform(0.5, 2.5)
            clutter.append((cx, cy, n_pts, spread, height))
        return clutter

    def _clutter_points(self, clutter: list) -> np.ndarray:
        blocks = []
        for cx, cy, n_pts, spread, height in clutter:
            pts = np.stack(
                [
                    self._rng.normal(cx, spread, n_pts),
                    self._rng.normal(cy, spread, n_pts),
                    self._rng.uniform(0.1, height, n_pts),
                ],
                axis=1,
            )
            blocks.append(pts)
        return np.concatenate(blocks) if blocks else np.zeros((0, 3))

    def _ground_points(self) -> np.ndarray:
        cfg = self.config
        n = cfg.ground_points
        return np.stack(
            [
                self._rng.uniform(2.0, 60.0, n),
                self._rng.uniform(-12.0, 12.0, n),
                np.abs(self._rng.normal(0.0, 0.05, n)),
            ],
            axis=1,
        )

    # ------------------------------------------------------------------
    # Camera
    # ------------------------------------------------------------------
    def _render_camera(self, boxes_2d: list, distances: list) -> np.ndarray:
        cfg = self.config
        cam = cfg.camera
        image = rendering.blank_image(cam.height, cam.width, cfg.sky_brightness)
        horizon = int(cam.cv)
        image[horizon:, :] = cfg.road_brightness
        # Render far-to-near so closer vehicles occlude.
        order = np.argsort(-np.asarray(distances)) if distances else []
        for i in order:
            box = boxes_2d[int(i)]
            if box is None:
                continue
            contrast = max(
                cfg.vehicle_contrast - cfg.contrast_falloff * distances[int(i)], 0.08
            )
            rendering.fill_box_shaded(
                image, box, cfg.road_brightness + contrast, rng=self._rng
            )
        return rendering.finalize(image, self._rng, noise_sigma=cfg.camera_noise, blur=0.5)

    # ------------------------------------------------------------------
    def generate_scene(self, scene_id: int) -> AVScene:
        """Simulate one scene of ``samples_per_scene`` samples."""
        cfg = self.config
        actors = self._spawn_scene_actors()
        clutter = self._scene_clutter()
        dt = 1.0 / cfg.sample_hz
        samples = []
        for k in range(cfg.samples_per_scene):
            visible = [a for a in actors if 4.0 < a.x < 60.0 and abs(a.y) < 15.0]
            boxes_3d = [self._actor_box(a) for a in visible]
            boxes_2d = [project_box3d_to_2d(b, cfg.camera) for b in boxes_3d]
            distances = [float(np.hypot(b.cx, b.cy)) for b in boxes_3d]

            cloud_parts = [self._ground_points(), self._clutter_points(clutter)]
            for box in boxes_3d:
                cloud_parts.append(self._vehicle_points(box))
            cloud = np.concatenate([p for p in cloud_parts if p.size])

            gt2d = tuple(
                b2.with_label(b3.label)
                for b2, b3 in zip(boxes_2d, boxes_3d)
                if b2 is not None and b2.area >= cfg.min_gt_box_area
            )
            samples.append(
                AVSample(
                    scene_id=scene_id,
                    index=k,
                    timestamp=k * dt,
                    point_cloud=cloud,
                    camera_image=self._render_camera(boxes_2d, distances),
                    ground_truth_3d=tuple(boxes_3d),
                    ground_truth_2d=gt2d,
                )
            )
            for a in actors:
                a.x += a.speed * dt
        return AVScene(scene_id=scene_id, samples=tuple(samples))

    def iter_scenes(self, n_scenes: int, *, start_id: int = 0):
        """Generate scenes lazily (the streaming form of
        :meth:`generate_scenes`)."""
        if n_scenes < 0:
            raise ValueError(f"n_scenes must be >= 0, got {n_scenes}")
        for i in range(n_scenes):
            yield self.generate_scene(start_id + i)

    def generate_scenes(self, n_scenes: int, *, start_id: int = 0) -> list:
        """Generate ``n_scenes`` independent scenes."""
        return list(self.iter_scenes(n_scenes, start_id=start_id))
