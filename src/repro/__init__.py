"""OMG — Model Assertions for Monitoring and Improving ML Models.

This package is a from-scratch reproduction of the system described in

    Kang, Raghavan, Bailis, Zaharia.
    "Model Assertions for Monitoring and Improving ML Models." MLSys 2020.

The public API mirrors the paper's library, OMG ("OMG Model Guardian"):

- :class:`repro.core.OMG` — the runtime monitor. Register assertions with
  :meth:`~repro.core.runtime.OMG.add_assertion` or the high-level
  :meth:`~repro.core.runtime.OMG.add_consistency_assertion` API and stream
  model inputs/outputs through it.
- :class:`repro.core.ModelAssertion` — the assertion abstraction: an
  arbitrary function over model inputs and outputs returning a severity
  score (0 = abstain).
- :class:`repro.core.BAL` — the bandit-based active-learning data-selection
  algorithm (Algorithm 2 in the paper).
- :func:`repro.core.harvest_weak_labels` — weak supervision from
  consistency-assertion correction rules.

Substrates used by the paper's evaluation (synthetic worlds, trainable
detectors and classifiers, metrics) live in sibling subpackages; see
``DESIGN.md`` for the full inventory.
"""

from repro.core import (
    OMG,
    BAL,
    AssertionDatabase,
    ConsistencySpec,
    FunctionAssertion,
    ModelAssertion,
    MonitoringReport,
    StreamItem,
    harvest_weak_labels,
)

__version__ = "1.0.0"

__all__ = [
    "OMG",
    "BAL",
    "AssertionDatabase",
    "ConsistencySpec",
    "FunctionAssertion",
    "ModelAssertion",
    "MonitoringReport",
    "StreamItem",
    "harvest_weak_labels",
    "__version__",
]
