"""OMG — Model Assertions for Monitoring and Improving ML Models.

This package is a from-scratch reproduction of the system described in

    Kang, Raghavan, Bailis, Zaharia.
    "Model Assertions for Monitoring and Improving ML Models." MLSys 2020.

The public API mirrors the paper's library, OMG ("OMG Model Guardian"):

- :class:`repro.core.OMG` — the runtime monitor. Register assertions with
  :meth:`~repro.core.runtime.OMG.add_assertion` or the high-level
  :meth:`~repro.core.runtime.OMG.add_consistency_assertion` API and stream
  model inputs/outputs through it.
- :class:`repro.core.ModelAssertion` — the assertion abstraction: an
  arbitrary function over model inputs and outputs returning a severity
  score (0 = abstain).
- :class:`repro.core.BAL` — the bandit-based active-learning data-selection
  algorithm (Algorithm 2 in the paper).
- :func:`repro.core.harvest_weak_labels` — weak supervision from
  consistency-assertion correction rules.

Substrates used by the paper's evaluation (synthetic worlds, trainable
detectors and classifiers, metrics) live in sibling subpackages.

Reproducing the evaluation
--------------------------
Every table/figure is a registered experiment (frozen config dataclass +
pure ``run(config)`` body) executed by the registry runner in
:mod:`repro.experiments.runner`, which layers on deterministic
child-seed fan-out (:mod:`repro.core.seeding`), process-parallel trial
execution, a content-addressed artifact cache (``.repro-cache/``), and
uniform JSON + text reporting. ``python -m repro`` drives it from the
command line::

    python -m repro list
    python -m repro run fig4_video --jobs 4
    python -m repro run --all --jobs 2
    python -m repro report

Same-seed results are bit-identical run directly, via the CLI, serially,
or with ``--jobs N`` (see ``tests/experiments/test_runner.py``).

Runtime performance
-------------------
Online monitoring is incremental: :meth:`~repro.core.runtime.OMG.observe`
dispatches each invocation through stateful per-assertion streaming
evaluators (:mod:`repro.core.streaming`) — deque-based rolling windows
for windowed function assertions, per-identifier aggregates for
consistency assertions — so one observation costs O(assertions)
amortized instead of the legacy O(window × assertions) replay (~9×
items/sec at ``window_size=64`` with 8 assertions; see
``benchmarks/test_streaming_throughput.py``). For chunked feeds,
:meth:`~repro.core.runtime.OMG.observe_batch` ingests many items per
call and returns the chunk's severity matrix; ``parallel=True`` streams
independent assertions on a thread pool. Severity attribution is
revisable — a flicker is flagged on the gap items once the object
reappears — and :meth:`~repro.core.runtime.OMG.online_report` is
guaranteed to equal an offline :meth:`~repro.core.runtime.OMG.monitor`
pass over the same stream exactly (the differential invariant enforced
by ``tests/core/test_streaming_equivalence.py``). Example:
``examples/streaming_monitor.py``.

Serving API
-----------
All four workloads implement one :class:`~repro.domains.registry.Domain`
contract (``build_monitor`` / ``build_world`` / ``iter_stream`` /
``item_from_raw``), resolved by name through
:func:`~repro.domains.registry.get_domain`.
:class:`~repro.serve.MonitorService` serves many keyed streams of a
domain at once — batched thread fan-out, LRU/TTL session eviction,
per-stream and fleet-aggregate reports, ``on_fire`` routing with stream
provenance, and bit-exact JSON snapshot/restore of the whole fleet
(``python -m repro stream DOMAIN --streams N --items M
[--snapshot PATH]``). See the README's "Serving API" section and
``examples/multi_stream_service.py``.

Improvement loop
----------------
:mod:`repro.improve` closes the paper's monitor → label → retrain →
redeploy lifecycle over the serving fleet:
:class:`~repro.improve.ImprovementLoop` accumulates fires
(:class:`~repro.improve.FireStore`), selects labeling candidates
(random / uniform-assertion / BAL bandit), routes them to the oracle or
consistency weak supervision (:class:`~repro.improve.LabelQueue`),
retrains in the background (:class:`~repro.improve.RetrainWorker`), and
hot-swaps monotonically versioned models
(:class:`~repro.improve.ModelRegistry`) into live streams at raw-unit
boundaries — with bit-exact snapshot/resume of the entire loop
(``python -m repro improve DOMAIN --rounds R --budget B --policy
bal|random|uniform [--snapshot PATH]``). See the README's "Improvement
loop" section and ``examples/closed_loop_improvement.py``.
"""

from repro.core import (
    OMG,
    BAL,
    AssertionDatabase,
    ConsistencySpec,
    FunctionAssertion,
    ModelAssertion,
    MonitoringReport,
    StreamItem,
    harvest_weak_labels,
)
from repro.domains.registry import Domain, RetrainableModel, get_domain
from repro.improve import ImproveConfig, ImprovementLoop
from repro.serve import MonitorService, ServiceConfig

__version__ = "1.2.0"

__all__ = [
    "OMG",
    "BAL",
    "AssertionDatabase",
    "ConsistencySpec",
    "Domain",
    "FunctionAssertion",
    "ImproveConfig",
    "ImprovementLoop",
    "ModelAssertion",
    "MonitorService",
    "MonitoringReport",
    "RetrainableModel",
    "ServiceConfig",
    "StreamItem",
    "get_domain",
    "harvest_weak_labels",
    "__version__",
]
