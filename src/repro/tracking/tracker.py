"""Greedy frame-to-frame IoU tracker."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.box2d import Box2D
from repro.geometry.iou import iou_matrix


@dataclass(frozen=True)
class TrackedBox:
    """A box annotated with its track identifier and frame index."""

    track_id: int
    frame_index: int
    box: Box2D


@dataclass
class Track:
    """All observations assigned to one identifier, in frame order."""

    track_id: int
    observations: list = field(default_factory=list)

    @property
    def first_frame(self) -> int:
        return self.observations[0].frame_index

    @property
    def last_frame(self) -> int:
        return self.observations[-1].frame_index

    @property
    def length(self) -> int:
        return len(self.observations)

    def frames(self) -> list[int]:
        return [obs.frame_index for obs in self.observations]


class IoUTracker:
    """Greedy IoU matching of detections across consecutive frames.

    Each frame's boxes are matched to the previous frame's *active* tracks
    by descending IoU; unmatched boxes open new tracks; tracks unmatched
    for more than ``max_age`` frames are retired. This is deliberately the
    simplest credible tracker — the consistency API must work with
    identifiers of exactly this quality (occasional id switches), which is
    why Table 3 reports precision both with and without identifier errors.
    """

    def __init__(self, iou_threshold: float = 0.25, max_age: int = 2) -> None:
        if not 0.0 < iou_threshold <= 1.0:
            raise ValueError(f"iou_threshold must be in (0, 1], got {iou_threshold}")
        if max_age < 0:
            raise ValueError(f"max_age must be >= 0, got {max_age}")
        self.iou_threshold = iou_threshold
        self.max_age = max_age
        self._next_id = 0
        self._active: dict = {}  # track_id -> (last_frame, last_box)
        self.tracks: dict = {}  # track_id -> Track

    def reset(self) -> None:
        """Forget all tracks (e.g., at a scene cut)."""
        self._next_id = 0
        self._active = {}
        self.tracks = {}

    def update(self, frame_index: int, boxes: list) -> list:
        """Assign identifiers to one frame's boxes.

        Returns a list of :class:`TrackedBox`, aligned with ``boxes``.
        """
        # Retire stale tracks first.
        self._active = {
            tid: (last, box)
            for tid, (last, box) in self._active.items()
            if frame_index - last <= self.max_age
        }

        assigned: dict = {}
        if boxes and self._active:
            track_ids = list(self._active.keys())
            track_boxes = [self._active[tid][1] for tid in track_ids]
            iou = iou_matrix(boxes, track_boxes).copy()
            while True:
                flat = int(np.argmax(iou))
                i, j = np.unravel_index(flat, iou.shape)
                if iou[i, j] < self.iou_threshold:
                    break
                assigned[int(i)] = track_ids[j]
                iou[i, :] = -1.0
                iou[:, j] = -1.0

        result = []
        for i, box in enumerate(boxes):
            tid = assigned.get(i)
            if tid is None:
                tid = self._next_id
                self._next_id += 1
                self.tracks[tid] = Track(track_id=tid)
            obs = TrackedBox(track_id=tid, frame_index=frame_index, box=box)
            self.tracks[tid].observations.append(obs)
            self._active[tid] = (frame_index, box)
            result.append(obs)
        return result

    def get_state(self) -> dict:
        """JSON-encodable matching state (for monitor snapshots).

        Captures the next track id and the active tracks' last boxes —
        everything :meth:`update` reads — as primitives. The accumulated
        per-track observation history (:attr:`tracks`) is *not* included:
        it grows with the stream and never influences matching, so a
        restored tracker assigns bit-identical ids while starting a fresh
        history.
        """
        return {
            "next_id": self._next_id,
            "active": [
                [
                    int(tid),
                    int(last),
                    [box.x1, box.y1, box.x2, box.y2, box.label, box.score],
                ]
                for tid, (last, box) in self._active.items()
            ],
        }

    def set_state(self, state: dict) -> None:
        """Restore matching state captured by :meth:`get_state`."""
        self.reset()
        self._next_id = int(state["next_id"])
        for tid, last, (x1, y1, x2, y2, label, score) in state["active"]:
            box = Box2D(float(x1), float(y1), float(x2), float(y2), str(label), float(score))
            self._active[int(tid)] = (int(last), box)
            self.tracks[int(tid)] = Track(track_id=int(tid))

    def run(self, frames: list) -> list:
        """Track a whole video: ``frames`` is a list of per-frame box lists.

        Returns a parallel list of per-frame :class:`TrackedBox` lists.
        The tracker is reset first, so ``run`` is idempotent.
        """
        self.reset()
        return [self.update(idx, boxes) for idx, boxes in enumerate(frames)]

    def completed_tracks(self, min_length: int = 1) -> list:
        """All tracks with at least ``min_length`` observations."""
        return [t for t in self.tracks.values() if t.length >= min_length]
