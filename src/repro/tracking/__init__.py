"""Greedy IoU tracking: identifier assignment for consistency assertions.

The video-analytics consistency assertions (``flicker``/``appear``) need a
per-object identifier, but street video has no globally unique id; the
paper "assign[s] a new identifier for each box that appears and assign[s]
the same identifier as it persists through the video" (§4.1). This package
implements that tracker, which is also the "automated method" behind the
human-label validation experiment (Table 6).
"""

from repro.tracking.tracker import IoUTracker, Track, TrackedBox

__all__ = ["IoUTracker", "Track", "TrackedBox"]
