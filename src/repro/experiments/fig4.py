"""Figures 4 and 9: active learning on night-street and the AV world.

Compares the paper's four §5.4 strategies — random, uncertainty (least
confident), uniform sampling from assertion-triggered data, and BAL —
over five rounds of bulk labeling. Figure 4 shows rounds 2–5; Figure 9
(appendix) shows all rounds; this harness records every round, so one run
regenerates both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.active_learning import compare_strategies
from repro.core.strategies import (
    BALStrategy,
    RandomStrategy,
    UncertaintyStrategy,
    UniformAssertionStrategy,
)
from repro.experiments.reporting import format_float, format_table
from repro.utils.rng import as_generator

#: Strategy display order, as in the paper's legends.
STRATEGY_ORDER = ("random", "uncertainty", "uniform_ma", "bal")


@dataclass
class Fig4Result:
    """Averaged learning curves per strategy for one domain."""

    domain: str
    curves: dict = field(default_factory=dict)  # name -> list of per-round metrics
    initial_metric: float = 0.0
    budget_per_round: int = 0
    metric_name: str = "mAP"

    def final(self, strategy: str) -> float:
        return self.curves[strategy][-1]

    def labels_to_reach(self, strategy: str, target: float) -> "int | None":
        """Cumulative labels needed for a strategy to reach ``target``."""
        for round_index, metric in enumerate(self.curves[strategy]):
            if metric >= target:
                return (round_index + 1) * self.budget_per_round
        return None

    def format_table(self) -> str:
        n_rounds = len(next(iter(self.curves.values())))
        rows = []
        for round_index in range(n_rounds):
            rows.append(
                [round_index + 1]
                + [format_float(self.curves[s][round_index]) for s in STRATEGY_ORDER if s in self.curves]
            )
        headers = ["Round"] + [s for s in STRATEGY_ORDER if s in self.curves]
        title = (
            f"Figure 4/9 ({self.domain}): {self.metric_name} per round "
            f"(pretrained = {format_float(self.initial_metric)}, "
            f"{self.budget_per_round} labels/round)"
        )
        return format_table(headers, rows, title=title)


def _strategies(seed, fallback: str = "random") -> list:
    rng = as_generator(seed)
    children = rng.spawn(3)
    return [
        RandomStrategy(seed=children[0]),
        UncertaintyStrategy(),
        UniformAssertionStrategy(seed=children[1]),
        BALStrategy(seed=children[2], fallback=fallback),
    ]


def run_fig4_video(
    seed: int = 0,
    *,
    n_rounds: int = 5,
    budget_per_round: int = 25,
    n_pool: int = 500,
    n_test: int = 150,
    n_trials: int = 2,
    fine_tune_epochs: int = 8,
) -> Fig4Result:
    """Figure 4(a)/9(a): night-street. The paper ran 2 trials (App. C)."""
    from repro.domains.video import VideoActiveLearningTask, make_video_task_data

    rng = as_generator(seed)
    trial_seeds = rng.integers(0, 2**31 - 1, size=n_trials)

    def task_factory(trial: int):
        data = make_video_task_data(int(trial_seeds[trial]), n_pool=n_pool, n_test=n_test)
        return VideoActiveLearningTask(
            data, fine_tune_epochs=fine_tune_epochs, seed=int(trial_seeds[trial])
        )

    results = compare_strategies(
        task_factory,
        _strategies(rng.spawn(1)[0]),
        n_rounds=n_rounds,
        budget_per_round=budget_per_round,
        n_trials=n_trials,
    )
    return Fig4Result(
        domain="night-street",
        curves={name: result.metrics for name, result in results.items()},
        initial_metric=float(np.mean([r.initial_metric for r in results.values()])),
        budget_per_round=budget_per_round,
        metric_name="mAP%",
    )


def run_fig4_av(
    seed: int = 0,
    *,
    n_rounds: int = 5,
    budget_per_round: int = 25,
    n_bootstrap_scenes: int = 10,
    n_pool_scenes: int = 20,
    n_test_scenes: int = 6,
    n_trials: int = 2,
    fine_tune_epochs: int = 8,
) -> Fig4Result:
    """Figure 4(b)/9(b): the AV world (NuScenes stand-in)."""
    from repro.domains.av import AVActiveLearningTask, make_av_task_data

    rng = as_generator(seed)
    trial_seeds = rng.integers(0, 2**31 - 1, size=n_trials)

    def task_factory(trial: int):
        data = make_av_task_data(
            int(trial_seeds[trial]),
            n_bootstrap_scenes=n_bootstrap_scenes,
            n_pool_scenes=n_pool_scenes,
            n_test_scenes=n_test_scenes,
        )
        return AVActiveLearningTask(
            data, fine_tune_epochs=fine_tune_epochs, seed=int(trial_seeds[trial])
        )

    results = compare_strategies(
        task_factory,
        _strategies(rng.spawn(1)[0]),
        n_rounds=n_rounds,
        budget_per_round=budget_per_round,
        n_trials=n_trials,
    )
    return Fig4Result(
        domain="nuscenes",
        curves={name: result.metrics for name, result in results.items()},
        initial_metric=float(np.mean([r.initial_metric for r in results.values()])),
        budget_per_round=budget_per_round,
        metric_name="mAP%",
    )
