"""Figures 4 and 9: active learning on night-street and the AV world.

Compares the paper's four §5.4 strategies — random, uncertainty (least
confident), uniform sampling from assertion-triggered data, and BAL —
over five rounds of bulk labeling. Figure 4 shows rounds 2–5; Figure 9
(appendix) shows all rounds; this harness records every round, so one run
regenerates both.

Execution decomposes into independent ``(strategy, trial)`` units: each
unit derives its task and strategy randomness from
:mod:`repro.core.seeding` child seeds, so the registry runner can fan
units across processes (``--jobs N``) and the averaged curves are
bit-identical to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.active_learning import run_active_learning
from repro.core.seeding import derive_rng, spawn_seeds
from repro.core.strategies import (
    BALStrategy,
    RandomStrategy,
    UncertaintyStrategy,
    UniformAssertionStrategy,
)
from repro.experiments.reporting import (
    format_float,
    format_table,
    register_result_type,
)
from repro.experiments.runner import get_experiment, register_experiment

#: Strategy display order, as in the paper's legends.
STRATEGY_ORDER = ("random", "uncertainty", "uniform_ma", "bal")


@register_result_type
@dataclass
class Fig4Result:
    """Averaged learning curves per strategy for one domain."""

    domain: str
    curves: dict = field(default_factory=dict)  # name -> list of per-round metrics
    initial_metric: float = 0.0
    budget_per_round: int = 0
    metric_name: str = "mAP"

    def final(self, strategy: str) -> float:
        return self.curves[strategy][-1]

    def labels_to_reach(self, strategy: str, target: float) -> "int | None":
        """Cumulative labels needed for a strategy to reach ``target``."""
        for round_index, metric in enumerate(self.curves[strategy]):
            if metric >= target:
                return (round_index + 1) * self.budget_per_round
        return None

    def format_table(self) -> str:
        n_rounds = len(next(iter(self.curves.values())))
        rows = []
        for round_index in range(n_rounds):
            rows.append(
                [round_index + 1]
                + [format_float(self.curves[s][round_index]) for s in STRATEGY_ORDER if s in self.curves]
            )
        headers = ["Round"] + [s for s in STRATEGY_ORDER if s in self.curves]
        title = (
            f"Figure 4/9 ({self.domain}): {self.metric_name} per round "
            f"(pretrained = {format_float(self.initial_metric)}, "
            f"{self.budget_per_round} labels/round)"
        )
        return format_table(headers, rows, title=title)


# ----------------------------------------------------------------------
# (strategy, trial) unit machinery, shared with fig5
# ----------------------------------------------------------------------
def make_strategy(name: str, rng, fallback: str = "random"):
    """Build one §5.4 strategy seeded with ``rng``."""
    if name == "random":
        return RandomStrategy(seed=rng)
    if name == "uncertainty":
        return UncertaintyStrategy()
    if name == "uniform_ma":
        return UniformAssertionStrategy(seed=rng)
    if name == "bal":
        return BALStrategy(seed=rng, fallback=fallback)
    raise ValueError(f"unknown strategy {name!r}")


def active_learning_units(config, strategy_names=STRATEGY_ORDER) -> list:
    """One unit per (trial, strategy); trial-major so first-seen strategy
    order in the combined curves matches the paper's legend order."""
    return [
        {"trial": trial, "strategy": name}
        for trial in range(config.n_trials)
        for name in strategy_names
    ]


def run_active_learning_unit(
    experiment: str, config, unit: dict, task_factory, fallback: str = "random"
) -> dict:
    """One independent (strategy, trial) learning curve.

    The trial's task seed comes from :func:`spawn_seeds` (shared by every
    strategy in that trial, as when the paper evaluates all strategies on
    the same collected pool); the strategy's own stream is derived from
    ``(seed, experiment, strategy, trial)`` so no unit depends on any
    other's generator state.
    """
    trial = unit["trial"]
    trial_seed = spawn_seeds(config.seed, config.n_trials)[trial]
    strategy = make_strategy(
        unit["strategy"],
        derive_rng(config.seed, experiment, unit["strategy"], trial),
        fallback=fallback,
    )
    task = task_factory(config, trial_seed)
    run = run_active_learning(
        task,
        strategy,
        n_rounds=config.n_rounds,
        budget_per_round=config.budget_per_round,
    )
    return {
        "metrics": [float(m) for m in run.metrics],
        "initial": float(run.initial_metric),
    }


def combine_active_learning(config, units, partials, *, domain, metric_name) -> Fig4Result:
    """Average per-strategy curves over trials into a :class:`Fig4Result`."""
    by_strategy: dict = {}
    for unit, partial in zip(units, partials):
        by_strategy.setdefault(unit["strategy"], []).append(partial["metrics"])
    curves = {
        name: [float(v) for v in np.mean(np.asarray(trials, dtype=np.float64), axis=0)]
        for name, trials in by_strategy.items()
    }
    return Fig4Result(
        domain=domain,
        curves=curves,
        initial_metric=float(np.mean([p["initial"] for p in partials])),
        budget_per_round=config.budget_per_round,
        metric_name=metric_name,
    )


# ----------------------------------------------------------------------
# Figure 4(a)/9(a): night-street
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig4VideoConfig:
    """Figure 4(a)/9(a) configuration (paper: 2 trials, Appendix C)."""

    seed: int = 0
    n_rounds: int = 5
    budget_per_round: int = 25
    n_pool: int = 500
    n_test: int = 150
    n_trials: int = 2
    fine_tune_epochs: int = 8


def _video_task(config, trial_seed: int):
    from repro.domains.video import VideoActiveLearningTask, make_video_task_data

    data = make_video_task_data(trial_seed, n_pool=config.n_pool, n_test=config.n_test)
    return VideoActiveLearningTask(
        data, fine_tune_epochs=config.fine_tune_epochs, seed=trial_seed
    )


def _fig4_video_combine(config, units, partials) -> Fig4Result:
    return combine_active_learning(
        config, units, partials, domain="night-street", metric_name="mAP%"
    )


@register_experiment(
    "fig4_video",
    config=Fig4VideoConfig,
    artifact="Figure 4(a)/9(a)",
    description="Active learning on night-street: random/uncertainty/uniform-MA/BAL",
    units=active_learning_units,
    combine=_fig4_video_combine,
)
def _fig4_video_unit(config, unit):
    return run_active_learning_unit("fig4_video", config, unit, _video_task)


def run_fig4_video(
    seed: int = 0,
    *,
    n_rounds: int = 5,
    budget_per_round: int = 25,
    n_pool: int = 500,
    n_test: int = 150,
    n_trials: int = 2,
    fine_tune_epochs: int = 8,
    jobs: int = 1,
) -> Fig4Result:
    """Figure 4(a)/9(a): night-street. The paper ran 2 trials (App. C)."""
    config = Fig4VideoConfig(
        seed=seed,
        n_rounds=n_rounds,
        budget_per_round=budget_per_round,
        n_pool=n_pool,
        n_test=n_test,
        n_trials=n_trials,
        fine_tune_epochs=fine_tune_epochs,
    )
    return get_experiment("fig4_video").run(config, jobs=jobs)


# ----------------------------------------------------------------------
# Figure 4(b)/9(b): the AV world
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig4AVConfig:
    """Figure 4(b)/9(b) configuration (NuScenes stand-in)."""

    seed: int = 0
    n_rounds: int = 5
    budget_per_round: int = 25
    n_bootstrap_scenes: int = 10
    n_pool_scenes: int = 20
    n_test_scenes: int = 6
    n_trials: int = 2
    fine_tune_epochs: int = 8


def _av_task(config, trial_seed: int):
    from repro.domains.av import AVActiveLearningTask, make_av_task_data

    data = make_av_task_data(
        trial_seed,
        n_bootstrap_scenes=config.n_bootstrap_scenes,
        n_pool_scenes=config.n_pool_scenes,
        n_test_scenes=config.n_test_scenes,
    )
    return AVActiveLearningTask(
        data, fine_tune_epochs=config.fine_tune_epochs, seed=trial_seed
    )


def _fig4_av_combine(config, units, partials) -> Fig4Result:
    return combine_active_learning(
        config, units, partials, domain="nuscenes", metric_name="mAP%"
    )


@register_experiment(
    "fig4_av",
    config=Fig4AVConfig,
    artifact="Figure 4(b)/9(b)",
    description="Active learning on the AV world: random/uncertainty/uniform-MA/BAL",
    units=active_learning_units,
    combine=_fig4_av_combine,
)
def _fig4_av_unit(config, unit):
    return run_active_learning_unit("fig4_av", config, unit, _av_task)


def run_fig4_av(
    seed: int = 0,
    *,
    n_rounds: int = 5,
    budget_per_round: int = 25,
    n_bootstrap_scenes: int = 10,
    n_pool_scenes: int = 20,
    n_test_scenes: int = 6,
    n_trials: int = 2,
    fine_tune_epochs: int = 8,
    jobs: int = 1,
) -> Fig4Result:
    """Figure 4(b)/9(b): the AV world (NuScenes stand-in)."""
    config = Fig4AVConfig(
        seed=seed,
        n_rounds=n_rounds,
        budget_per_round=budget_per_round,
        n_bootstrap_scenes=n_bootstrap_scenes,
        n_pool_scenes=n_pool_scenes,
        n_test_scenes=n_test_scenes,
        n_trials=n_trials,
        fine_tune_epochs=fine_tune_epochs,
    )
    return get_experiment("fig4_av").run(config, jobs=jobs)
