"""Figure 5: active learning with a single assertion (ECG).

"Due to the limited data quantities for the ECG dataset, we were unable
to deploy more than one assertion. … data collection with a single model
assertion generally matches or outperforms both uncertainty and random
sampling" (§5.4). Five rounds of 100 records, averaged over 8 trials
(Appendix C); BAL falls back to uncertainty sampling when the single
assertion stalls, as the paper allows. Trials fan out as independent
``(strategy, trial)`` units, like Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.fig4 import (
    Fig4Result,
    active_learning_units,
    combine_active_learning,
    run_active_learning_unit,
)
from repro.experiments.runner import get_experiment, register_experiment

#: Figure 5 compares three strategies (no uniform-MA with one assertion).
FIG5_STRATEGIES = ("random", "uncertainty", "bal")


@dataclass(frozen=True)
class Fig5Config:
    """Figure 5 configuration (paper: 8 trials, Appendix C)."""

    seed: int = 0
    n_rounds: int = 5
    budget_per_round: int = 100
    n_train: int = 120
    n_pool: int = 2000
    n_test: int = 500
    n_trials: int = 8
    fine_tune_epochs: int = 15


def _ecg_task(config, trial_seed: int):
    from repro.domains.ecg import ECGActiveLearningTask, make_ecg_task_data

    data = make_ecg_task_data(
        trial_seed, n_train=config.n_train, n_pool=config.n_pool, n_test=config.n_test
    )
    return ECGActiveLearningTask(
        data, fine_tune_epochs=config.fine_tune_epochs, seed=trial_seed
    )


def _fig5_units(config) -> list:
    return active_learning_units(config, strategy_names=FIG5_STRATEGIES)


def _fig5_combine(config, units, partials) -> Fig4Result:
    return combine_active_learning(
        config, units, partials, domain="ecg", metric_name="accuracy%"
    )


@register_experiment(
    "fig5",
    config=Fig5Config,
    artifact="Figure 5",
    description="Active learning on ECG with a single assertion: random/uncertainty/BAL",
    units=_fig5_units,
    combine=_fig5_combine,
)
def _fig5_unit(config, unit):
    return run_active_learning_unit(
        "fig5", config, unit, _ecg_task, fallback="uncertainty"
    )


def run_fig5(
    seed: int = 0,
    *,
    n_rounds: int = 5,
    budget_per_round: int = 100,
    n_pool: int = 2000,
    n_test: int = 500,
    n_trials: int = 8,
    fine_tune_epochs: int = 15,
    jobs: int = 1,
) -> Fig4Result:
    """Figure 5: random vs uncertainty vs BAL on the ECG task."""
    config = Fig5Config(
        seed=seed,
        n_rounds=n_rounds,
        budget_per_round=budget_per_round,
        n_pool=n_pool,
        n_test=n_test,
        n_trials=n_trials,
        fine_tune_epochs=fine_tune_epochs,
    )
    return get_experiment("fig5").run(config, jobs=jobs)
