"""Figure 5: active learning with a single assertion (ECG).

"Due to the limited data quantities for the ECG dataset, we were unable
to deploy more than one assertion. … data collection with a single model
assertion generally matches or outperforms both uncertainty and random
sampling" (§5.4). Five rounds of 100 records, averaged over 8 trials
(Appendix C); BAL falls back to uncertainty sampling when the single
assertion stalls, as the paper allows.
"""

from __future__ import annotations

import numpy as np

from repro.core.active_learning import compare_strategies
from repro.core.strategies import BALStrategy, RandomStrategy, UncertaintyStrategy
from repro.experiments.fig4 import Fig4Result
from repro.utils.rng import as_generator


def run_fig5(
    seed: int = 0,
    *,
    n_rounds: int = 5,
    budget_per_round: int = 100,
    n_pool: int = 2000,
    n_test: int = 500,
    n_trials: int = 8,
    fine_tune_epochs: int = 15,
) -> Fig4Result:
    """Figure 5: random vs uncertainty vs BAL on the ECG task."""
    from repro.domains.ecg import ECGActiveLearningTask, make_ecg_task_data

    rng = as_generator(seed)
    trial_seeds = rng.integers(0, 2**31 - 1, size=n_trials)

    def task_factory(trial: int):
        data = make_ecg_task_data(
            int(trial_seeds[trial]), n_train=120, n_pool=n_pool, n_test=n_test
        )
        return ECGActiveLearningTask(
            data, fine_tune_epochs=fine_tune_epochs, seed=int(trial_seeds[trial])
        )

    children = rng.spawn(2)
    strategies = [
        RandomStrategy(seed=children[0]),
        UncertaintyStrategy(),
        BALStrategy(seed=children[1], fallback="uncertainty"),
    ]
    results = compare_strategies(
        task_factory,
        strategies,
        n_rounds=n_rounds,
        budget_per_round=budget_per_round,
        n_trials=n_trials,
    )
    return Fig4Result(
        domain="ecg",
        curves={name: result.metrics for name, result in results.items()},
        initial_metric=float(np.mean([r.initial_metric for r in results.values()])),
        budget_per_round=budget_per_round,
        metric_name="accuracy%",
    )
