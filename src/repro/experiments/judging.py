"""Ground-truth judging helpers shared by Table 3 and Figure 3.

The six ``judge_*`` functions in :mod:`repro.experiments.table3` all
follow the same recipe — sample up to *k* fire units, match each against
simulator ground truth by IoU, count errors — and Figure 3 reuses the
same matching predicates to decide which flagged boxes are *true*
errors. The shared pieces live here so each judge is only the
domain-specific part.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.iou import iou_matrix


def sample_units(rng, units: list, k: int) -> list:
    """Sample up to ``k`` fire units without replacement (all if fewer)."""
    if len(units) <= k:
        return list(units)
    picks = rng.choice(len(units), size=k, replace=False)
    return [units[int(i)] for i in picks]


def box_is_error(box, frame_gt, claimed: set, iou_threshold: float = 0.5) -> bool:
    """True when ``box`` has no unclaimed ground-truth match.

    ``claimed`` accumulates matched ground-truth indices across calls so
    a duplicate detection cannot "re-claim" an already-matched object —
    callers iterate boxes in detection-score order.
    """
    if not frame_gt:
        return True
    ious = iou_matrix([box], frame_gt)[0]
    order = np.argsort(-ious)
    for j in order:
        if ious[j] < iou_threshold:
            break
        if j not in claimed:
            claimed.add(int(j))
            return False
    return True


def gt_vehicle_at(frames, pos, box, iou_threshold=0.3):
    """The ground-truth vehicle overlapping ``box`` in frame ``pos``."""
    best = None
    best_iou = iou_threshold
    for vehicle in frames[pos].vehicles:
        value = iou_matrix([box], [vehicle.box])[0, 0]
        if value >= best_iou:
            best, best_iou = vehicle, value
    return best


def detected_at(items, pos, box, exclude_track=None, iou_threshold=0.3):
    """Whether any detection overlaps ``box`` in frame ``pos``."""
    for output in items[pos].outputs:
        if exclude_track is not None and output.get("track_id") == exclude_track:
            continue
        if iou_matrix([box], [output["box"]])[0, 0] >= iou_threshold:
            return True
    return False
