"""Unified reporting path for experiment results: text tables + JSON.

Every experiment result renders two ways through this module:

- **text** — :func:`format_table` / :func:`format_float` produce the
  aligned tables the paper reports, via each result's ``format_table()``.
- **JSON** — :func:`to_jsonable` / :func:`from_jsonable` round-trip any
  registered result dataclass losslessly (floats survive bit-exactly via
  ``repr``-based JSON encoding), which is what the artifact cache in
  :mod:`repro.experiments.runner` and ``python -m repro`` persist.

Result dataclasses opt in with :func:`register_result_type` (usually as a
class decorator); nested dataclasses, tuples, and numpy arrays/scalars
are handled transparently. The codec itself lives in
:mod:`repro.utils.codec` (it also backs the serving layer's monitor
snapshots); this module re-exports it so existing imports keep working.
"""

from __future__ import annotations

from repro.utils.codec import (  # noqa: F401  (re-exported API)
    from_jsonable,
    register_result_type,
    registered_result_types,
    to_jsonable,
)
from repro.utils.tables import format_float, format_table  # noqa: F401


def render_result(result) -> str:
    """The unified text rendering: every result's ``format_table()``."""
    return result.format_table()
