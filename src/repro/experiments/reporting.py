"""Unified reporting path for experiment results: text tables + JSON.

Every experiment result renders two ways through this module:

- **text** — :func:`format_table` / :func:`format_float` produce the
  aligned tables the paper reports, via each result's ``format_table()``.
- **JSON** — :func:`to_jsonable` / :func:`from_jsonable` round-trip any
  registered result dataclass losslessly (floats survive bit-exactly via
  ``repr``-based JSON encoding), which is what the artifact cache in
  :mod:`repro.experiments.runner` and ``python -m repro`` persist.

Result dataclasses opt in with :func:`register_result_type` (usually as a
class decorator); nested dataclasses, tuples, and numpy arrays/scalars
are handled transparently.
"""

from __future__ import annotations

import dataclasses

import numpy as np

#: Registered dataclass types, by class name — the JSON codec's universe.
_RESULT_TYPES: dict = {}


def register_result_type(cls):
    """Register ``cls`` (a dataclass) with the JSON codec; returns it."""
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    _RESULT_TYPES[cls.__name__] = cls
    return cls


def registered_result_types() -> dict:
    """Name → class for every codec-registered result dataclass."""
    return dict(_RESULT_TYPES)


def to_jsonable(obj):
    """Encode ``obj`` into JSON-serializable primitives, losslessly.

    Handles registered dataclasses (tagged with ``__dataclass__``),
    tuples (tagged, so they decode back as tuples), numpy arrays and
    scalars, and plain dict/list/str/int/float/bool/None.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        name = type(obj).__name__
        if name not in _RESULT_TYPES:
            raise TypeError(
                f"{name} is not registered with the result codec; "
                "decorate it with @register_result_type"
            )
        return {
            "__dataclass__": name,
            "fields": {
                f.name: to_jsonable(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, np.ndarray):
        return {
            "__ndarray__": {"dtype": str(obj.dtype), "data": obj.tolist()},
        }
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, tuple):
        return {"__tuple__": [to_jsonable(v) for v in obj]}
    if isinstance(obj, list):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, dict):
        encoded = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(f"JSON object keys must be str, got {key!r}")
            encoded[key] = to_jsonable(value)
        return encoded
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(f"cannot encode {type(obj).__name__} for the result codec")


def from_jsonable(obj):
    """Inverse of :func:`to_jsonable`."""
    if isinstance(obj, dict):
        if "__dataclass__" in obj:
            name = obj["__dataclass__"]
            cls = _RESULT_TYPES.get(name)
            if cls is None:
                raise TypeError(f"unknown result dataclass {name!r} in payload")
            fields = {k: from_jsonable(v) for k, v in obj["fields"].items()}
            return cls(**fields)
        if "__ndarray__" in obj:
            spec = obj["__ndarray__"]
            return np.asarray(spec["data"], dtype=np.dtype(spec["dtype"]))
        if "__tuple__" in obj:
            return tuple(from_jsonable(v) for v in obj["__tuple__"])
        return {k: from_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [from_jsonable(v) for v in obj]
    return obj


def render_result(result) -> str:
    """The unified text rendering: every result's ``format_table()``."""
    return result.format_table()


def format_table(headers: list, rows: list, title: str = "") -> str:
    """Render rows as an aligned, pipe-free text table.

    ``rows`` is a list of tuples/lists; every cell is ``str()``-ed.
    """
    table = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in table) for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(table[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in table[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_float(value: float, digits: int = 1) -> str:
    """Fixed-point formatting that tolerates None/NaN."""
    if value is None or value != value:
        return "n/a"
    return f"{value:.{digits}f}"
