"""Table 3: precision of the deployed assertions.

"We randomly sampled 50 data points that triggered each assertion and
manually checked whether that data point had an incorrect output from the
ML model" (§5.2). Our simulators know the ground truth, so the manual
check becomes code. For consistency assertions the paper reports two
columns: precision counting errors in *either* the identification
function or the model outputs, and precision counting model-output errors
only; custom assertions get one column (N/A for the identifier).

Fire units per assertion:

- ``multibox``: a flagged box (member of an overlapping triple); a model
  error when it fails one-to-one matching against ground truth.
- ``flicker``: a gap violation; a model error when a visible ground-truth
  vehicle overlaps the imputed box in the gap (a real miss) or when the
  surrounding track is itself spurious; an identifier error when the
  object *was* detected in the gap under a different track id.
- ``appear``: a run violation; a model error when the run's boxes are
  spurious, or they match an object that persists beyond the run yet went
  undetected there; an identifier error when the object persists and was
  detected under a different id.
- ``agree``: a disagreeing output; a model error when the LIDAR box is a
  false positive, the camera missed a camera-visible vehicle, the camera
  box is a false positive, or the LIDAR missed an in-range vehicle.
- ``ECG``: a flagged record; any oscillation within a constant-rhythm
  record implies at least one wrong window.
- ``news``: a deviating face output; a model error when the predicted
  attribute differs from ground truth; an identifier error when the scene
  cluster mixes two true people.

The shared sampling and IoU ground-truth matching live in
:mod:`repro.experiments.judging`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.iou import iou_matrix
from repro.experiments.judging import (
    box_is_error,
    detected_at,
    gt_vehicle_at,
    sample_units,
)
from repro.experiments.reporting import (
    format_table,
    register_result_type,
)
from repro.experiments.runner import get_experiment, register_experiment
from repro.utils.rng import as_generator


@register_result_type
@dataclass(frozen=True)
class PrecisionRow:
    """One Table 3 row."""

    assertion: str
    n_sampled: int
    precision_id_and_output: "float | None"  # None = N/A (custom assertion)
    precision_output_only: float


@register_result_type
@dataclass
class Table3Result:
    rows: list = field(default_factory=list)

    def row(self, name: str) -> PrecisionRow:
        for row in self.rows:
            if row.assertion == name:
                return row
        raise KeyError(name)

    def format_table(self) -> str:
        def pct(x):
            return "N/A" if x is None else f"{100 * x:.0f}%"

        return format_table(
            ["Assertion", "n", "Precision (identifier and output)", "Precision (model output only)"],
            [
                (r.assertion, r.n_sampled, pct(r.precision_id_and_output), pct(r.precision_output_only))
                for r in self.rows
            ],
            title="Table 3: assertion precision on sampled fires",
        )


def _row(
    assertion: str, n: int, output_errors: int, either_errors: "int | None" = None
) -> PrecisionRow:
    """Build a row from error counts (``either_errors=None`` → custom, N/A)."""
    if either_errors is None:
        either = None
    else:
        either = either_errors / n if n else 0.0
    return PrecisionRow(
        assertion=assertion,
        n_sampled=n,
        precision_id_and_output=either,
        precision_output_only=output_errors / n if n else 0.0,
    )


# ----------------------------------------------------------------------
# Video: multibox / flicker / appear
# ----------------------------------------------------------------------
def judge_multibox(pipeline, items, frames, rng, n_samples: int = 50) -> PrecisionRow:
    """Judge sampled multibox fires (frames) against ground truth.

    A fire is a data point (frame); it is a true positive when any of its
    flagged boxes fails one-to-one matching — i.e., the frame genuinely
    contains a duplicate or spurious detection.
    """
    units = [pos for pos, item in enumerate(items) if pipeline.multibox.flagged_output_indices(item)]
    sampled = sample_units(rng, units, n_samples)
    errors = 0
    for pos in sampled:
        item = items[pos]
        flagged = set(pipeline.multibox.flagged_output_indices(item))
        gt = frames[pos].ground_truth
        # Claim ground truth in detection-score order so a duplicate
        # cannot "re-claim" an already-matched object.
        claimed: set = set()
        frame_has_error = False
        for out_idx in sorted(
            range(len(item.outputs)), key=lambda i: -item.outputs[i]["score"]
        ):
            box = item.outputs[out_idx]["box"]
            if box_is_error(box, gt, claimed) and out_idx in flagged:
                frame_has_error = True
        errors += frame_has_error
    return _row("multibox", len(sampled), errors)


def judge_flicker(pipeline, items, frames, rng, n_samples: int = 50) -> PrecisionRow:
    """Judge sampled flicker (gap) violations."""
    from repro.core.consistency import group_observations

    violations = pipeline.flicker.violations(items)
    groups = group_observations(pipeline.spec, items)
    sampled = sample_units(rng, violations, n_samples)
    output_errors = 0
    either_errors = 0
    for violation in sampled:
        observations = groups.get(violation.identifier, [])
        mid = (violation.start_pos + violation.end_pos) // 2
        imputed = pipeline.spec.weak_label_fn(violation.identifier, items[mid], observations)
        if imputed is None:
            # Boundary gap with no surrounding boxes — treat the track's
            # last box as the reference location.
            reference = observations[-1].output["box"] if observations else None
        else:
            reference = imputed["box"]
        if reference is None:
            continue
        gt_vehicle = gt_vehicle_at(frames, mid, reference)
        if gt_vehicle is not None:
            # A real object sits in the gap: either it went undetected
            # (model miss) or it was detected under another identifier.
            if detected_at(items, mid, gt_vehicle.box, exclude_track=violation.identifier):
                either_errors += 1  # identifier error only
            else:
                output_errors += 1
                either_errors += 1
        else:
            # No object in the gap: the surrounding track is spurious,
            # which is itself a model error (its detections are FPs).
            track_boxes = [o.output["box"] for o in observations[-2:]]
            spurious = all(
                gt_vehicle_at(frames, o.item_index, b, iou_threshold=0.5) is None
                for o, b in zip(observations[-2:], track_boxes)
            )
            if spurious:
                output_errors += 1
                either_errors += 1
    return _row("flicker", len(sampled), output_errors, either_errors)


def judge_appear(pipeline, items, frames, rng, n_samples: int = 50) -> PrecisionRow:
    """Judge sampled appear (short-run) violations."""
    violations = pipeline.appear.violations(items)
    sampled = sample_units(rng, violations, n_samples)
    output_errors = 0
    either_errors = 0
    for violation in sampled:
        run_boxes = []
        for pos in range(violation.start_pos, violation.end_pos + 1):
            for output in items[pos].outputs:
                if output.get("track_id") == violation.identifier:
                    run_boxes.append((pos, output["box"]))
        if not run_boxes:
            continue
        mid_pos, mid_box = run_boxes[len(run_boxes) // 2]
        gt_vehicle = gt_vehicle_at(frames, mid_pos, mid_box, iou_threshold=0.5)
        if gt_vehicle is None:
            output_errors += 1  # spurious short-lived detection
            either_errors += 1
            continue
        # Real object: does it persist beyond the run?
        neighbors = [violation.start_pos - 1, violation.end_pos + 1]
        persisted = False
        missed = False
        for pos in neighbors:
            if not 0 <= pos < len(frames):
                continue
            same = [v for v in frames[pos].vehicles if v.object_id == gt_vehicle.object_id]
            if same:
                persisted = True
                if not detected_at(items, pos, same[0].box, iou_threshold=0.3):
                    missed = True
        if persisted and missed:
            output_errors += 1  # the model lost a persistent object
            either_errors += 1
        elif persisted:
            either_errors += 1  # detected under a different id: identifier error
        # else: the object genuinely appeared briefly — a false fire.
    return _row("appear", len(sampled), output_errors, either_errors)


# ----------------------------------------------------------------------
# AV: agree
# ----------------------------------------------------------------------
def judge_agree(pipeline, items, samples, rng, n_samples: int = 50) -> PrecisionRow:
    """Judge sampled agree disagreements on the AV world."""
    units = []
    for pos, item in enumerate(items):
        for out_idx in pipeline.agree.disagreeing_outputs(item):
            units.append((pos, out_idx))
    sampled = sample_units(rng, units, n_samples)
    errors = 0
    for pos, out_idx in sampled:
        item = items[pos]
        sample = samples[pos]
        output = item.outputs[out_idx]
        if output.get("sensor") == "lidar":
            box3d = output["box3d"]
            centers = np.array([[b.cx, b.cy] for b in sample.ground_truth_3d])
            if centers.size == 0:
                errors += 1  # LIDAR false positive
                continue
            dist = np.min(np.linalg.norm(centers - [box3d.cx, box3d.cy], axis=1))
            if dist > 2.0:
                errors += 1  # LIDAR false positive
            else:
                # Real object — was it camera-visible? If yes, the camera
                # missed it (model error); if not, this is a false fire.
                proj = output["box"]
                visible = any(
                    iou_matrix([proj], [g])[0, 0] >= 0.1 for g in sample.ground_truth_2d
                )
                if visible:
                    errors += 1
        else:  # camera output with no LIDAR agreement
            box = output["box"]
            matched = any(
                iou_matrix([box], [g])[0, 0] >= 0.5 for g in sample.ground_truth_2d
            )
            if not matched:
                errors += 1  # camera false positive
            else:
                # Real object the LIDAR failed to report: a LIDAR miss
                # unless the object lies outside the LIDAR grid range.
                gt3 = [
                    b
                    for b in sample.ground_truth_3d
                    if 0.0 <= b.cx < 60.0 and abs(b.cy) < 15.0
                ]
                if gt3:
                    errors += 1
    return _row("agree", len(sampled), errors)


# ----------------------------------------------------------------------
# ECG
# ----------------------------------------------------------------------
def judge_ecg(model, records, rng, n_samples: int = 50, temporal_threshold: float = 30.0) -> PrecisionRow:
    """Judge sampled ECG oscillation fires."""
    from repro.domains.ecg.task import record_severities

    severities = record_severities(model, records, temporal_threshold=temporal_threshold)[:, 0]
    flagged = np.flatnonzero(severities > 0)
    sampled = sample_units(rng, flagged.tolist(), n_samples)
    errors = 0
    for idx in sampled:
        record = records[idx]
        classes, _ = model.predict_windows(record)
        if np.any(classes != record.label):
            errors += 1
    return _row("ECG", len(sampled), errors, errors)


# ----------------------------------------------------------------------
# TV news
# ----------------------------------------------------------------------
def judge_news(pipeline, items, rng, n_samples: int = 50) -> PrecisionRow:
    """Judge sampled news attribute deviations."""
    true_of = {"identity": "true_identity", "gender": "true_gender", "hair": "true_hair"}
    # Cluster purity: identifier error when a cluster mixes true people.
    cluster_people: dict = {}
    for item in items:
        for output in item.outputs:
            cluster_people.setdefault(output["face_id"], set()).add(
                output["observation"].true_identity
            )

    units = []
    for assertion in pipeline.assertions:
        key = assertion.attr_key
        for obs, identifier, _majority in assertion._deviations(items):
            units.append((key, obs.output, identifier))
    sampled = sample_units(rng, units, n_samples)
    output_errors = 0
    either_errors = 0
    for key, output, identifier in sampled:
        observation = output["observation"]
        wrong = output[key] != getattr(observation, true_of[key])
        impure = len(cluster_people.get(identifier, set())) > 1
        if wrong:
            output_errors += 1
            either_errors += 1
        elif impure:
            either_errors += 1
    return _row("news", len(sampled), output_errors, either_errors)


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table3Config:
    """Table 3 configuration: sample size and per-domain pool sizes."""

    seed: int = 0
    n_samples: int = 50
    n_video_pool: int = 400
    n_news_videos: int = 3
    news_video_seconds: float = 1800.0
    n_ecg_pool: int = 500
    n_av_pool_scenes: int = 10


@register_experiment(
    "table3",
    config=Table3Config,
    artifact="Table 3",
    description="Assertion precision on sampled fires, judged against ground truth",
)
def _run_table3(config: Table3Config) -> Table3Result:
    """Run every domain pipeline and measure assertion precision.

    Single-unit on purpose: the four domains deliberately share one
    sequential rng stream, which keeps the sampled fires (and therefore
    the reported precisions) bit-identical to the pre-refactor
    ``run_table3`` — fire-level precision here is sensitive to the world
    seed (tracker fragmentation varies per world), so the stream is part
    of the reproduced configuration.
    """
    from repro.domains.av import bootstrap_av_models, make_av_task_data
    from repro.domains.ecg import bootstrap_ecg_classifier, make_ecg_task_data
    from repro.domains.registry import get_domain
    from repro.domains.video import bootstrap_detector, make_video_task_data
    from repro.worlds.tvnews import TVNewsWorld

    rng = as_generator(config.seed)
    n_samples = config.n_samples

    # --- TV news ---
    news_world = TVNewsWorld(seed=rng.spawn(1)[0])
    scenes = news_world.generate_videos(config.n_news_videos, config.news_video_seconds)
    news_pipeline = get_domain("tvnews").build_pipeline()
    news_items = news_pipeline.monitor(scenes).items
    news_row = judge_news(news_pipeline, news_items, rng, n_samples)

    # --- ECG ---
    ecg_data = make_ecg_task_data(
        int(rng.integers(2**31 - 1)), n_train=120, n_pool=config.n_ecg_pool, n_test=50
    )
    ecg_model = bootstrap_ecg_classifier(ecg_data, seed=rng.spawn(1)[0])
    ecg_row = judge_ecg(ecg_model, ecg_data.pool, rng, n_samples)

    # --- Video ---
    video_data = make_video_task_data(
        int(rng.integers(2**31 - 1)), n_pool=config.n_video_pool, n_test=50
    )
    detector = bootstrap_detector(video_data, seed=rng.spawn(1)[0])
    video_pipeline = get_domain("video").build_pipeline()
    detections = detector.detect_frames([f.image for f in video_data.pool])
    video_items = video_pipeline.monitor(detections).items
    flicker_row = judge_flicker(video_pipeline, video_items, video_data.pool, rng, n_samples)
    appear_row = judge_appear(video_pipeline, video_items, video_data.pool, rng, n_samples)
    multibox_row = judge_multibox(video_pipeline, video_items, video_data.pool, rng, n_samples)

    # --- AV ---
    av_data = make_av_task_data(
        int(rng.integers(2**31 - 1)),
        n_bootstrap_scenes=8,
        n_pool_scenes=config.n_av_pool_scenes,
        n_test_scenes=2,
    )
    camera, lidar = bootstrap_av_models(av_data, seed=rng.spawn(1)[0])
    av_pipeline = get_domain("av").build_pipeline()
    cam_dets, lidar_dets = av_pipeline.run_models(av_data.pool_samples, camera, lidar)
    av_items = av_pipeline.monitor(av_data.pool_samples, cam_dets, lidar_dets).items
    agree_row = judge_agree(av_pipeline, av_items, av_data.pool_samples, rng, n_samples)

    # Consistency assertions first, as in the paper's table.
    return Table3Result(
        rows=[news_row, ecg_row, flicker_row, appear_row, multibox_row, agree_row]
    )


def run_table3(
    seed: int = 0,
    *,
    n_samples: int = 50,
    n_video_pool: int = 400,
    n_news_videos: int = 3,
    news_video_seconds: float = 1800.0,
    n_ecg_pool: int = 500,
    n_av_pool_scenes: int = 10,
) -> Table3Result:
    """Run every domain pipeline and measure assertion precision."""
    config = Table3Config(
        seed=seed,
        n_samples=n_samples,
        n_video_pool=n_video_pool,
        n_news_videos=n_news_videos,
        news_video_seconds=news_video_seconds,
        n_ecg_pool=n_ecg_pool,
        n_av_pool_scenes=n_av_pool_scenes,
    )
    return get_experiment("table3").run(config)
