"""Lines-of-code counting for Table 2.

The paper counts, for each deployed assertion, the LOC of its main body
(for consistency assertions: the identity and attribute functions) and
separately the LOC including shared helper functions, double-counting
helpers used by several assertions (§5.2). We use the same methodology
over our implementations: effective LOC = source lines that are not
blank, not comments, and not docstrings.
"""

from __future__ import annotations

import inspect
import io
import textwrap
import tokenize


def effective_loc(obj) -> int:
    """Count non-blank, non-comment, non-docstring source lines."""
    source = textwrap.dedent(inspect.getsource(obj))
    code_lines: set = set()
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    previous_type = None
    for token in tokens:
        if token.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            # Structural tokens are not code lines, but they do mark
            # statement boundaries for the docstring heuristic below.
            if token.type in (tokenize.NEWLINE, tokenize.INDENT, tokenize.DEDENT):
                previous_type = token.type
            continue
        # A string expression at the start of a logical line is a
        # docstring (or a bare string statement) — not counted.
        if token.type == tokenize.STRING and previous_type in (
            None,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
        ):
            previous_type = token.type
            continue
        for line in range(token.start[0], token.end[0] + 1):
            code_lines.add(line)
        previous_type = token.type
    return len(code_lines)


def loc_with_helpers(bodies: list, helpers: list) -> tuple[int, int]:
    """(body LOC, body + helper LOC), helpers double-counted per assertion."""
    body = sum(effective_loc(obj) for obj in bodies)
    helper = sum(effective_loc(obj) for obj in helpers)
    return body, body + helper
