"""Lines-of-code counting for Table 2.

The paper counts, for each deployed assertion, the LOC of its main body
(for consistency assertions: the identity and attribute functions) and
separately the LOC including shared helper functions, double-counting
helpers used by several assertions (§5.2). We use the same methodology
over our implementations: effective LOC = source lines that are not
blank, not comments, and not docstrings.
"""

from __future__ import annotations

import inspect
import io
import textwrap
import tokenize
from dataclasses import dataclass, field

from repro.experiments.reporting import register_result_type
from repro.experiments.runner import register_experiment


def effective_loc(obj) -> int:
    """Count non-blank, non-comment, non-docstring source lines."""
    source = textwrap.dedent(inspect.getsource(obj))
    code_lines: set = set()
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    previous_type = None
    for token in tokens:
        if token.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            # Structural tokens are not code lines, but they do mark
            # statement boundaries for the docstring heuristic below.
            if token.type in (tokenize.NEWLINE, tokenize.INDENT, tokenize.DEDENT):
                previous_type = token.type
            continue
        # A string expression at the start of a logical line is a
        # docstring (or a bare string statement) — not counted.
        if token.type == tokenize.STRING and previous_type in (
            None,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
        ):
            previous_type = token.type
            continue
        for line in range(token.start[0], token.end[0] + 1):
            code_lines.add(line)
        previous_type = token.type
    return len(code_lines)


def loc_with_helpers(bodies: list, helpers: list) -> tuple[int, int]:
    """(body LOC, body + helper LOC), helpers double-counted per assertion."""
    body = sum(effective_loc(obj) for obj in bodies)
    helper = sum(effective_loc(obj) for obj in helpers)
    return body, body + helper


# ----------------------------------------------------------------------
# The "loc" experiment: harness LOC per registered experiment
# ----------------------------------------------------------------------
@register_result_type
@dataclass(frozen=True)
class LocRow:
    experiment: str
    artifact: str
    loc_body: int


@register_result_type
@dataclass
class LocResult:
    """Effective LOC of every registered experiment's execution body.

    The registry's counterpart to Table 2: assertions are a few dozen
    lines, and so is each experiment body once the runner owns seed
    fan-out, trial parallelism, caching, and reporting.
    """

    rows: list = field(default_factory=list)

    def row(self, experiment: str) -> LocRow:
        for row in self.rows:
            if row.experiment == experiment:
                return row
        raise KeyError(experiment)

    @property
    def max_body_loc(self) -> int:
        return max(r.loc_body for r in self.rows)

    def format_table(self) -> str:
        from repro.experiments.reporting import format_table

        return format_table(
            ["Experiment", "Paper artifact", "Body LOC"],
            [(r.experiment, r.artifact, r.loc_body) for r in self.rows],
            title="Experiment-body LOC under the registry runner",
        )


def _spec_body_loc(spec) -> int:
    """Sum the effective LOC of a spec's execution callables."""
    bodies = [
        fn
        for fn in (spec.run_single, spec.make_units, spec.run_unit, spec.combine)
        if fn is not None
    ]
    return sum(effective_loc(fn) for fn in bodies)


def run_loc() -> LocResult:
    """Count each registered experiment's execution-body LOC."""
    from repro.experiments.runner import list_experiments

    rows = [
        LocRow(
            experiment=spec.name,
            artifact=spec.artifact,
            loc_body=_spec_body_loc(spec),
        )
        for spec in list_experiments()
        if spec.name != "loc"  # counting oneself is circular, not informative
    ]
    return LocResult(rows=rows)


@dataclass(frozen=True)
class LocConfig:
    """The LOC census counts source as written; it has no knobs."""


@register_experiment(
    "loc",
    config=LocConfig,
    artifact="Table 2 companion",
    description="Effective LOC of each registered experiment body",
    cacheable=False,  # result derives from the source tree, not the config
)
def _run_loc(config: LocConfig) -> LocResult:
    return run_loc()
