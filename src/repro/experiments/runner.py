"""Registry-driven experiment runner: one subsystem for every table/figure.

Before this module each experiment hand-rolled its own seed fan-out,
trial loop, and formatting; reproducing the paper meant invoking twelve
sibling drivers strictly serially. The runner replaces that with four
orthogonal pieces:

**Registry.** Each experiment registers once::

    @register_experiment("fig5", config=Fig5Config, artifact="Figure 5")
    def _run(config) -> Fig4Result: ...

declaring a *frozen* config dataclass (seed, trials, pool/test sizes —
the experiment's entire input surface) and a pure ``run(config)`` body.
:func:`get_experiment` / :func:`list_experiments` expose the catalog to
the ``python -m repro`` CLI, the benchmarks, and future scenario PRs —
adding an experiment is one decorated function, not a new driver module.

**Trial executor.** Experiments whose result averages independent units
(trials × strategies, or per-domain sub-experiments) register a
``units``/``combine`` pair instead of a monolithic body. Units draw
their randomness from :mod:`repro.core.seeding` child seeds — a pure
function of ``(root seed, unit path)`` — so the executor can run them
in-process or fan them across a :class:`~concurrent.futures.ProcessPoolExecutor`
(``jobs > 1``) and the combined result is bit-identical either way.

**Artifact cache.** ``run_experiment`` content-addresses each run by
``sha256(experiment name + canonical config JSON)`` and persists the
result as JSON under ``.repro-cache/`` (override with ``cache_dir=`` or
``$REPRO_CACHE_DIR``). A warm hit skips recomputation entirely; pass
``force=True`` to recompute and overwrite.

**Uniform reporting.** Results round-trip through
:mod:`repro.experiments.reporting`'s JSON codec and render through the
same ``format_table()`` path whether fresh or cached.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.experiments.reporting import (
    from_jsonable,
    register_result_type,
    to_jsonable,
)

#: Bumped when the cache payload layout changes; part of the cache key.
CACHE_SCHEMA = 1

#: Registration-ordered experiment catalog.
_REGISTRY: dict = {}


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: config surface + pure execution body.

    Exactly one of two shapes:

    - **single-unit** — ``run_single(config) -> result``;
    - **unit-decomposed** — ``make_units(config) -> [unit, ...]``,
      ``run_unit(config, unit) -> partial``, and
      ``combine(config, units, partials) -> result``. Units must be
      independent (their randomness derived per-unit, never threaded
      through a shared generator) so the executor may run them in any
      placement.
    """

    name: str
    config_type: type
    artifact: str
    description: str = ""
    run_single: "object" = None
    make_units: "object" = None
    run_unit: "object" = None
    combine: "object" = None
    #: False for experiments whose result derives from the source tree
    #: itself (LOC counts, static tables): their config can never
    #: fingerprint a code change, so a cache entry would be forever stale.
    cacheable: bool = True

    def default_config(self, **overrides):
        """Instantiate the config dataclass with ``overrides`` applied."""
        return self.config_type(**overrides)

    def run(self, config=None, *, jobs: int = 1):
        """Execute the experiment body (no cache) and return its result."""
        if config is None:
            config = self.config_type()
        if self.run_single is not None:
            return self.run_single(config)
        units = self.make_units(config)
        if jobs > 1 and len(units) > 1:
            with ProcessPoolExecutor(max_workers=min(jobs, len(units))) as pool:
                partials = list(
                    pool.map(_run_unit_in_worker, [(self.name, config, u) for u in units])
                )
        else:
            partials = [self.run_unit(config, unit) for unit in units]
        return self.combine(config, units, partials)


def _run_unit_in_worker(payload):
    """Process-pool entry point: resolve the spec by name and run one unit."""
    name, config, unit = payload
    import repro.experiments  # noqa: F401  (populates the registry in spawned workers)

    return get_experiment(name).run_unit(config, unit)


def register_experiment(
    name: str,
    *,
    config: type,
    artifact: str,
    description: str = "",
    units=None,
    combine=None,
    cacheable: bool = True,
):
    """Class decorator registering an experiment body under ``name``.

    The decorated function is the single-unit body, or — when ``units``
    and ``combine`` are given — the per-unit body. The config dataclass
    is registered with the JSON codec automatically (it is part of every
    cache payload).
    """
    if not (dataclasses.is_dataclass(config) and config.__dataclass_params__.frozen):
        raise TypeError(f"config for {name!r} must be a frozen dataclass")
    if (units is None) != (combine is None):
        raise TypeError(f"{name!r}: units and combine must be given together")
    register_result_type(config)

    def decorator(fn):
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} already registered")
        doc = (fn.__doc__ or "").strip()
        _REGISTRY[name] = ExperimentSpec(
            name=name,
            config_type=config,
            artifact=artifact,
            description=description or (doc.splitlines()[0] if doc else ""),
            run_single=None if units is not None else fn,
            make_units=units,
            run_unit=fn if units is not None else None,
            combine=combine,
            cacheable=cacheable,
        )
        return fn

    return decorator


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered experiment; raise ``KeyError`` with the catalog."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"no experiment named {name!r}; registered: {known}") from None


def list_experiments() -> list:
    """All registered specs, in registration order."""
    return list(_REGISTRY.values())


# ----------------------------------------------------------------------
# Artifact cache
# ----------------------------------------------------------------------
def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro-cache`` in the cwd."""
    return Path(os.environ.get("REPRO_CACHE_DIR") or ".repro-cache")


def config_fingerprint(name: str, config) -> str:
    """Content address of (experiment, config): 16 hex chars of SHA-256."""
    canonical = json.dumps(
        {"schema": CACHE_SCHEMA, "experiment": name, "config": to_jsonable(config)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def cache_path(name: str, config, cache_dir=None) -> Path:
    """Where ``run_experiment`` persists this (experiment, config) result."""
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return directory / f"{name}-{config_fingerprint(name, config)}.json"


@dataclasses.dataclass
class ExperimentRun:
    """Outcome of :func:`run_experiment`: the result plus cache provenance."""

    name: str
    config: "object"
    result: "object"
    cached: bool
    path: "Path | None"
    elapsed_s: float

    @property
    def spec(self) -> ExperimentSpec:
        return get_experiment(self.name)


def run_experiment(
    name: str,
    config=None,
    *,
    jobs: int = 1,
    force: bool = False,
    cache: bool = True,
    cache_dir=None,
    **overrides,
) -> ExperimentRun:
    """Run ``name`` through the registry, with the artifact cache.

    ``config`` may be a ready config instance; otherwise one is built
    from the spec's defaults plus ``overrides`` (field-name keywords).
    On a warm cache hit the stored JSON result is decoded and returned
    (``run.cached`` is True) without recomputation, unless ``force``.
    """
    spec = get_experiment(name)
    if config is None:
        config = spec.default_config(**overrides)
    elif overrides:
        config = dataclasses.replace(config, **overrides)

    cache = cache and spec.cacheable
    path = cache_path(name, config, cache_dir) if cache else None
    if cache and not force and path.is_file():
        try:
            payload = json.loads(path.read_text())
            result = from_jsonable(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            pass  # unreadable/corrupt artifact: fall through and recompute
        else:
            return ExperimentRun(
                name=name,
                config=config,
                result=result,
                cached=True,
                path=path,
                elapsed_s=0.0,
            )

    start = time.perf_counter()
    result = spec.run(config, jobs=jobs)
    elapsed = time.perf_counter() - start

    if cache:
        payload = {
            "schema": CACHE_SCHEMA,
            "experiment": name,
            "artifact": spec.artifact,
            "config": to_jsonable(config),
            "result": to_jsonable(result),
            "elapsed_s": elapsed,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        # Per-process tmp name: concurrent runs of the same (experiment,
        # config) each write whole files and the last rename wins.
        tmp = path.with_suffix(f".json.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        tmp.replace(path)

    return ExperimentRun(
        name=name, config=config, result=result, cached=False, path=path, elapsed_s=elapsed
    )


def load_cached(name: str, cache_dir=None) -> list:
    """All cached payloads for ``name``, newest first.

    Returns ``(payload_dict, path)`` pairs; results stay JSON-encoded
    (``payload["result"]``) — decode with
    :func:`repro.experiments.reporting.from_jsonable` when needed, so
    callers that only want the newest entry don't pay for the rest.
    """
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    entries = []
    for path in sorted(
        directory.glob(f"{name}-*.json"),
        key=lambda p: p.stat().st_mtime,
        reverse=True,
    ):
        payload = json.loads(path.read_text())
        if payload.get("experiment") != name:
            continue
        entries.append((payload, path))
    return entries
