"""Table 5: the assertion-class taxonomy (Appendix B)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.taxonomy import (
    ASSERTION_CLASSES,
    TAXONOMY,
    TaxonomyEntry,
    format_taxonomy_table,
)
from repro.experiments.reporting import register_result_type
from repro.experiments.runner import get_experiment, register_experiment

register_result_type(TaxonomyEntry)


@register_result_type
@dataclass
class Table5Result:
    entries: tuple = TAXONOMY
    classes: tuple = ASSERTION_CLASSES

    @property
    def n_classes(self) -> int:
        return len(self.classes)

    @property
    def n_subclasses(self) -> int:
        return len(self.entries)

    def format_table(self) -> str:
        return format_taxonomy_table()


@dataclass(frozen=True)
class Table5Config:
    """Table 5 is the static taxonomy; it has no knobs."""


@register_experiment(
    "table5",
    config=Table5Config,
    artifact="Table 5",
    description="The assertion-class taxonomy (Appendix B)",
    cacheable=False,  # result derives from the source tree, not the config
)
def _run_table5(config: Table5Config) -> Table5Result:
    """Return the taxonomy table (pure data; included for bench symmetry)."""
    return Table5Result()


def run_table5() -> Table5Result:
    """Return the taxonomy table (pure data; included for bench symmetry)."""
    return get_experiment("table5").run(Table5Config())
