"""Table 5: the assertion-class taxonomy (Appendix B)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.taxonomy import ASSERTION_CLASSES, TAXONOMY, format_taxonomy_table


@dataclass
class Table5Result:
    entries: tuple = TAXONOMY
    classes: tuple = ASSERTION_CLASSES

    @property
    def n_classes(self) -> int:
        return len(self.classes)

    @property
    def n_subclasses(self) -> int:
        return len(self.entries)

    def format_table(self) -> str:
        return format_taxonomy_table()


def run_table5() -> Table5Result:
    """Return the taxonomy table (pure data; included for bench symmetry)."""
    return Table5Result()
