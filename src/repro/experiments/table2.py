"""Table 2: lines of code per assertion.

The paper reports that every deployed assertion's main body fits in ≤ 25
LOC and ≤ 60 LOC including (double-counted) shared helpers. We count our
implementations with the same methodology (:mod:`repro.experiments.loc`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.loc import loc_with_helpers
from repro.experiments.reporting import format_table, register_result_type
from repro.experiments.runner import get_experiment, register_experiment


@register_result_type
@dataclass(frozen=True)
class Table2Row:
    assertion: str
    loc_body: int
    loc_with_helpers: int
    kind: str  # "consistency" or "custom"


@register_result_type
@dataclass
class Table2Result:
    rows: list = field(default_factory=list)

    def row(self, name: str) -> Table2Row:
        for row in self.rows:
            if row.assertion == name:
                return row
        raise KeyError(name)

    @property
    def max_body_loc(self) -> int:
        return max(r.loc_body for r in self.rows)

    @property
    def max_total_loc(self) -> int:
        return max(r.loc_with_helpers for r in self.rows)

    def format_table(self) -> str:
        return format_table(
            ["Assertion", "LOC (no helpers)", "LOC (inc. helpers)"],
            [(r.assertion, r.loc_body, r.loc_with_helpers) for r in self.rows],
            title="Table 2: lines of code per assertion (consistency on top)",
        )


@dataclass(frozen=True)
class Table2Config:
    """Table 2 counts source as written; it has no knobs."""


@register_experiment(
    "table2",
    config=Table2Config,
    artifact="Table 2",
    description="Lines of code per deployed assertion",
    cacheable=False,  # result derives from the source tree, not the config
)
def _run_table2(config: Table2Config) -> Table2Result:
    """Count LOC of the six deployed assertions (Table 2 rows)."""
    from repro.domains.av.assertions import sensor_agreement
    from repro.domains.ecg.assertions import ecg_consistency_spec, make_ecg_assertion
    from repro.domains.tvnews.pipeline import news_consistency_spec
    from repro.domains.video.assertions import (
        interpolate_box,
        make_appear_assertion,
        make_flicker_assertion,
        multibox_severity,
        video_consistency_spec,
    )
    from repro.geometry.camera import project_box3d_to_2d
    from repro.geometry.iou import iou_matrix

    # Bodies are the domain-level definitions a developer writes; helpers
    # are the shared utilities they call (box IoU, interpolation,
    # projection), double-counted per assertion as in the paper.
    entries = [
        ("news", "consistency", [news_consistency_spec], [iou_matrix]),
        ("ECG", "consistency", [ecg_consistency_spec, make_ecg_assertion], []),
        (
            "flicker",
            "consistency",
            [video_consistency_spec, make_flicker_assertion],
            [interpolate_box, iou_matrix],
        ),
        (
            "appear",
            "consistency",
            [video_consistency_spec, make_appear_assertion],
            [iou_matrix],
        ),
        ("multibox", "custom", [multibox_severity], [iou_matrix]),
        ("agree", "custom", [sensor_agreement], [iou_matrix, project_box3d_to_2d]),
    ]
    rows = []
    for name, kind, bodies, helpers in entries:
        body, total = loc_with_helpers(bodies, helpers)
        rows.append(Table2Row(assertion=name, loc_body=body, loc_with_helpers=total, kind=kind))
    return Table2Result(rows=rows)


def run_table2() -> Table2Result:
    """Count LOC of the six deployed assertions (Table 2 rows)."""
    return get_experiment("table2").run(Table2Config())
