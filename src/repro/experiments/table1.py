"""Table 1: summary of tasks, models, and assertions.

Descriptive, assembled from the domain registries so it stays in sync
with the implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.reporting import format_table, register_result_type
from repro.experiments.runner import get_experiment, register_experiment


@register_result_type
@dataclass(frozen=True)
class Table1Row:
    task: str
    model: str
    assertions: str


@register_result_type
@dataclass
class Table1Result:
    rows: list = field(default_factory=list)

    def format_table(self) -> str:
        return format_table(
            ["Task", "Model", "Assertions"],
            [(r.task, r.model, r.assertions) for r in self.rows],
            title="Table 1: tasks, models, and assertions",
        )


@dataclass(frozen=True)
class Table1Config:
    """Table 1 is descriptive; it has no knobs."""


@register_experiment(
    "table1",
    config=Table1Config,
    artifact="Table 1",
    description="Summary of tasks, models, and assertions per domain",
    cacheable=False,  # result derives from the source tree, not the config
)
def _run_table1(config: Table1Config) -> Table1Result:
    """Assemble Table 1 from the per-domain registry entry points."""
    from repro.domains.av.domain import AVDomainConfig
    from repro.domains.ecg.assertions import make_ecg_assertion
    from repro.domains.registry import get_domain
    from repro.geometry.camera import PinholeCamera

    video = get_domain("video").build_pipeline()
    av = get_domain("av", AVDomainConfig(camera=PinholeCamera())).build_pipeline()
    news = get_domain("tvnews").build_pipeline()
    ecg = make_ecg_assertion()

    rows = [
        Table1Row(
            task="TV news",
            model="precomputed face/identity/gender/hair models",
            assertions="consistency (§4, news): " + ", ".join(news.assertion_names),
        ),
        Table1Row(
            task="Object detection (video)",
            model="trainable proposal detector (SSD stand-in)",
            assertions=", ".join(video.assertion_names)
            + " (multibox custom; flicker/appear via consistency API)",
        ),
        Table1Row(
            task="Vehicle detection (AVs)",
            model="BEV LIDAR detector (Second stand-in) + camera detector (SSD stand-in)",
            assertions=", ".join(av.assertion_names),
        ),
        Table1Row(
            task="AF classification",
            model="window-feature MLP (ECG-network stand-in)",
            assertions=f"{ecg.name}: consistency within a 30s window",
        ),
    ]
    return Table1Result(rows=rows)


def run_table1() -> Table1Result:
    """Assemble Table 1 from the per-domain pipelines."""
    return get_experiment("table1").run(Table1Config())
