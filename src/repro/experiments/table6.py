"""Table 6 / Appendix E: model assertions can identify errors in human labels.

The paper had 1,000 random ``night-street`` frames labeled by Scale AI,
"tracked objects across frames of a video using an automated method and
verified that the same object in different frames had the same label":
469 labels, 32 classification errors, 4 caught (12.5%).

Here, the noisy :class:`~repro.labeling.HumanLabeler` annotates every
k-th frame of a simulated night video, labeled boxes are linked across
annotated frames by the same greedy IoU tracker used elsewhere (the
"automated method"), and the label-consistency check is expressed through
the consistency API itself: identifier = track, attribute = class. An
error is *caught* when its track fires the attribute assertion; errors on
objects the tracker sees in only one annotated frame are invisible to the
check — which is why only a minority of errors are caught, in the paper
and here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.consistency import AttributeConsistencyAssertion, ConsistencySpec
from repro.core.types import StreamItem
from repro.experiments.reporting import format_table, register_result_type
from repro.experiments.runner import get_experiment, register_experiment
from repro.labeling.human import HumanLabeler
from repro.tracking.tracker import IoUTracker
from repro.utils.rng import as_generator
from repro.worlds.traffic import TrafficWorld, TrafficWorldConfig


@register_result_type
@dataclass
class Table6Result:
    n_labels: int = 0
    n_errors: int = 0
    n_errors_caught: int = 0
    n_fires: int = 0

    @property
    def catch_rate(self) -> float:
        return self.n_errors_caught / self.n_errors if self.n_errors else 0.0

    @property
    def error_rate(self) -> float:
        return self.n_errors / self.n_labels if self.n_labels else 0.0

    def format_table(self) -> str:
        rows = [
            ("All labels", self.n_labels),
            ("Errors", self.n_errors),
            ("Errors caught", self.n_errors_caught),
            ("Catch rate", f"{100 * self.catch_rate:.1f}%"),
        ]
        return format_table(
            ["Description", "Number"],
            rows,
            title="Table 6: human-label validation via model assertions",
        )


@dataclass(frozen=True)
class Table6Config:
    """Table 6 configuration (paper: 1,000 frames, ~6.8% error rate)."""

    seed: int = 0
    n_video_frames: int = 2000
    label_stride: int = 10
    class_error_rate: float = 0.068
    tracker_iou: float = 0.25


@register_experiment(
    "table6",
    config=Table6Config,
    artifact="Table 6 / Appendix E",
    description="Model assertions catch human-label errors via track consistency",
)
def _run_table6(config: Table6Config) -> Table6Result:
    """Label every ``label_stride``-th frame and check track consistency."""
    rng = as_generator(config.seed)
    world = TrafficWorld(TrafficWorldConfig(profile="night"), seed=int(rng.integers(2**31 - 1)))
    video = world.generate(config.n_video_frames)
    annotated = video[:: config.label_stride]

    labeler = HumanLabeler(class_error_rate=config.class_error_rate, seed=rng.spawn(1)[0])
    labels_per_frame = labeler.label_frames(annotated)

    # The automated tracker links labeled boxes across annotated frames.
    tracker = IoUTracker(iou_threshold=config.tracker_iou, max_age=1)
    items = []
    label_lookup: dict = {}
    for frame_pos, labels in enumerate(labels_per_frame):
        tracked = tracker.update(frame_pos, [l.box for l in labels])
        outputs = []
        for label, t in zip(labels, tracked):
            outputs.append({"track_id": t.track_id, "class": label.box.label})
            label_lookup[(frame_pos, t.track_id)] = label
        items.append(StreamItem(index=frame_pos, timestamp=float(frame_pos), outputs=tuple(outputs)))

    spec = ConsistencySpec(
        id_fn=lambda o: o["track_id"],
        attrs_fn=lambda o: {"class": o["class"]},
        name="label-check",
    )
    assertion = AttributeConsistencyAssertion(spec, "class")

    flagged_tracks = {
        identifier for _obs, identifier, _maj in assertion._deviations(items)
    }
    n_fires = sum(1 for _ in assertion._deviations(items))

    all_labels = [l for frame in labels_per_frame for l in frame]
    errors = [l for l in all_labels if l.is_error]
    # An error is caught when its (frame, track) group was flagged.
    caught = 0
    track_of: dict = {}
    for (frame_pos, track_id), label in label_lookup.items():
        track_of[id(label)] = track_id
    for label in errors:
        if track_of.get(id(label)) in flagged_tracks:
            caught += 1

    return Table6Result(
        n_labels=len(all_labels),
        n_errors=len(errors),
        n_errors_caught=caught,
        n_fires=n_fires,
    )


def run_table6(
    seed: int = 0,
    *,
    n_video_frames: int = 2000,
    label_stride: int = 10,
    class_error_rate: float = 0.068,
    tracker_iou: float = 0.25,
) -> Table6Result:
    """Label every ``label_stride``-th frame and check track consistency."""
    return get_experiment("table6").run(
        Table6Config(
            seed=seed,
            n_video_frames=n_video_frames,
            label_stride=label_stride,
            class_error_rate=class_error_rate,
            tracker_iou=tracker_iou,
        )
    )
