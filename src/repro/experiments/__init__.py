"""One registered experiment per table/figure of the paper's evaluation (§5).

Every experiment lives in the registry of
:mod:`repro.experiments.runner`: a frozen config dataclass (seed, trial
count, pool/test sizes) plus a pure ``run(config) -> result`` body,
registered with :func:`~repro.experiments.runner.register_experiment`.
The runner adds what the twelve sibling modules used to hand-roll —
deterministic child-seed fan-out (:mod:`repro.core.seeding`),
process-parallel trial execution (``jobs=N``), a content-addressed
artifact cache under ``.repro-cache/``, and uniform JSON + text
reporting — and ``python -m repro`` exposes it all on the command line:

.. code-block:: console

   $ python -m repro list
   $ python -m repro run fig4_video --jobs 4
   $ python -m repro report

All experiments are seeded and deterministic — bit-identical whether run
directly, via the CLI, serially, or with ``--jobs 4``. Sizes default to
a scaled-down-but-faithful configuration that completes in minutes on a
laptop (the paper's absolute dataset sizes — 300k frames, 850 scenes —
are neither available nor necessary for the shape of the results).

| Experiment | Paper artifact | Function |
|---|---|---|
| Task/model/assertion summary | Table 1 | :func:`repro.experiments.table1.run_table1` |
| Assertion LOC | Table 2 | :func:`repro.experiments.table2.run_table2` |
| Assertion precision | Table 3 | :func:`repro.experiments.table3.run_table3` |
| Weak supervision | Table 4 | :func:`repro.experiments.table4.run_table4` |
| Assertion taxonomy | Table 5 | :func:`repro.experiments.table5.run_table5` |
| Human-label validation | Table 6 | :func:`repro.experiments.table6.run_table6` |
| High-confidence errors | Figure 3 | :func:`repro.experiments.fig3.run_fig3` |
| Active learning (video, AV) | Figures 4/9 | :func:`repro.experiments.fig4.run_fig4_video`, ``run_fig4_av`` |
| Active learning (ECG) | Figure 5 | :func:`repro.experiments.fig5.run_fig5` |
| Experiment-body LOC | Table 2 companion | :func:`repro.experiments.loc.run_loc` |
"""

# Import order drives registry (and therefore `python -m repro list`)
# order: tables first (the LOC census rides with table2), then figures.
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.table3 import Table3Result, run_table3
from repro.experiments.table4 import Table4Result, run_table4
from repro.experiments.table5 import Table5Result, run_table5
from repro.experiments.table6 import Table6Result, run_table6
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.fig4 import Fig4Result, run_fig4_av, run_fig4_video
from repro.experiments.fig5 import run_fig5
from repro.experiments.loc import LocResult, run_loc
from repro.experiments.runner import (
    ExperimentRun,
    ExperimentSpec,
    get_experiment,
    list_experiments,
    register_experiment,
    run_experiment,
)

__all__ = [
    "ExperimentRun",
    "ExperimentSpec",
    "Fig3Result",
    "Fig4Result",
    "LocResult",
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "Table4Result",
    "Table5Result",
    "Table6Result",
    "get_experiment",
    "list_experiments",
    "register_experiment",
    "run_experiment",
    "run_fig3",
    "run_fig4_av",
    "run_fig4_video",
    "run_fig5",
    "run_loc",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
]
