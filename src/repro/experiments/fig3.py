"""Figure 3: model assertions find high-confidence errors.

"We collected the 10 data points with highest confidence error for each
of the model assertions deployed for video analytics. We then plotted the
percentile of the confidence among all the boxes for each error" (§5.3).
Flicker errors have no box of their own, so their confidence is "the
average of the surrounding boxes" — exactly what the flicker correction
rule's imputed box carries.

The point of the figure: these percentiles are high (up to the 94th in
the paper), so confidence/uncertainty-based monitoring would never
surface these errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.judging import box_is_error, detected_at, gt_vehicle_at
from repro.experiments.reporting import format_table, register_result_type
from repro.experiments.runner import get_experiment, register_experiment


@register_result_type
@dataclass
class Fig3Result:
    """Percentiles of the top-10 highest-confidence errors per assertion.

    ``percentiles[assertion]`` is a list of up to 10 confidence
    percentiles (rank 1 = most confident error first).
    """

    percentiles: dict = field(default_factory=dict)
    n_boxes: int = 0

    def top_percentile(self, assertion: str) -> float:
        values = self.percentiles.get(assertion, [])
        return max(values) if values else 0.0

    def format_table(self) -> str:
        ranks = list(range(1, 11))
        rows = []
        for rank in ranks:
            row = [rank]
            for name in ("appear", "multibox", "flicker"):
                values = self.percentiles.get(name, [])
                row.append(f"{values[rank - 1]:.0f}" if rank <= len(values) else "-")
            rows.append(row)
        return format_table(
            ["Rank", "Appear pct", "Multibox pct", "Flicker pct"],
            rows,
            title=f"Figure 3: confidence percentile of top-10 errors (of {self.n_boxes} boxes)",
        )


@dataclass(frozen=True)
class Fig3Config:
    """Figure 3 configuration."""

    seed: int = 0
    n_pool: int = 800
    top_k: int = 10


@register_experiment(
    "fig3",
    config=Fig3Config,
    artifact="Figure 3",
    description="Confidence percentiles of the top assertion-flagged true errors",
)
def _run_fig3(config: Fig3Config) -> Fig3Result:
    """Collect assertion-flagged *true* errors and rank them by confidence."""
    from repro.core.consistency import group_observations
    from repro.domains.registry import get_domain
    from repro.domains.video import bootstrap_detector, make_video_task_data
    from repro.utils.rng import as_generator

    seed, n_pool, top_k = config.seed, config.n_pool, config.top_k
    rng = as_generator(seed)
    data = make_video_task_data(int(rng.integers(2**31 - 1)), n_pool=n_pool, n_test=50)
    detector = bootstrap_detector(data, seed=rng.spawn(1)[0])
    pipeline = get_domain("video").build_pipeline()
    detections = detector.detect_frames([f.image for f in data.pool])
    items = pipeline.monitor(detections).items
    frames = data.pool

    all_scores = np.array([o["score"] for item in items for o in item.outputs])
    if all_scores.size == 0:
        return Fig3Result(percentiles={}, n_boxes=0)

    def percentile_of(score: float) -> float:
        return 100.0 * float(np.mean(all_scores <= score))

    errors: dict = {"multibox": [], "appear": [], "flicker": []}

    # multibox: flagged boxes failing one-to-one matching, conf = box score.
    for pos, item in enumerate(items):
        flagged = pipeline.multibox.flagged_output_indices(item)
        if not flagged:
            continue
        gt = frames[pos].ground_truth
        claimed: set = set()
        for out_idx in sorted(
            range(len(item.outputs)), key=lambda i: -item.outputs[i]["score"]
        ):
            is_error = box_is_error(item.outputs[out_idx]["box"], gt, claimed)
            if out_idx in flagged and is_error:
                errors["multibox"].append(item.outputs[out_idx]["score"])

    # appear: spurious short-run boxes, conf = box score.
    for violation in pipeline.appear.violations(items):
        for pos in range(violation.start_pos, violation.end_pos + 1):
            for output in items[pos].outputs:
                if output.get("track_id") != violation.identifier:
                    continue
                if gt_vehicle_at(frames, pos, output["box"], iou_threshold=0.5) is None:
                    errors["appear"].append(output["score"])

    # flicker: missed boxes in gaps, conf = mean of surrounding boxes
    # (carried by the imputed weak label).
    groups = group_observations(pipeline.spec, items)
    for violation in pipeline.flicker.violations(items):
        observations = groups.get(violation.identifier, [])
        mid = (violation.start_pos + violation.end_pos) // 2
        imputed = pipeline.spec.weak_label_fn(violation.identifier, items[mid], observations)
        if imputed is None:
            continue
        gt_vehicle = gt_vehicle_at(frames, mid, imputed["box"])
        if gt_vehicle is not None and not detected_at(
            items, mid, gt_vehicle.box, exclude_track=violation.identifier
        ):
            errors["flicker"].append(imputed["score"])

    percentiles = {
        name: [percentile_of(s) for s in sorted(scores, reverse=True)[:top_k]]
        for name, scores in errors.items()
    }
    return Fig3Result(percentiles=percentiles, n_boxes=int(all_scores.size))


def run_fig3(
    seed: int = 0,
    *,
    n_pool: int = 800,
    top_k: int = 10,
) -> Fig3Result:
    """Collect assertion-flagged *true* errors and rank them by confidence."""
    return get_experiment("fig3").run(Fig3Config(seed=seed, n_pool=n_pool, top_k=top_k))
