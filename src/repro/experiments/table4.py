"""Table 4: weak supervision improves the pretrained models (§5.5).

Runs the three domain weak-supervision entry points — video analytics
(flicker-corrected frames), AVs (2-D boxes imputed from 3-D LIDAR
detections), ECG (majority-class window relabeling) — and reports
pretrained vs weakly-supervised quality with no human labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.seeding import derive_rng
from repro.core.weak_supervision import WeakSupervisionResult
from repro.experiments.reporting import (
    format_float,
    format_table,
    register_result_type,
)
from repro.experiments.runner import get_experiment, register_experiment

register_result_type(WeakSupervisionResult)


@register_result_type
@dataclass
class Table4Result:
    results: list = field(default_factory=list)  # WeakSupervisionResult per domain

    def result_for(self, domain: str):
        for result in self.results:
            if result.domain == domain:
                return result
        raise KeyError(domain)

    def format_table(self) -> str:
        rows = [
            (
                r.domain,
                f"{format_float(r.pretrained_metric)} {r.metric_name}",
                f"{format_float(r.weakly_supervised_metric)} {r.metric_name}",
                f"{format_float(100 * r.relative_improvement)}%",
            )
            for r in self.results
        ]
        return format_table(
            ["Domain", "Pretrained", "Weakly supervised", "Relative improvement"],
            rows,
            title="Table 4: pretrained vs weakly supervised model quality",
        )


@dataclass(frozen=True)
class Table4Config:
    """Table 4 configuration: per-domain pool and weak-label sizes."""

    seed: int = 0
    n_video_pool: int = 800
    n_video_test: int = 200
    n_video_flagged: int = 600
    n_video_random: int = 200
    n_av_bootstrap_scenes: int = 10
    n_av_pool_scenes: int = 16
    n_av_test_scenes: int = 6
    n_ecg_pool: int = 1500
    n_ecg_weak: int = 1000


def _weak_video(config, rng) -> WeakSupervisionResult:
    from repro.domains.video import make_video_task_data, run_video_weak_supervision

    data = make_video_task_data(
        int(rng.integers(2**31 - 1)), n_pool=config.n_video_pool, n_test=config.n_video_test
    )
    return run_video_weak_supervision(
        data,
        n_flagged=config.n_video_flagged,
        n_random=config.n_video_random,
        seed=rng.spawn(1)[0],
    )


def _weak_av(config, rng) -> WeakSupervisionResult:
    from repro.domains.av import make_av_task_data, run_av_weak_supervision

    data = make_av_task_data(
        int(rng.integers(2**31 - 1)),
        n_bootstrap_scenes=config.n_av_bootstrap_scenes,
        n_pool_scenes=config.n_av_pool_scenes,
        n_test_scenes=config.n_av_test_scenes,
    )
    return run_av_weak_supervision(data, seed=rng.spawn(1)[0])


def _weak_ecg(config, rng) -> WeakSupervisionResult:
    from repro.domains.ecg import make_ecg_task_data, run_ecg_weak_supervision

    data = make_ecg_task_data(
        int(rng.integers(2**31 - 1)), n_train=120, n_pool=config.n_ecg_pool, n_test=500
    )
    return run_ecg_weak_supervision(data, n_weak=config.n_ecg_weak, seed=rng.spawn(1)[0])


#: Unit order == the paper's row order.
_WEAK_DOMAINS = (("video", _weak_video), ("av", _weak_av), ("ecg", _weak_ecg))


def _table4_units(config) -> list:
    return [{"domain": name} for name, _fn in _WEAK_DOMAINS]


def _table4_combine(config, units, partials) -> Table4Result:
    return Table4Result(results=list(partials))


@register_experiment(
    "table4",
    config=Table4Config,
    artifact="Table 4",
    description="Weak supervision improves the pretrained models, no human labels",
    units=_table4_units,
    combine=_table4_combine,
)
def _table4_unit(config, unit) -> WeakSupervisionResult:
    """One §5.5 weak-supervision domain with its own derived seed."""
    domain = unit["domain"]
    fn = dict(_WEAK_DOMAINS)[domain]
    return fn(config, derive_rng(config.seed, "table4", domain))


def run_table4(
    seed: int = 0,
    *,
    n_video_pool: int = 800,
    n_video_test: int = 200,
    n_video_flagged: int = 600,
    n_video_random: int = 200,
    n_av_bootstrap_scenes: int = 10,
    n_av_pool_scenes: int = 16,
    n_av_test_scenes: int = 6,
    n_ecg_pool: int = 1500,
    n_ecg_weak: int = 1000,
    jobs: int = 1,
) -> Table4Result:
    """Run the three §5.5 weak-supervision experiments."""
    config = Table4Config(
        seed=seed,
        n_video_pool=n_video_pool,
        n_video_test=n_video_test,
        n_video_flagged=n_video_flagged,
        n_video_random=n_video_random,
        n_av_bootstrap_scenes=n_av_bootstrap_scenes,
        n_av_pool_scenes=n_av_pool_scenes,
        n_av_test_scenes=n_av_test_scenes,
        n_ecg_pool=n_ecg_pool,
        n_ecg_weak=n_ecg_weak,
    )
    return get_experiment("table4").run(config, jobs=jobs)
