"""Table 4: weak supervision improves the pretrained models (§5.5).

Runs the three domain weak-supervision entry points — video analytics
(flicker-corrected frames), AVs (2-D boxes imputed from 3-D LIDAR
detections), ECG (majority-class window relabeling) — and reports
pretrained vs weakly-supervised quality with no human labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.reporting import format_float, format_table
from repro.utils.rng import as_generator


@dataclass
class Table4Result:
    results: list = field(default_factory=list)  # WeakSupervisionResult per domain

    def result_for(self, domain: str):
        for result in self.results:
            if result.domain == domain:
                return result
        raise KeyError(domain)

    def format_table(self) -> str:
        rows = [
            (
                r.domain,
                f"{format_float(r.pretrained_metric)} {r.metric_name}",
                f"{format_float(r.weakly_supervised_metric)} {r.metric_name}",
                f"{format_float(100 * r.relative_improvement)}%",
            )
            for r in self.results
        ]
        return format_table(
            ["Domain", "Pretrained", "Weakly supervised", "Relative improvement"],
            rows,
            title="Table 4: pretrained vs weakly supervised model quality",
        )


def run_table4(
    seed: int = 0,
    *,
    n_video_pool: int = 800,
    n_video_test: int = 200,
    n_video_flagged: int = 600,
    n_video_random: int = 200,
    n_av_bootstrap_scenes: int = 10,
    n_av_pool_scenes: int = 16,
    n_av_test_scenes: int = 6,
    n_ecg_pool: int = 1500,
    n_ecg_weak: int = 1000,
) -> Table4Result:
    """Run the three §5.5 weak-supervision experiments."""
    from repro.domains.av import make_av_task_data, run_av_weak_supervision
    from repro.domains.ecg import make_ecg_task_data, run_ecg_weak_supervision
    from repro.domains.video import make_video_task_data, run_video_weak_supervision

    rng = as_generator(seed)

    video_data = make_video_task_data(
        int(rng.integers(2**31 - 1)), n_pool=n_video_pool, n_test=n_video_test
    )
    video = run_video_weak_supervision(
        video_data,
        n_flagged=n_video_flagged,
        n_random=n_video_random,
        seed=rng.spawn(1)[0],
    )

    av_data = make_av_task_data(
        int(rng.integers(2**31 - 1)),
        n_bootstrap_scenes=n_av_bootstrap_scenes,
        n_pool_scenes=n_av_pool_scenes,
        n_test_scenes=n_av_test_scenes,
    )
    av = run_av_weak_supervision(av_data, seed=rng.spawn(1)[0])

    ecg_data = make_ecg_task_data(
        int(rng.integers(2**31 - 1)), n_train=120, n_pool=n_ecg_pool, n_test=500
    )
    ecg = run_ecg_weak_supervision(ecg_data, n_weak=n_ecg_weak, seed=rng.spawn(1)[0])

    return Table4Result(results=[video, av, ecg])
