"""The OMG runtime monitor.

OMG "logs user-defined assertions as callbacks … Given the model's input
and output, OMG will execute the assertions and record any errors" (§2.4).
This module provides both deployment styles the paper describes:

- **online**: call :meth:`OMG.observe` after every model invocation; OMG
  maintains a bounded history window, evaluates every registered assertion
  over it, records fires for the newest item, and invokes any registered
  corrective-action callbacks (e.g., "shutting down an autopilot", §1).
- **offline/batch**: call :meth:`OMG.monitor` on a full stream (historical
  data, validation sets, human labels) to get a
  :class:`MonitoringReport` whose per-item severity matrix is exactly the
  context matrix BAL consumes for active learning (§3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.assertion import FunctionAssertion, ModelAssertion, as_assertion
from repro.core.consistency import ConsistencySpec, generate_assertions
from repro.core.database import AssertionDatabase
from repro.core.types import AssertionRecord, Correction, StreamItem, make_stream


@dataclass
class MonitoringReport:
    """Result of monitoring a stream with a set of assertions.

    Attributes
    ----------
    assertion_names:
        Column order of :attr:`severities`.
    severities:
        ``(n_items, n_assertions)`` severity matrix; entry > 0 means the
        assertion fired on that item.
    records:
        Flat list of :class:`~repro.core.types.AssertionRecord` for every
        positive severity.
    n_items:
        Number of monitored stream items.
    """

    assertion_names: list
    severities: np.ndarray
    records: list = field(default_factory=list)

    @property
    def n_items(self) -> int:
        return int(self.severities.shape[0])

    def column(self, assertion_name: str) -> np.ndarray:
        """Severity vector of one assertion, shape ``(n_items,)``."""
        try:
            col = self.assertion_names.index(assertion_name)
        except ValueError:
            raise KeyError(f"no assertion named {assertion_name!r} in report") from None
        return self.severities[:, col]

    def fire_counts(self) -> dict:
        """Assertion name → number of items with positive severity."""
        return {
            name: int(np.count_nonzero(self.severities[:, col] > 0))
            for col, name in enumerate(self.assertion_names)
        }

    def flagged_indices(self, assertion_name: "str | None" = None) -> np.ndarray:
        """Item indices where the assertion (or any assertion) fired."""
        if assertion_name is None:
            mask = np.any(self.severities > 0, axis=1)
        else:
            mask = self.column(assertion_name) > 0
        return np.flatnonzero(mask)

    def total_fires(self) -> int:
        """Number of (item, assertion) pairs with positive severity."""
        return int(np.count_nonzero(self.severities > 0))


class OMG:
    """The model-assertion runtime.

    Examples
    --------
    >>> omg = OMG()
    >>> @omg.assertion
    ... def too_many_outputs(inp, outputs):
    ...     return float(len(outputs) > 3)
    >>> report = omg.monitor_outputs([[1], [1, 2, 3, 4]])
    >>> report.fire_counts()
    {'too_many_outputs': 1}
    """

    def __init__(
        self,
        database: "AssertionDatabase | None" = None,
        *,
        window_size: int = 64,
    ) -> None:
        if window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {window_size}")
        self.database = database if database is not None else AssertionDatabase()
        self.window_size = window_size
        self._history: list = []
        self._next_index = 0
        self._online_records: list = []
        self._actions: list = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_assertion(
        self,
        assertion: "ModelAssertion | Callable",
        name: "str | None" = None,
        **register_kwargs,
    ) -> ModelAssertion:
        """Register an assertion (``AddAssertion(func)`` in the paper).

        Accepts a :class:`ModelAssertion` or any callable of
        ``(input, outputs) -> severity``.
        """
        wrapped = as_assertion(assertion, name)
        return self.database.add(wrapped, **register_kwargs)

    def assertion(self, func: Callable) -> Callable:
        """Decorator form of :meth:`add_assertion`; returns ``func``."""
        self.add_assertion(func)
        return func

    def add_consistency_assertion(
        self,
        id_fn: Callable,
        attrs_fn: "Callable | None" = None,
        temporal_threshold: "float | None" = None,
        *,
        name: str = "consistency",
        attr_keys: "list[str] | None" = None,
        temporal_modes: "list[str] | None" = None,
        weak_label_fn: "Callable | None" = None,
        set_attr_fn: "Callable | None" = None,
        **register_kwargs,
    ) -> list:
        """``AddConsistencyAssertion(Id, Attrs, T)`` from §4.1.

        Generates one Boolean assertion per attribute key plus temporal
        assertions, registers them all, and returns them.
        """
        spec = ConsistencySpec(
            id_fn=id_fn,
            attrs_fn=attrs_fn,
            temporal_threshold=temporal_threshold,
            weak_label_fn=weak_label_fn,
            set_attr_fn=set_attr_fn,
            name=name,
        )
        generated = generate_assertions(
            spec, attr_keys=attr_keys, temporal_modes=temporal_modes
        )
        if not generated:
            raise ValueError(
                "consistency spec generated no assertions: provide attr_keys "
                "(with attrs_fn) and/or temporal_threshold"
            )
        for item in generated:
            self.database.add(item, **register_kwargs)
        return generated

    def on_fire(self, action: Callable[[AssertionRecord], None]) -> Callable:
        """Register a corrective-action callback for online monitoring.

        Called once per fresh :class:`AssertionRecord` produced by
        :meth:`observe` — the paper's "log unexpected behavior or
        automatically trigger corrective actions" hook (§1).
        """
        self._actions.append(action)
        return action

    # ------------------------------------------------------------------
    # Online monitoring
    # ------------------------------------------------------------------
    def observe(
        self,
        input: Any,
        outputs,
        *,
        timestamp: "float | None" = None,
    ) -> list:
        """Ingest one model invocation; return fresh fire records.

        Assertions are evaluated over the trailing history window (so
        windowed/consistency assertions see context); only severities
        attributed to the newest item are recorded and dispatched to
        :meth:`on_fire` callbacks.
        """
        if timestamp is None:
            timestamp = float(self._next_index)
        item = StreamItem(
            index=self._next_index, timestamp=timestamp, input=input, outputs=tuple(outputs)
        )
        self._next_index += 1
        self._history.append(item)
        if len(self._history) > self.window_size:
            self._history.pop(0)

        fresh: list = []
        last = len(self._history) - 1
        for assertion in self.database:
            severities = assertion.evaluate_stream(self._history)
            severity = float(severities[last])
            if severity > 0:
                record = AssertionRecord(
                    assertion_name=assertion.name,
                    item_index=item.index,
                    severity=severity,
                )
                fresh.append(record)
        self._online_records.extend(fresh)
        for record in fresh:
            for action in self._actions:
                action(record)
        return fresh

    @property
    def online_records(self) -> list:
        """All records accumulated through :meth:`observe`."""
        return list(self._online_records)

    def reset(self) -> None:
        """Clear online history and records (assertions stay registered)."""
        self._history = []
        self._next_index = 0
        self._online_records = []

    # ------------------------------------------------------------------
    # Batch monitoring
    # ------------------------------------------------------------------
    def monitor(self, items: list) -> MonitoringReport:
        """Run every enabled assertion over a full stream."""
        names = self.database.names()
        n = len(items)
        severities = np.zeros((n, len(names)), dtype=np.float64)
        records: list = []
        for col, assertion in enumerate(self.database):
            sev = np.asarray(assertion.evaluate_stream(items), dtype=np.float64)
            if sev.shape != (n,):
                raise ValueError(
                    f"assertion {assertion.name!r} returned shape {sev.shape}, expected ({n},)"
                )
            if np.any(sev < 0):
                raise ValueError(f"assertion {assertion.name!r} returned negative severity")
            severities[:, col] = sev
            for pos in np.flatnonzero(sev > 0):
                records.append(
                    AssertionRecord(
                        assertion_name=assertion.name,
                        item_index=items[pos].index,
                        severity=float(sev[pos]),
                    )
                )
        return MonitoringReport(assertion_names=names, severities=severities, records=records)

    def monitor_outputs(
        self,
        outputs_per_item: list,
        *,
        inputs: "list | None" = None,
        timestamps=None,
        fps: "float | None" = None,
    ) -> MonitoringReport:
        """Convenience wrapper: build the stream, then :meth:`monitor`."""
        items = make_stream(
            outputs_per_item, inputs=inputs, timestamps=timestamps, fps=fps
        )
        return self.monitor(items)

    def corrections(self, items: list) -> list:
        """Collect weak-label proposals from every enabled assertion."""
        proposals: list = []
        for assertion in self.database:
            proposals.extend(assertion.corrections(items))
        return proposals
