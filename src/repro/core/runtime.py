"""The OMG runtime monitor.

OMG "logs user-defined assertions as callbacks … Given the model's input
and output, OMG will execute the assertions and record any errors" (§2.4).
This module provides both deployment styles the paper describes:

- **online**: call :meth:`OMG.observe` after every model invocation (or
  :meth:`OMG.observe_batch` on chunks); OMG dispatches each item through
  stateful per-assertion streaming evaluators
  (:mod:`repro.core.streaming`), records fires — including retroactive
  ones, e.g. a flicker only detectable once the object reappears — and
  invokes any registered corrective-action callbacks (e.g., "shutting
  down an autopilot", §1). Cost is O(assertions) amortized per item
  instead of the legacy O(window × assertions) replay.
- **offline/batch**: call :meth:`OMG.monitor` on a full stream
  (historical data, validation sets, human labels) to get a
  :class:`MonitoringReport` whose per-item severity matrix is exactly the
  context matrix BAL consumes for active learning (§3).

The two styles agree: after a stream has been fed through ``observe`` /
``observe_batch``, :meth:`OMG.online_report` reproduces the offline
:meth:`OMG.monitor` severity matrix exactly (the differential invariant
enforced by ``tests/core/test_streaming_equivalence.py``). The guarantee
covers the built-in assertion families — function assertions (any
window), attribute/temporal consistency assertions, and anything
exposing ``evaluate_item``; a custom :class:`ModelAssertion` subclass
with none of those streaming forms falls back to legacy windowed replay
(newest-item severity over the bounded history), which may differ from
a full offline pass.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.assertion import ModelAssertion, as_assertion
from repro.core.consistency import (
    AttributeConsistencyAssertion,
    ConsistencyIndex,
    ConsistencySpec,
    TemporalConsistencyAssertion,
    generate_assertions,
)
from repro.core.database import AssertionDatabase
from repro.core.streaming import StreamingEngine
from repro.core.types import AssertionRecord, StreamItem, make_stream
from repro.utils.codec import from_jsonable, register_result_type, to_jsonable

#: Version tag of the :meth:`OMG.snapshot` payload layout.
SNAPSHOT_FORMAT = 1


@register_result_type
@dataclass
class MonitoringReport:
    """Result of monitoring a stream with a set of assertions.

    Codec-registered so reports cross the network serving layer's
    NDJSON frames losslessly (severities bit-exact).

    Attributes
    ----------
    assertion_names:
        Column order of :attr:`severities`.
    severities:
        ``(n_items, n_assertions)`` severity matrix; entry > 0 means the
        assertion fired on that item.
    records:
        Flat list of :class:`~repro.core.types.AssertionRecord` for every
        positive severity.
    n_items:
        Number of monitored stream items.
    """

    assertion_names: list
    severities: np.ndarray
    records: list = field(default_factory=list)

    @property
    def n_items(self) -> int:
        return int(self.severities.shape[0])

    def column(self, assertion_name: str) -> np.ndarray:
        """Severity vector of one assertion, shape ``(n_items,)``."""
        try:
            col = self.assertion_names.index(assertion_name)
        except ValueError:
            raise KeyError(f"no assertion named {assertion_name!r} in report") from None
        return self.severities[:, col]

    def fire_counts(self) -> dict:
        """Assertion name → number of items with positive severity."""
        return {
            name: int(np.count_nonzero(self.severities[:, col] > 0))
            for col, name in enumerate(self.assertion_names)
        }

    def flagged_indices(self, assertion_name: "str | None" = None) -> np.ndarray:
        """Item indices where the assertion (or any assertion) fired."""
        if assertion_name is None:
            mask = np.any(self.severities > 0, axis=1)
        else:
            mask = self.column(assertion_name) > 0
        return np.flatnonzero(mask)

    def total_fires(self) -> int:
        """Number of (item, assertion) pairs with positive severity."""
        return int(np.count_nonzero(self.severities > 0))


#: Engines selectable at construction. "streaming" is the default
#: incremental path; "legacy" re-evaluates every assertion over the full
#: history window per observation (kept for differential testing and the
#: throughput benchmark's baseline).
ENGINES = ("streaming", "legacy")


class OMG:
    """The model-assertion runtime.

    Parameters
    ----------
    database:
        Shared assertion registry; a fresh one is created when omitted.
    window_size:
        Bound on the trailing history kept for window-replay evaluation
        (the legacy engine, and streaming fallbacks for assertion types
        with no incremental form). Streaming consistency evaluators keep
        per-identifier aggregates since the last :meth:`reset` instead,
        so their online severities match the offline monitor exactly.
    engine:
        ``"streaming"`` (default) or ``"legacy"``; see :data:`ENGINES`.
    max_workers:
        Thread-pool width for ``observe_batch(..., parallel=True)``;
        ``None`` lets the executor pick.

    Examples
    --------
    >>> omg = OMG()
    >>> @omg.assertion
    ... def too_many_outputs(inp, outputs):
    ...     return float(len(outputs) > 3)
    >>> report = omg.monitor_outputs([[1], [1, 2, 3, 4]])
    >>> report.fire_counts()
    {'too_many_outputs': 1}
    """

    def __init__(
        self,
        database: "AssertionDatabase | None" = None,
        *,
        window_size: int = 64,
        engine: str = "streaming",
        max_workers: "int | None" = None,
    ) -> None:
        if window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {window_size}")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.database = database if database is not None else AssertionDatabase()
        self.window_size = window_size
        self.engine = engine
        self._history: deque = deque(maxlen=window_size)
        self._next_index = 0
        self._online_records: list = []
        self._actions: list = []
        # The engine shares OMG's history deque as its recent-item window,
        # so observed items are retained once, not twice.
        self._streaming = StreamingEngine(
            self.database, window_size, max_workers=max_workers, recent=self._history
        )

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_assertion(
        self,
        assertion: "ModelAssertion | Callable",
        name: "str | None" = None,
        **register_kwargs,
    ) -> ModelAssertion:
        """Register an assertion (``AddAssertion(func)`` in the paper).

        Accepts a :class:`ModelAssertion` or any callable of
        ``(input, outputs) -> severity``.
        """
        wrapped = as_assertion(assertion, name)
        return self.database.add(wrapped, **register_kwargs)

    def assertion(self, func: Callable) -> Callable:
        """Decorator form of :meth:`add_assertion`; returns ``func``."""
        self.add_assertion(func)
        return func

    def add_consistency_assertion(
        self,
        id_fn: Callable,
        attrs_fn: "Callable | None" = None,
        temporal_threshold: "float | None" = None,
        *,
        name: str = "consistency",
        attr_keys: "list[str] | None" = None,
        temporal_modes: "list[str] | None" = None,
        weak_label_fn: "Callable | None" = None,
        set_attr_fn: "Callable | None" = None,
        **register_kwargs,
    ) -> list:
        """``AddConsistencyAssertion(Id, Attrs, T)`` from §4.1.

        Generates one Boolean assertion per attribute key plus temporal
        assertions, registers them all, and returns them.
        """
        spec = ConsistencySpec(
            id_fn=id_fn,
            attrs_fn=attrs_fn,
            temporal_threshold=temporal_threshold,
            weak_label_fn=weak_label_fn,
            set_attr_fn=set_attr_fn,
            name=name,
        )
        generated = generate_assertions(
            spec, attr_keys=attr_keys, temporal_modes=temporal_modes
        )
        if not generated:
            raise ValueError(
                "consistency spec generated no assertions: provide attr_keys "
                "(with attrs_fn) and/or temporal_threshold"
            )
        for item in generated:
            self.database.add(item, **register_kwargs)
        return generated

    def remove_assertion(self, name: str) -> None:
        """Unregister an assertion and drop its streaming state.

        Removes the database entry *and* discards the engine's evaluator
        and severity log for ``name``, so later snapshots and reports
        carry no stale column. Fire records already dispatched (e.g. into
        a :class:`~repro.improve.fires.FireStore`) are untouched.
        """
        self.database.remove(name)
        if self.engine != "legacy":
            self._streaming.discard(name)

    @property
    def suite(self):
        """The declarative suite this runtime's database was compiled
        from (``None`` for hand-built databases)."""
        return getattr(self.database, "suite", None)

    def apply_suite(self, suite) -> dict:
        """Reconfigure the live assertion set to ``suite``, in place.

        The new suite is compiled and diffed against the current
        database by entry (spec + weight):

        - **kept** entries (unchanged spec and weight) carry their live
          assertion objects over, so their evaluator state and fire log
          continue seamlessly;
        - **added** (and **replaced**) entries get fresh evaluators,
          warmed on the bounded recent-item window exactly like any
          late-registered assertion — they emit no fire records for
          pre-boundary items (see :meth:`StreamingEngine._sync`);
        - **removed** entries drop their evaluator and severity log;
          their past fires live on wherever ``on_fire`` hooks routed
          them (the serving layer's ``FireStore``).

        Returns ``{"added": [...], "removed": [...], "kept": [...],
        "replaced": [...]}`` of assertion names. Only available on the
        streaming engine. Call at an item boundary (the serving layer's
        :meth:`~repro.serve.MonitorService.apply_suite` enforces a
        raw-unit boundary fleet-wide).
        """
        if self.engine == "legacy":
            raise RuntimeError("apply_suite requires the streaming engine")
        from repro.core.spec import compile_suite

        new_db = compile_suite(suite)
        old_db = self.database
        added: list = []
        kept: list = []
        replaced: list = []
        for name in new_db.all_names():
            new_entry = new_db.entry(name)
            if name not in old_db:
                added.append(name)
                continue
            old_entry = old_db.entry(name)
            if (
                old_entry.spec is not None
                and old_entry.spec.spec == new_entry.spec.spec
                and old_entry.spec.weight == new_entry.spec.weight
            ):
                # Same compiled behavior: keep the live object so the
                # engine recognizes the evaluator as current.
                new_entry.assertion = old_entry.assertion
                kept.append(name)
            else:
                replaced.append(name)
        removed = [name for name in old_db.all_names() if name not in new_db]
        for name in removed + replaced:
            self._streaming.discard(name)
        self.database = new_db
        self._streaming.database = new_db
        # Materialize the new evaluators now (warm-up replay included),
        # so reports taken before the next observation already serve the
        # new suite's columns.
        self._streaming.sync()
        return {
            "added": added,
            "removed": removed,
            "kept": kept,
            "replaced": replaced,
        }

    def on_fire(self, action: Callable[[AssertionRecord], None]) -> Callable:
        """Register a corrective-action callback for online monitoring.

        Called once per fresh :class:`AssertionRecord` produced by
        :meth:`observe` — the paper's "log unexpected behavior or
        automatically trigger corrective actions" hook (§1).
        """
        self._actions.append(action)
        return action

    # ------------------------------------------------------------------
    # Online monitoring
    # ------------------------------------------------------------------
    def _make_item(self, model_input: Any, outputs, timestamp: "float | None") -> StreamItem:
        if timestamp is None:
            timestamp = float(self._next_index)
        item = StreamItem(
            index=self._next_index,
            timestamp=timestamp,
            input=model_input,
            outputs=tuple(outputs),
        )
        self._next_index += 1
        return item

    def _dispatch(self, records: list) -> None:
        self._online_records.extend(records)
        for record in records:
            for action in self._actions:
                action(record)

    def _observe_legacy(self, item: StreamItem) -> list:
        self._history.append(item)
        fresh: list = []
        window = list(self._history)
        last = len(window) - 1
        for assertion in self.database:
            severities = assertion.evaluate_stream(window)
            severity = float(severities[last])
            if severity > 0:
                fresh.append(
                    AssertionRecord(
                        assertion_name=assertion.name,
                        item_index=item.index,
                        severity=severity,
                    )
                )
        return fresh

    def observe(
        self,
        model_input: Any,
        outputs,
        *,
        timestamp: "float | None" = None,
    ) -> list:
        """Ingest one model invocation; return fresh fire records.

        On the streaming engine each assertion's evaluator consumes the
        item incrementally; returned records cover the new item plus any
        retroactive severity revisions to earlier items (consistency
        assertions attribute gap/run violations once the closing
        transition is seen). Every returned record is also dispatched to
        :meth:`on_fire` callbacks.
        """
        item = self._make_item(model_input, outputs, timestamp)
        if self.engine == "legacy":
            fresh = self._observe_legacy(item)
        else:
            fresh = self._streaming.ingest(item)  # appends to the shared history
        self._dispatch(fresh)
        return fresh

    def observe_batch(
        self,
        model_inputs: "list | None",
        outputs_per_item: list,
        *,
        timestamps=None,
        parallel: bool = False,
    ) -> MonitoringReport:
        """Ingest a chunk of invocations; return the chunk's report.

        The returned :class:`MonitoringReport` covers the chunk's items
        (rows in chunk order) with severities as of the end of the chunk,
        so within-chunk retroactive revisions are already folded in.
        ``report.records`` holds the fresh fire records, which may also
        reference pre-chunk items. With ``parallel=True`` independent
        assertions consume the chunk on separate threads (results are
        bit-identical to the serial path).

        Only available on the streaming engine.
        """
        if self.engine == "legacy":
            raise RuntimeError("observe_batch requires the streaming engine")
        n = len(outputs_per_item)
        if model_inputs is not None and len(model_inputs) != n:
            raise ValueError(f"{len(model_inputs)} inputs but {n} output lists")
        if timestamps is not None and len(timestamps) != n:
            raise ValueError(f"{len(timestamps)} timestamps but {n} output lists")
        items = [
            self._make_item(
                model_inputs[i] if model_inputs is not None else None,
                outputs_per_item[i],
                float(timestamps[i]) if timestamps is not None else None,
            )
            for i in range(n)
        ]
        fresh = self._streaming.ingest_batch(items, parallel=parallel)
        self._dispatch(fresh)
        start = items[0].index if items else self._next_index
        names, chunk = self._streaming.chunk_matrix(start, self._next_index)
        return MonitoringReport(assertion_names=names, severities=chunk, records=fresh)

    @property
    def online_records(self) -> list:
        """All records accumulated through :meth:`observe`."""
        return list(self._online_records)

    @property
    def n_observed(self) -> int:
        """Items ingested online since the last :meth:`reset` (also the
        index the next observed item will get)."""
        return self._next_index

    def online_report(self) -> MonitoringReport:
        """Severity matrix accumulated by the streaming engine.

        Covers every item observed since the last :meth:`reset`, with all
        retroactive revisions applied — equal to what :meth:`monitor`
        computes offline over the same items for every assertion with a
        streaming form (function, consistency, or ``evaluate_item``; the
        streaming-equivalence invariant). Custom assertion subclasses
        with none of those fall back to newest-item windowed replay, as
        the legacy engine always did. Only available on the streaming
        engine.
        """
        if self.engine == "legacy":
            raise RuntimeError("online_report requires the streaming engine")
        names, matrix = self._streaming.severity_matrix(self._next_index)
        records = [
            AssertionRecord(
                assertion_name=names[col],
                item_index=int(row),
                severity=float(matrix[row, col]),
            )
            for row, col in zip(*np.nonzero(matrix > 0))
        ]
        return MonitoringReport(
            assertion_names=names, severities=matrix, records=records
        )

    def reset(self) -> None:
        """Clear online history and records (assertions stay registered)."""
        self._history.clear()
        self._next_index = 0
        self._online_records = []
        self._streaming.reset()

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Checkpoint the full online monitoring state as a JSON payload.

        Captures everything :meth:`observe` accumulates — the streaming
        evaluators' rolling state, the sparse severity log, the bounded
        recent-item window, the item counter, and the online records — as
        primitives the :mod:`repro.utils.codec` round-trips bit-exactly
        through ``json.dumps``/``loads``. A monitor restored from the
        payload (:meth:`restore`) continues the stream as if it had never
        stopped: subsequent reports are bit-identical to an uninterrupted
        run.

        Stream items must hold codec-encodable inputs/outputs (the
        built-in domains' outputs all are); corrective-action callbacks
        are not part of the payload and must be re-registered by the
        owner. Only available on the streaming engine.
        """
        if self.engine == "legacy":
            raise RuntimeError("snapshot requires the streaming engine")
        payload = {
            "format": SNAPSHOT_FORMAT,
            "window_size": self.window_size,
            "assertions": self.database.names(),
            "next_index": self._next_index,
            "online_records": to_jsonable(self._online_records),
            "streaming": self._streaming.get_state(),
        }
        if self.suite is not None:
            # Suite-compiled runtimes embed the declarative suite, so a
            # restore can rebuild the exact assertion set from the
            # payload alone (see restore / from_snapshot).
            payload["suite"] = to_jsonable(self.suite)
        return payload

    def restore(self, snapshot: dict) -> None:
        """Restore monitoring state captured by :meth:`snapshot`.

        The runtime must be configured like the one that took the
        snapshot: same ``window_size`` and the same enabled assertion
        names in the same order (build it the same way — e.g. via the
        same :class:`~repro.domains.registry.Domain` — then restore).
        """
        if self.engine == "legacy":
            raise RuntimeError("restore requires the streaming engine")
        fmt = snapshot.get("format")
        if fmt != SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported snapshot format {fmt!r} (expected {SNAPSHOT_FORMAT})"
            )
        if int(snapshot["window_size"]) != self.window_size:
            raise ValueError(
                f"snapshot window_size {snapshot['window_size']} != "
                f"runtime window_size {self.window_size}"
            )
        if snapshot.get("suite") is not None and not self.database.all_names():
            # An empty runtime rebuilds the exact assertion set from the
            # embedded declarative suite (the OMG.from_snapshot path).
            from repro.core.spec import compile_suite

            compile_suite(from_jsonable(snapshot["suite"]), database=self.database)
        names = self.database.names()
        if list(snapshot["assertions"]) != names:
            raise ValueError(
                f"snapshot assertions {list(snapshot['assertions'])!r} do not match "
                f"the registered assertions {names!r}"
            )
        self.reset()
        self._next_index = int(snapshot["next_index"])
        self._online_records = list(from_jsonable(snapshot["online_records"]))
        self._streaming.set_state(snapshot["streaming"])

    @classmethod
    def from_snapshot(cls, snapshot: dict, *, max_workers: "int | None" = None) -> "OMG":
        """Rebuild a runtime entirely from a snapshot payload.

        Requires the payload to embed a declarative suite (snapshots of
        suite-compiled runtimes do); hand-built runtimes must be
        reconstructed by their owner and restored with :meth:`restore`.
        """
        if snapshot.get("suite") is None:
            raise ValueError(
                "snapshot embeds no assertion suite; rebuild the runtime "
                "the way it was built, then call restore()"
            )
        omg = cls(window_size=int(snapshot["window_size"]), max_workers=max_workers)
        omg.restore(snapshot)
        return omg

    # ------------------------------------------------------------------
    # Batch monitoring
    # ------------------------------------------------------------------
    def _consistency_indices(self, items: list) -> dict:
        """One :class:`ConsistencyIndex` per distinct spec in the database.

        All assertions generated from the same :class:`ConsistencySpec`
        share one grouping pass over the stream instead of regrouping
        per assertion.
        """
        indices: dict = {}
        for assertion in self.database:
            spec = getattr(assertion, "spec", None)
            if isinstance(spec, ConsistencySpec) and id(spec) not in indices:
                indices[id(spec)] = ConsistencyIndex(spec, items)
        return indices

    def monitor(self, items: list) -> MonitoringReport:
        """Run every enabled assertion over a full stream."""
        names = self.database.names()
        n = len(items)
        indices = self._consistency_indices(items)
        severities = np.zeros((n, len(names)), dtype=np.float64)
        records: list = []
        for col, assertion in enumerate(self.database):
            if isinstance(
                assertion, (AttributeConsistencyAssertion, TemporalConsistencyAssertion)
            ):
                sev = assertion.evaluate_stream(
                    items, index=indices[id(assertion.spec)]
                )
            else:
                sev = assertion.evaluate_stream(items)
            sev = np.asarray(sev, dtype=np.float64)
            if sev.shape != (n,):
                raise ValueError(
                    f"assertion {assertion.name!r} returned shape {sev.shape}, expected ({n},)"
                )
            if np.any(sev < 0):
                raise ValueError(f"assertion {assertion.name!r} returned negative severity")
            severities[:, col] = sev
            for pos in np.flatnonzero(sev > 0):
                records.append(
                    AssertionRecord(
                        assertion_name=assertion.name,
                        item_index=items[pos].index,
                        severity=float(sev[pos]),
                    )
                )
        return MonitoringReport(assertion_names=names, severities=severities, records=records)

    def monitor_outputs(
        self,
        outputs_per_item: list,
        *,
        inputs: "list | None" = None,
        timestamps=None,
        fps: "float | None" = None,
    ) -> MonitoringReport:
        """Convenience wrapper: build the stream, then :meth:`monitor`."""
        items = make_stream(
            outputs_per_item, inputs=inputs, timestamps=timestamps, fps=fps
        )
        return self.monitor(items)

    def corrections(self, items: list) -> list:
        """Collect weak-label proposals from every enabled assertion."""
        indices = self._consistency_indices(items)
        proposals: list = []
        for assertion in self.database:
            if isinstance(
                assertion, (AttributeConsistencyAssertion, TemporalConsistencyAssertion)
            ):
                proposals.extend(
                    assertion.corrections(items, index=indices[id(assertion.spec)])
                )
            else:
                proposals.extend(assertion.corrections(items))
        return proposals
