"""Weak supervision via consistency-assertion corrections (§4.2, §5.5).

"By running the model and these generated assertions over unlabeled data,
OMG can thus automatically generate weak labels for data points that do
not satisfy the consistency assertions." The harvested labels are the
*corrected* model outputs: attribute mismatches repaired to the majority
value, short-lived appearances removed, and flicker gaps filled by the
user's ``WeakLabel`` function. Retraining on them requires no human
labels (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.runtime import OMG
from repro.core.types import Correction, StreamItem, apply_corrections


@dataclass
class WeakLabelSet:
    """Weak labels harvested from one monitored stream.

    Attributes
    ----------
    items:
        The corrected stream (one :class:`StreamItem` per original item,
        outputs repaired).
    corrections:
        The individual proposals that were applied.
    changed_indices:
        Item indices whose outputs differ from the model's raw outputs —
        the data points the assertions actually touched.
    """

    items: list
    corrections: list = field(default_factory=list)
    changed_indices: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.intp))

    @property
    def n_changed(self) -> int:
        return int(self.changed_indices.shape[0])

    def corrected_outputs(self) -> list:
        """Per-item corrected output lists (the weak training targets)."""
        return [list(item.outputs) for item in self.items]


def harvest_weak_labels(
    omg: OMG,
    items: list,
    *,
    extra_rules: "list[Callable] | None" = None,
) -> WeakLabelSet:
    """Run correction rules over a stream and apply them.

    Parameters
    ----------
    omg:
        Runtime whose registered (consistency) assertions propose
        corrections.
    items:
        The monitored stream of model outputs.
    extra_rules:
        Optional user weak-supervision rules (§2.3: "Users can also
        register their own weak supervision rules"): each is called as
        ``rule(items) -> list[Correction]`` and its proposals are merged
        with the assertion-generated ones.
    """
    corrections: list = omg.corrections(items)
    for rule in extra_rules or []:
        corrections.extend(rule(items))
    corrected = apply_corrections(items, corrections)
    changed = np.asarray(
        [
            item.index
            for item, fixed in zip(items, corrected)
            if tuple(item.outputs) != tuple(fixed.outputs)
        ],
        dtype=np.intp,
    )
    return WeakLabelSet(items=corrected, corrections=corrections, changed_indices=changed)


@dataclass
class WeakSupervisionResult:
    """Before/after metrics for one weak-supervision experiment (Table 4)."""

    domain: str
    pretrained_metric: float
    weakly_supervised_metric: float
    n_weak_labels: int = 0
    metric_name: str = "mAP"

    @property
    def absolute_improvement(self) -> float:
        return self.weakly_supervised_metric - self.pretrained_metric

    @property
    def relative_improvement(self) -> float:
        """Relative model-quality improvement, the paper's headline unit.

        E.g., video analytics: (49.9 − 34.4) / 34.4 ≈ 45%–46%.
        """
        if self.pretrained_metric == 0:
            return float("inf") if self.weakly_supervised_metric > 0 else 0.0
        return self.absolute_improvement / self.pretrained_metric
