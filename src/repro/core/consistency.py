"""Consistency assertions (§4 of the paper).

The key idea is "to specify which attributes of a model's output are
expected to match across many invocations to the model" (§4). The
developer provides:

- ``Id(y_ij)`` — an identifier for each model output (an opaque value);
- ``Attrs(y_ij)`` — named attributes expected to be consistent per
  identifier (key → value pairs);
- optionally a temporal consistency threshold ``T`` in seconds: each
  identifier should not appear or disappear for intervals shorter than
  ``T`` (at most one transition per ``T``-second window).

From one :class:`ConsistencySpec`, OMG generates *multiple Boolean model
assertions* — one :class:`AttributeConsistencyAssertion` per attribute key
plus a :class:`TemporalConsistencyAssertion` when ``T`` is given — and
*correction rules* that propose weak labels for failing outputs (§4.2):
the most common attribute value for mismatches, removal of short-lived
appearances, and user-``WeakLabel``-imputed outputs for short gaps.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.assertion import ModelAssertion
from repro.core.types import Correction, StreamItem


@dataclass(frozen=True)
class Observation:
    """One (item, output) pair belonging to an identifier group."""

    item_index: int
    timestamp: float
    output_index: int
    output: Any


@dataclass
class ConsistencySpec:
    """Declarative spec from which consistency assertions are generated.

    Attributes
    ----------
    id_fn:
        ``Id(output) -> hashable`` — identifier for each output. Outputs
        whose identifier is ``None`` are ignored.
    attrs_fn:
        ``Attrs(output) -> dict`` — named attributes for the output.
        ``None`` (or an empty dict) means no attribute checks.
    temporal_threshold:
        ``T`` in seconds; ``None`` disables the temporal assertion.
    weak_label_fn:
        ``WeakLabel(identifier, item, observations) -> output | None`` —
        imputes an output for an item inside a flicker gap, given all of
        the identifier's observations. Required for "add" corrections
        (§4.2: "OMG requires the user to provide a WeakLabel function to
        cover this case, since it may require domain specific logic").
    set_attr_fn:
        ``set_attr(output, key, value) -> output`` — build the corrected
        output for attribute mismatches. Defaults to dict-style update for
        mapping outputs and ``dataclasses.replace``-style for objects with
        the attribute; provide explicitly for anything else.
    name:
        Base name for the generated assertions (``{name}:attr:{key}``,
        ``{name}:temporal``).
    """

    id_fn: Callable[[Any], Any]
    attrs_fn: "Callable[[Any], dict] | None" = None
    temporal_threshold: "float | None" = None
    weak_label_fn: "Callable | None" = None
    set_attr_fn: "Callable | None" = None
    name: str = "consistency"

    def __post_init__(self) -> None:
        if self.temporal_threshold is not None and self.temporal_threshold <= 0:
            raise ValueError(
                f"temporal_threshold must be > 0 seconds, got {self.temporal_threshold}"
            )
        if self.attrs_fn is None and self.temporal_threshold is None:
            # With neither attributes nor a temporal threshold the spec
            # silently generates zero assertions — reject it up front.
            raise ValueError(
                f"consistency spec {self.name!r} would generate zero "
                "assertions: provide attrs_fn (with attribute keys) and/or "
                "a temporal_threshold"
            )

    def attributes_of(self, output: Any) -> dict:
        if self.attrs_fn is None:
            return {}
        attrs = self.attrs_fn(output)
        return dict(attrs) if attrs else {}

    def set_attribute(self, output: Any, key: str, value: Any) -> Any:
        if self.set_attr_fn is not None:
            return self.set_attr_fn(output, key, value)
        if isinstance(output, dict):
            fixed = dict(output)
            fixed[key] = value
            return fixed
        if hasattr(output, key):
            import copy
            import dataclasses

            if dataclasses.is_dataclass(output):
                return dataclasses.replace(output, **{key: value})
            fixed = copy.copy(output)
            setattr(fixed, key, value)
            return fixed
        raise TypeError(
            f"cannot set attribute {key!r} on {type(output).__name__}; "
            "provide set_attr_fn in the ConsistencySpec"
        )


def group_observations(spec: ConsistencySpec, items: list) -> dict:
    """Group stream outputs by identifier.

    Returns identifier → list of :class:`Observation` in stream order.
    Outputs with identifier ``None`` are skipped.
    """
    groups: dict = {}
    for item in items:
        for out_idx, output in enumerate(item.outputs):
            identifier = spec.id_fn(output)
            if identifier is None:
                continue
            groups.setdefault(identifier, []).append(
                Observation(item.index, item.timestamp, out_idx, output)
            )
    return groups


class ConsistencyIndex:
    """Shared, lazily-computed grouping of one stream for one spec.

    Every assertion generated from a single :class:`ConsistencySpec`
    needs the same identifier bookkeeping — attribute assertions the
    per-identifier observation groups, temporal assertions the
    per-identifier presence positions. Building it once per
    (spec, stream) pair and passing it to each assertion's
    ``evaluate_stream``/``corrections`` turns the offline monitor's
    per-assertion regrouping into one pass per spec.
    """

    def __init__(self, spec: ConsistencySpec, items: list) -> None:
        self.spec = spec
        self.items = items
        self._groups: "dict | None" = None
        self._presence: "dict | None" = None

    @property
    def groups(self) -> dict:
        """identifier → list of :class:`Observation` (see
        :func:`group_observations`)."""
        if self._groups is None:
            self._groups = group_observations(self.spec, self.items)
        return self._groups

    @property
    def presence(self) -> dict:
        """identifier → sorted window *positions* where it appears.

        Positions index into ``items`` (not ``item.index``), and each
        identifier is counted at most once per item.
        """
        if self._presence is None:
            presence: dict = {}
            for pos, item in enumerate(self.items):
                seen_here = set()
                for output in item.outputs:
                    identifier = self.spec.id_fn(output)
                    if identifier is None or identifier in seen_here:
                        continue
                    seen_here.add(identifier)
                    presence.setdefault(identifier, []).append(pos)
            self._presence = presence
        return self._presence


def majority_value(values: list) -> Any:
    """Most common value; ties broken by first occurrence (§4.2 default)."""
    counts = Counter(values)
    best_count = max(counts.values())
    for value in values:  # first-seen among the tied maxima
        if counts[value] == best_count:
            return value
    raise AssertionError("unreachable")  # pragma: no cover


class AttributeConsistencyAssertion(ModelAssertion):
    """Fires when outputs sharing an identifier disagree on an attribute.

    Severity for item *i* is the number of its outputs whose attribute
    value differs from the majority value among all outputs of the same
    identifier in the evaluated window (0 when every group is unanimous).
    The correction rule proposes the majority value — but abstains when no
    strict majority exists, because then the rule cannot tell which
    observation is wrong.
    """

    taxonomy_class = "consistency"

    def __init__(self, spec: ConsistencySpec, attr_key: str) -> None:
        super().__init__(
            name=f"{spec.name}:attr:{attr_key}",
            description=f"outputs with one identifier must agree on {attr_key!r}",
        )
        self.spec = spec
        self.attr_key = attr_key

    def _deviations(self, items: list, index: "ConsistencyIndex | None" = None):
        """Yield (observation, majority) for outputs deviating from their group."""
        groups = index.groups if index is not None else group_observations(self.spec, items)
        for identifier, observations in groups.items():
            values = []
            kept = []
            for obs in observations:
                attrs = self.spec.attributes_of(obs.output)
                if self.attr_key in attrs:
                    values.append(attrs[self.attr_key])
                    kept.append(obs)
            if len(values) < 2:
                continue
            counts = Counter(values)
            if len(counts) == 1:
                continue
            majority = majority_value(values)
            strict = counts[majority] * 2 > len(values)
            for obs, value in zip(kept, values):
                if value != majority:
                    yield obs, identifier, (majority if strict else None)

    def evaluate_stream(self, items: list, index: "ConsistencyIndex | None" = None) -> np.ndarray:
        severities = np.zeros(len(items), dtype=np.float64)
        index_of = {item.index: pos for pos, item in enumerate(items)}
        for obs, _identifier, _majority in self._deviations(items, index):
            severities[index_of[obs.item_index]] += 1.0
        return severities

    def corrections(self, items: list, index: "ConsistencyIndex | None" = None) -> list:
        proposals = []
        for obs, identifier, majority in self._deviations(items, index):
            if majority is None:
                continue  # tie: cannot pick a correction confidently
            fixed = self.spec.set_attribute(obs.output, self.attr_key, majority)
            proposals.append(
                Correction(
                    kind="modify",
                    item_index=obs.item_index,
                    assertion_name=self.name,
                    identifier=identifier,
                    output_index=obs.output_index,
                    proposed_output=fixed,
                )
            )
        return proposals


@dataclass(frozen=True)
class TemporalViolation:
    """A run/gap of an identifier's presence that is shorter than ``T``."""

    kind: str  # "gap" (disappear→reappear < T) or "run" (appear→disappear < T)
    identifier: Any
    start_pos: int  # position in the evaluated window (inclusive)
    end_pos: int  # position in the evaluated window (inclusive)
    duration: float


class TemporalConsistencyAssertion(ModelAssertion):
    """Fires when an identifier appears or disappears for less than ``T``.

    The paper's default temporal rule: "at most one transition can occur
    within a T-second window" (§4.2). An identifier present, absent for a
    gap shorter than ``T``, then present again violates this (two
    transitions: the *flicker* of Figure 1); an identifier absent, present
    for a run shorter than ``T``, then absent again also does (a spurious
    *appearance*).

    ``mode`` selects which violation kinds this instance checks, letting a
    domain register the two as separately-named assertions (the paper's
    ``flicker`` and ``appear``):

    - ``"gap"`` — short absences only; severity lands on the gap items
      (where the object is missing) and corrections are "add" proposals
      via the spec's ``WeakLabel`` function.
    - ``"run"`` — short presences only; severity lands on the run items
      and corrections are "remove" proposals.
    - ``"both"`` (default) — check both kinds.

    Edge runs/gaps touching the window boundary are not flagged: the
    stream may continue past what we can see.
    """

    taxonomy_class = "consistency"

    def __init__(self, spec: ConsistencySpec, mode: str = "both", name: "str | None" = None) -> None:
        if spec.temporal_threshold is None:
            raise ValueError("spec.temporal_threshold is required for temporal assertions")
        if mode not in ("gap", "run", "both"):
            raise ValueError(f"mode must be 'gap', 'run', or 'both', got {mode!r}")
        super().__init__(
            name=name or f"{spec.name}:temporal",
            description=(
                f"identifiers must not appear/disappear for < {spec.temporal_threshold}s"
            ),
        )
        self.spec = spec
        self.mode = mode

    # ------------------------------------------------------------------
    # Violation detection
    # ------------------------------------------------------------------
    def violations(self, items: list, index: "ConsistencyIndex | None" = None) -> list:
        """All :class:`TemporalViolation` s in the window, in stream order."""
        if not items:
            return []
        threshold = float(self.spec.temporal_threshold)
        timestamps = np.array([item.timestamp for item in items], dtype=np.float64)
        n = len(items)

        # presence[identifier] = sorted window positions where it appears
        presence = (
            index.presence
            if index is not None
            else ConsistencyIndex(self.spec, items).presence
        )

        found: list = []
        for identifier, positions in presence.items():
            pos_arr = np.asarray(positions)
            # Split into contiguous runs of presence.
            breaks = np.flatnonzero(np.diff(pos_arr) > 1)
            run_starts = np.concatenate([[0], breaks + 1])
            run_ends = np.concatenate([breaks, [len(pos_arr) - 1]])
            runs = [(int(pos_arr[s]), int(pos_arr[e])) for s, e in zip(run_starts, run_ends)]

            # Gaps between consecutive runs: disappear then reappear.
            for (s1, e1), (s2, e2) in zip(runs[:-1], runs[1:]):
                gap_duration = timestamps[s2] - timestamps[e1]
                if gap_duration < threshold:
                    found.append(
                        TemporalViolation(
                            kind="gap",
                            identifier=identifier,
                            start_pos=e1 + 1,
                            end_pos=s2 - 1,
                            duration=float(gap_duration),
                        )
                    )

            # Short presence runs bounded by absence on both sides.
            for start, end in runs:
                run_duration = timestamps[end] - timestamps[start]
                interior = start > 0 and end < n - 1
                if interior and run_duration < threshold:
                    found.append(
                        TemporalViolation(
                            kind="run",
                            identifier=identifier,
                            start_pos=start,
                            end_pos=end,
                            duration=float(run_duration),
                        )
                    )

        wanted = ("gap", "run") if self.mode == "both" else (self.mode,)
        found = [v for v in found if v.kind in wanted]
        found.sort(key=lambda v: (v.start_pos, str(v.identifier)))
        return found

    def evaluate_stream(self, items: list, index: "ConsistencyIndex | None" = None) -> np.ndarray:
        severities = np.zeros(len(items), dtype=np.float64)
        for violation in self.violations(items, index):
            span = range(violation.start_pos, violation.end_pos + 1)
            for pos in span:
                severities[pos] += 1.0
        return severities

    def corrections(self, items: list, index: "ConsistencyIndex | None" = None) -> list:
        proposals = []
        groups = index.groups if index is not None else group_observations(self.spec, items)
        for violation in self.violations(items, index):
            if violation.kind == "run":
                # Remove every output of this identifier within the run.
                for pos in range(violation.start_pos, violation.end_pos + 1):
                    item = items[pos]
                    for out_idx, output in enumerate(item.outputs):
                        if self.spec.id_fn(output) == violation.identifier:
                            proposals.append(
                                Correction(
                                    kind="remove",
                                    item_index=item.index,
                                    assertion_name=self.name,
                                    identifier=violation.identifier,
                                    output_index=out_idx,
                                )
                            )
            else:  # gap: impute the missing outputs, if the user taught us how
                if self.spec.weak_label_fn is None:
                    continue
                observations = groups.get(violation.identifier, [])
                for pos in range(violation.start_pos, violation.end_pos + 1):
                    item = items[pos]
                    imputed = self.spec.weak_label_fn(violation.identifier, item, observations)
                    if imputed is None:
                        continue
                    proposals.append(
                        Correction(
                            kind="add",
                            item_index=item.index,
                            assertion_name=self.name,
                            identifier=violation.identifier,
                            proposed_output=imputed,
                        )
                    )
        return proposals


def generate_assertions(
    spec: ConsistencySpec,
    *,
    attr_keys: "list[str] | None" = None,
    temporal_modes: "list[str] | None" = None,
    sample_outputs: "list | None" = None,
) -> list:
    """Generate the Boolean assertions implied by a consistency spec.

    One attribute assertion per key plus temporal assertions per mode.
    ``attr_keys`` defaults to the keys found in ``sample_outputs`` (their
    union), so callers that know outputs ahead of time need not enumerate
    keys by hand; with neither provided, no attribute assertions are
    generated.
    """
    assertions: list = []
    if spec.attrs_fn is not None:
        keys = attr_keys
        if keys is None and sample_outputs:
            seen: dict = {}
            for output in sample_outputs:
                for key in spec.attributes_of(output):
                    seen.setdefault(key, None)
            keys = list(seen)
        for key in keys or []:
            assertions.append(AttributeConsistencyAssertion(spec, key))
    if spec.temporal_threshold is not None:
        for mode in temporal_modes or ["both"]:
            suffix = "temporal" if mode == "both" else f"temporal:{mode}"
            assertions.append(
                TemporalConsistencyAssertion(spec, mode=mode, name=f"{spec.name}:{suffix}")
            )
    return assertions
