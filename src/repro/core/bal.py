"""BAL: bandit-based data selection for active learning (§3, Algorithm 2).

BAL casts data selection as a contextual combinatorial multi-armed bandit:
arms are unlabeled data points, the context of a point is its vector of
assertion severity scores, and the (unobservable) reward is the marginal
improvement in model quality. The resource-constrained simplifications
(§3) are:

1. points with similar contexts are interchangeable;
2. higher severity ⇒ higher expected marginal gain;
3. reducing the number of triggered assertions increases accuracy.

Concretely (Algorithm 2):

- **round 0** — sample points uniformly at random from the *d* model
  assertions (pick an assertion uniformly, then a random triggering point);
- **round t > 0** — compute each assertion's *marginal reduction* ``r_m``
  in fire count versus the previous round; if **all** ``r_m`` fall below a
  threshold (1%), fall back to the baseline method (random or uncertainty
  sampling) for the round; otherwise spend 25% of the budget sampling
  uniformly across assertions (an ε-greedy exploration floor) and the rest
  selecting assertions proportional to ``r_m`` and, within an assertion,
  points proportional to severity-score *rank*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction


@dataclass
class BALSelection:
    """Outcome of one BAL round.

    Attributes
    ----------
    indices:
        Selected pool indices, length ≤ budget (deduplicated).
    used_fallback:
        True when the round was delegated to the baseline method.
    reductions:
        Per-assertion marginal reductions ``r_m`` (empty array in round 0).
    fire_counts:
        Per-assertion fire counts observed this round.
    """

    indices: np.ndarray
    used_fallback: bool
    reductions: np.ndarray
    fire_counts: np.ndarray


class BAL:
    """Algorithm 2 of the paper.

    Parameters
    ----------
    fallback:
        ``"random"`` or ``"uncertainty"`` — the baseline used when no
        assertion's fire count is shrinking (§3: "BAL will default to
        random sampling or uncertainty sampling, as specified by the
        user").
    exploration_fraction:
        Budget share reserved for uniform sampling across assertions
        (the paper uses 25%).
    reduction_threshold:
        Relative-reduction cutoff below which an assertion is considered
        stalled (the paper uses 1%).
    rank_power:
        Exponent on the severity-rank weights; 1.0 reproduces the paper's
        linear rank weighting, 0.0 degrades to uniform-within-assertion
        (used by the ablation bench).
    """

    def __init__(
        self,
        *,
        fallback: str = "random",
        exploration_fraction: float = 0.25,
        reduction_threshold: float = 0.01,
        rank_power: float = 1.0,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        if fallback not in ("random", "uncertainty"):
            raise ValueError(f"fallback must be 'random' or 'uncertainty', got {fallback!r}")
        check_fraction(exploration_fraction, "exploration_fraction")
        if rank_power < 0:
            raise ValueError(f"rank_power must be >= 0, got {rank_power}")
        self.fallback = fallback
        self.exploration_fraction = exploration_fraction
        self.reduction_threshold = reduction_threshold
        self.rank_power = rank_power
        self._rng = as_generator(seed)
        self._prev_fire_counts: "np.ndarray | None" = None
        self._round = 0

    @property
    def round_index(self) -> int:
        """Number of completed :meth:`select` calls."""
        return self._round

    def reset(self) -> None:
        """Forget all cross-round state (fire counts, round counter)."""
        self._prev_fire_counts = None
        self._round = 0

    def get_state(self) -> dict:
        """JSON-encodable snapshot of the bandit's cross-round state.

        Carries the posterior inputs (the previous round's fire counts),
        the round counter, and the generator position, so a restored
        bandit makes bit-identical selections to one that never paused —
        the improvement loop persists this alongside its fire store.
        """
        from repro.utils.rng import generator_state

        return {
            "round": self._round,
            "prev_fire_counts": (
                None
                if self._prev_fire_counts is None
                else self._prev_fire_counts.copy()
            ),
            "rng": generator_state(self._rng),
        }

    def set_state(self, payload: dict) -> None:
        """Restore :meth:`get_state` output (inverse, bit-exact)."""
        from repro.utils.rng import generator_from_state

        self._round = int(payload["round"])
        prev = payload["prev_fire_counts"]
        self._prev_fire_counts = (
            None if prev is None else np.asarray(prev, dtype=np.float64)
        )
        self._rng = generator_from_state(payload["rng"])

    # ------------------------------------------------------------------
    def select(
        self,
        severities: np.ndarray,
        budget: int,
        *,
        uncertainty: "np.ndarray | None" = None,
        selectable: "np.ndarray | None" = None,
    ) -> BALSelection:
        """Choose up to ``budget`` pool indices to label this round.

        Parameters
        ----------
        severities:
            ``(n, d)`` matrix of assertion severity scores on the current
            model's pool predictions (0 = abstain).
        budget:
            Number of points to select (``B_t``).
        uncertainty:
            ``(n,)`` model-uncertainty scores; required when
            ``fallback="uncertainty"``.
        selectable:
            Boolean mask of pool points still eligible (e.g., not yet
            labeled). Defaults to all.
        """
        sev = np.asarray(severities, dtype=np.float64)
        if sev.ndim != 2:
            raise ValueError(f"severities must be (n, d), got shape {sev.shape}")
        n, d = sev.shape
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        if selectable is None:
            eligible = np.ones(n, dtype=bool)
        else:
            eligible = np.asarray(selectable, dtype=bool)
            if eligible.shape != (n,):
                raise ValueError(f"selectable shape {eligible.shape} != ({n},)")
        if self.fallback == "uncertainty" and uncertainty is None:
            raise ValueError("fallback='uncertainty' requires uncertainty scores")
        if uncertainty is not None:
            uncertainty = np.asarray(uncertainty, dtype=np.float64)
            if uncertainty.shape != (n,):
                raise ValueError(f"uncertainty shape {uncertainty.shape} != ({n},)")

        # Fire counts are measured over the *whole* pool so that rounds
        # are comparable even as points get labeled and removed.
        fire_counts = np.count_nonzero(sev > 0, axis=0).astype(np.float64)

        if self._round == 0 or self._prev_fire_counts is None:
            reductions = np.zeros(0, dtype=np.float64)
            chosen, fell_back = self._select_round0(sev, budget, eligible, uncertainty)
        else:
            prev = self._prev_fire_counts
            if prev.shape != (d,):
                raise ValueError(
                    f"assertion count changed between rounds: {prev.shape[0]} -> {d}"
                )
            with np.errstate(divide="ignore", invalid="ignore"):
                reductions = np.where(prev > 0, (prev - fire_counts) / prev, 0.0)
            if np.all(reductions < self.reduction_threshold):
                chosen = self._fallback_indices(budget, eligible, uncertainty)
                fell_back = True
            else:
                chosen = self._select_guided(sev, budget, eligible, reductions, uncertainty)
                fell_back = False

        self._prev_fire_counts = fire_counts
        self._round += 1
        return BALSelection(
            indices=np.asarray(chosen, dtype=np.intp),
            used_fallback=fell_back,
            reductions=reductions,
            fire_counts=fire_counts,
        )

    # ------------------------------------------------------------------
    def _select_round0(self, sev, budget, eligible, uncertainty):
        """Uniformly random over assertions, then over triggering points."""
        chosen = self._draw_from_assertions(
            sev, budget, eligible, assertion_weights=None, rank_weighted=False
        )
        if len(chosen) < budget:  # not enough triggering points: top up
            extra = self._fallback_indices(
                budget - len(chosen), eligible & ~_mask(chosen, sev.shape[0]), uncertainty
            )
            chosen = np.concatenate([chosen, extra])
            return chosen, True
        return chosen, False

    def _select_guided(self, sev, budget, eligible, reductions, uncertainty):
        """25% exploration + 75% proportional to marginal reduction."""
        explore_budget = int(np.floor(self.exploration_fraction * budget))
        exploit_budget = budget - explore_budget

        gains = np.clip(reductions, 0.0, None)
        if gains.sum() <= 0:
            gains = np.ones_like(gains)

        explore = self._draw_from_assertions(
            sev, explore_budget, eligible, assertion_weights=None, rank_weighted=False
        )
        remaining = eligible & ~_mask(explore, sev.shape[0])
        exploit = self._draw_from_assertions(
            sev, exploit_budget, remaining, assertion_weights=gains, rank_weighted=True
        )
        chosen = np.concatenate([explore, exploit])
        if len(chosen) < budget:
            extra = self._fallback_indices(
                budget - len(chosen), eligible & ~_mask(chosen, sev.shape[0]), uncertainty
            )
            chosen = np.concatenate([chosen, extra])
        return chosen

    def _draw_from_assertions(self, sev, budget, eligible, *, assertion_weights, rank_weighted):
        """Draw points one at a time: assertion first, then a triggering point."""
        n, d = sev.shape
        taken = np.zeros(n, dtype=bool)
        chosen: list[int] = []
        if budget <= 0 or d == 0:
            return np.asarray(chosen, dtype=np.intp)

        weights = (
            np.ones(d, dtype=np.float64)
            if assertion_weights is None
            else np.asarray(assertion_weights, dtype=np.float64).copy()
        )
        for _ in range(budget):
            available = eligible & ~taken
            # Assertions that still have an unselected triggering point.
            has_points = np.array(
                [np.any((sev[:, m] > 0) & available) for m in range(d)], dtype=bool
            )
            usable = weights * has_points
            if usable.sum() <= 0:
                break
            m = int(self._rng.choice(d, p=usable / usable.sum()))
            candidates = np.flatnonzero((sev[:, m] > 0) & available)
            if rank_weighted and self.rank_power > 0:
                # Rank 1 = highest severity; weight ∝ (count - rank + 1)^p.
                order = np.argsort(-sev[candidates, m], kind="stable")
                ranked = candidates[order]
                w = (np.arange(len(ranked), 0, -1, dtype=np.float64)) ** self.rank_power
                pick = int(self._rng.choice(len(ranked), p=w / w.sum()))
                point = int(ranked[pick])
            else:
                point = int(self._rng.choice(candidates))
            chosen.append(point)
            taken[point] = True
        return np.asarray(chosen, dtype=np.intp)

    def _fallback_indices(self, budget, eligible, uncertainty):
        """Baseline selection: random or top-k by uncertainty."""
        candidates = np.flatnonzero(eligible)
        if budget <= 0 or candidates.size == 0:
            return np.zeros(0, dtype=np.intp)
        budget = min(budget, candidates.size)
        if self.fallback == "uncertainty":
            order = np.argsort(-uncertainty[candidates], kind="stable")
            return candidates[order[:budget]]
        return self._rng.choice(candidates, size=budget, replace=False)


def _mask(indices: np.ndarray, n: int) -> np.ndarray:
    mask = np.zeros(n, dtype=bool)
    mask[np.asarray(indices, dtype=np.intp)] = True
    return mask
