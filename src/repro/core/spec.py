"""Declarative assertion specs: pure-data records that compile to monitors.

The paper's deployment story (Figure 2) is a *shared assertion database*
that developers evolve collaboratively while the runtime, active
learning, and weak supervision read it. For that, the assertion *set*
itself must be data — serializable, diffable, shippable in a config,
swappable on a running fleet — not a pile of imperative Python wiring.

This module is that layer:

- a **predicate registry** of named severity functions and assertion
  factories (:func:`register_predicate`), so specs can reference code by
  name instead of holding closures;
- a family of **frozen, codec-registered spec dataclasses** —
  :class:`PerItemSpec`, :class:`RollingWindowSpec`,
  :class:`ConsistencySpecDecl` (the §4 ``Id``/``Attrs``/``T`` API as
  data), :class:`CompositeSpec` (and/or/weighted combinators) — plus
  :class:`AssertionSuite`, an ordered, versioned collection with tags,
  per-entry enable flags, and severity weights;
- a **compiler**, :func:`compile_suite`, that lowers a suite onto the
  existing :class:`~repro.core.assertion.ModelAssertion` / streaming
  evaluator machinery *bit-identically* to the hand-built monitors
  (``tests/domains/test_suites.py`` proves this per domain);
- suite **file I/O** (:func:`save_suite` / :func:`load_suite`),
  :func:`lint_suite` validation, and :meth:`AssertionSuite.diff` — what
  ``python -m repro assertions`` drives.

Because suites are plain data, :meth:`repro.core.runtime.OMG.snapshot`
embeds them (restores rebuild the exact assertion set) and
:meth:`repro.serve.MonitorService.apply_suite` reconfigures a live fleet
by diffing the running suite against a new one.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterator

import numpy as np

from repro.core.assertion import FunctionAssertion, ModelAssertion
from repro.core.consistency import (
    AttributeConsistencyAssertion,
    ConsistencySpec,
    TemporalConsistencyAssertion,
)
from repro.core.database import AssertionDatabase
from repro.utils.codec import from_jsonable, register_result_type, to_jsonable

#: Version tag of the :func:`save_suite` file payload.
SUITE_FILE_FORMAT = 1

#: Valid temporal modes (see TemporalConsistencyAssertion).
_TEMPORAL_MODES = ("gap", "run", "both")

#: Composite combinators.
_COMPOSITE_OPS = ("and", "or", "weighted")


# ----------------------------------------------------------------------
# Predicate registry
# ----------------------------------------------------------------------
#: name → (callable, is_factory). Plain entries are used verbatim
#: (severity predicates, Id/Attrs/WeakLabel functions); factory entries
#: are called with a spec's params and may return either a severity
#: callable or a ready ModelAssertion.
_PREDICATES: dict = {}


def register_predicate(name: str, fn: "Callable | None" = None, *, factory: bool = False):
    """Register a named spec function; usable as a decorator.

    Two kinds of entry share the namespace:

    - plain (``factory=False``): the callable itself is the referenced
      function — a per-item severity predicate
      ``(input, outputs, **params) -> float``, a rolling-window predicate
      ``(inputs, outputs_lists, **params) -> float``, or a consistency
      ``Id``/``Attrs``/``WeakLabel``/``set_attr`` function;
    - factory (``factory=True``): called with the spec's ``params`` and
      returns either a severity callable or a full
      :class:`~repro.core.assertion.ModelAssertion` (the compiler renames
      it to the spec's name) — how the built-in domains expose their
      assertion classes to specs.

    Re-registering the *same* callable is a no-op (module re-imports stay
    safe); a different callable under an existing name raises.
    """

    def decorate(func: Callable) -> Callable:
        if not name:
            raise ValueError("predicate name must be non-empty")
        if not callable(func):
            raise TypeError(f"predicate {name!r} must be callable, got {func!r}")
        existing = _PREDICATES.get(name)
        if existing is not None and existing[0] is not func:
            raise ValueError(
                f"a different callable is already registered as predicate "
                f"{name!r}; predicate names must be unique"
            )
        _PREDICATES[name] = (func, bool(factory))
        return func

    if fn is None:
        return decorate
    return decorate(fn)


def get_predicate(name: str) -> Callable:
    """The callable registered under ``name`` (KeyError if absent)."""
    try:
        return _PREDICATES[name][0]
    except KeyError:
        raise KeyError(
            f"no predicate registered as {name!r}; register it with "
            "repro.core.spec.register_predicate (and make sure the module "
            "that registers it is imported)"
        ) from None


def is_factory_predicate(name: str) -> bool:
    """Whether the registered entry is a factory (see :func:`register_predicate`)."""
    get_predicate(name)
    return _PREDICATES[name][1]


def predicate_names() -> list:
    """Sorted names of every registered predicate."""
    return sorted(_PREDICATES)


def _resolvable(name: "str | None") -> bool:
    return name is None or name in _PREDICATES


# ----------------------------------------------------------------------
# Spec dataclasses
# ----------------------------------------------------------------------
@register_result_type
@dataclass(frozen=True)
class PerItemSpec:
    """An assertion whose severity depends on one stream item alone.

    ``predicate`` names a registry entry; ``params`` are bound as extra
    keyword arguments (plain predicates) or passed to the factory.
    Compiles to a per-item streaming evaluator — O(1) per observation.
    """

    name: str
    predicate: str
    params: dict = field(default_factory=dict)
    description: str = ""
    taxonomy_class: str = "custom"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("PerItemSpec.name must be non-empty")
        if not self.predicate:
            raise ValueError(f"spec {self.name!r}: predicate name must be non-empty")


@register_result_type
@dataclass(frozen=True)
class RollingWindowSpec:
    """An assertion over the trailing ``window`` items ending at each item.

    The predicate has the paper's ``flickering(recent_inputs,
    recent_outputs)`` signature and compiles to a deque-backed rolling
    evaluator of exactly its own lookback.
    """

    name: str
    predicate: str
    window: int
    params: dict = field(default_factory=dict)
    description: str = ""
    taxonomy_class: str = "custom"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("RollingWindowSpec.name must be non-empty")
        if not self.predicate:
            raise ValueError(f"spec {self.name!r}: predicate name must be non-empty")
        if self.window < 2:
            raise ValueError(
                f"spec {self.name!r}: window must be >= 2 (use PerItemSpec "
                f"for window == 1), got {self.window}"
            )


@register_result_type
@dataclass(frozen=True)
class TemporalDecl:
    """One temporal assertion generated by a :class:`ConsistencySpecDecl`.

    ``mode`` selects the violation kinds ("gap" | "run" | "both");
    ``name`` overrides the generated assertion name (the video domain's
    ``flicker``/``appear``), defaulting to the §4 convention
    ``{spec}:temporal[:{mode}]``.
    """

    mode: str = "both"
    name: "str | None" = None

    def __post_init__(self) -> None:
        if self.mode not in _TEMPORAL_MODES:
            raise ValueError(
                f"temporal mode must be one of {_TEMPORAL_MODES}, got {self.mode!r}"
            )

    def assertion_name(self, spec_name: str) -> str:
        if self.name:
            return self.name
        suffix = "temporal" if self.mode == "both" else f"temporal:{self.mode}"
        return f"{spec_name}:{suffix}"


@register_result_type
@dataclass(frozen=True)
class ConsistencySpecDecl:
    """The §4 ``AddConsistencyAssertion(Id, Attrs, T)`` API as pure data.

    ``id_fn`` / ``attrs_fn`` / ``weak_label_fn`` / ``set_attr_fn`` name
    predicate-registry entries; ``attr_keys`` fixes the generated
    attribute assertions (``{name}:attr:{key}`` each); ``temporal``
    declares the generated temporal assertions (default: one ``"both"``
    assertion when ``temporal_threshold`` is set).

    A declaration that would generate zero assertions — no attribute
    keys and no temporal threshold — is rejected at construction.
    """

    name: str
    id_fn: str
    attrs_fn: "str | None" = None
    attr_keys: tuple = ()
    temporal_threshold: "float | None" = None
    temporal: tuple = ()
    weak_label_fn: "str | None" = None
    set_attr_fn: "str | None" = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("ConsistencySpecDecl.name must be non-empty")
        if not self.id_fn:
            raise ValueError(f"consistency spec {self.name!r}: id_fn must be named")
        if self.attr_keys and self.attrs_fn is None:
            raise ValueError(
                f"consistency spec {self.name!r} lists attr_keys "
                f"{self.attr_keys!r} but names no attrs_fn"
            )
        if self.temporal_threshold is not None and self.temporal_threshold <= 0:
            raise ValueError(
                f"consistency spec {self.name!r}: temporal_threshold must be "
                f"> 0 seconds, got {self.temporal_threshold}"
            )
        if self.temporal and self.temporal_threshold is None:
            raise ValueError(
                f"consistency spec {self.name!r} declares temporal assertions "
                "but no temporal_threshold"
            )
        if not (self.attrs_fn is not None and self.attr_keys) and (
            self.temporal_threshold is None
        ):
            raise ValueError(
                f"consistency spec {self.name!r} would generate zero "
                "assertions: provide attrs_fn with attr_keys and/or a "
                "temporal_threshold"
            )

    def temporal_decls(self) -> tuple:
        """The effective temporal declarations (default one ``"both"``)."""
        if self.temporal_threshold is None:
            return ()
        return self.temporal or (TemporalDecl(mode="both"),)

    def assertion_names(self) -> tuple:
        """Names of the assertions this declaration generates, in order."""
        names = [f"{self.name}:attr:{key}" for key in self.attr_keys]
        names.extend(t.assertion_name(self.name) for t in self.temporal_decls())
        return tuple(names)


@register_result_type
@dataclass(frozen=True)
class CompositeSpec:
    """Combine single-assertion child specs into one assertion.

    ``op``:

    - ``"and"`` — element-wise minimum: fires only when every child
      fires, with the weakest child's severity;
    - ``"or"`` — element-wise maximum;
    - ``"weighted"`` — weighted sum (``weights`` parallel to
      ``children``, all >= 0).

    Children must be :class:`PerItemSpec`, :class:`RollingWindowSpec`,
    or nested :class:`CompositeSpec` (a :class:`ConsistencySpecDecl`
    expands to *several* assertions and cannot be combined). When every
    child is per-item the composite streams in O(1) per item; otherwise
    it falls back to windowed replay, bounded by the runtime window.
    """

    name: str
    op: str
    children: tuple
    weights: tuple = ()
    description: str = ""
    taxonomy_class: str = "custom"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("CompositeSpec.name must be non-empty")
        if self.op not in _COMPOSITE_OPS:
            raise ValueError(
                f"composite {self.name!r}: op must be one of {_COMPOSITE_OPS}, "
                f"got {self.op!r}"
            )
        if not self.children:
            raise ValueError(f"composite {self.name!r} has no children")
        for child in self.children:
            if not isinstance(child, (PerItemSpec, RollingWindowSpec, CompositeSpec)):
                raise ValueError(
                    f"composite {self.name!r}: children must be PerItemSpec, "
                    "RollingWindowSpec, or CompositeSpec, got "
                    f"{type(child).__name__} (a ConsistencySpecDecl expands to "
                    "several assertions and cannot be combined)"
                )
        if self.op == "weighted":
            if len(self.weights) != len(self.children):
                raise ValueError(
                    f"composite {self.name!r}: weighted op needs one weight "
                    f"per child ({len(self.children)}), got {len(self.weights)}"
                )
            if any(w < 0 for w in self.weights):
                raise ValueError(
                    f"composite {self.name!r}: weights must be >= 0 "
                    "(severities are non-negative)"
                )
        elif self.weights:
            raise ValueError(
                f"composite {self.name!r}: weights are only valid with "
                "op='weighted'"
            )


#: Spec types that compile to exactly one assertion.
_SINGLE_SPECS = (PerItemSpec, RollingWindowSpec, CompositeSpec)
#: Every spec type a SuiteEntry may carry.
SPEC_TYPES = _SINGLE_SPECS + (ConsistencySpecDecl,)


def spec_assertion_names(spec: Any) -> tuple:
    """Names of the assertions a spec generates (pure data, no compile)."""
    if isinstance(spec, ConsistencySpecDecl):
        return spec.assertion_names()
    if isinstance(spec, _SINGLE_SPECS):
        return (spec.name,)
    raise TypeError(f"not an assertion spec: {type(spec).__name__}")


@register_result_type
@dataclass(frozen=True)
class SuiteEntry:
    """One suite member: a spec plus registration metadata.

    ``enabled=False`` entries are registered disabled (their fire history
    survives disable → enable cycles); ``weight`` scales the compiled
    severity (1.0 = identity; only single-assertion specs support
    re-weighting — consistency declarations raise).
    """

    spec: Any
    tags: tuple = ()
    enabled: bool = True
    author: str = ""
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.spec, SPEC_TYPES):
            raise ValueError(
                f"SuiteEntry.spec must be one of "
                f"{', '.join(t.__name__ for t in SPEC_TYPES)}, got "
                f"{type(self.spec).__name__}"
            )
        if self.weight <= 0:
            raise ValueError(
                f"entry {self.name!r}: weight must be > 0, got {self.weight}"
            )
        if self.weight != 1.0 and isinstance(self.spec, ConsistencySpecDecl):
            raise ValueError(
                f"entry {self.name!r}: consistency declarations cannot be "
                "re-weighted (their generated assertions have no scalar "
                "severity hook); wrap a per-item spec instead"
            )

    @property
    def name(self) -> str:
        """The spec's (entry-unique) name."""
        return self.spec.name


@register_result_type
@dataclass(frozen=True)
class AssertionSuite:
    """An ordered, versioned collection of assertion specs.

    The suite is the unit the system versions, snapshots, ships in
    configs, and applies to live fleets. Entry order fixes the compiled
    database's registration order — and with it the severity-matrix
    column order. ``domain`` ties a suite to a registered domain name
    ("" = generic).
    """

    name: str
    version: int = 1
    domain: str = ""
    entries: tuple = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("AssertionSuite.name must be non-empty")
        if self.version < 1:
            raise ValueError(f"suite {self.name!r}: version must be >= 1")
        seen: set = set()
        for entry in self.entries:
            if not isinstance(entry, SuiteEntry):
                raise ValueError(
                    f"suite {self.name!r}: entries must be SuiteEntry, got "
                    f"{type(entry).__name__}"
                )
            if entry.name in seen:
                raise ValueError(
                    f"suite {self.name!r} has two entries named {entry.name!r}"
                )
            seen.add(entry.name)

    # -- queries -------------------------------------------------------
    def __iter__(self) -> Iterator[SuiteEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def entry_names(self) -> list:
        """Entry (spec) names in order — one per entry."""
        return [entry.name for entry in self.entries]

    def get(self, name: str) -> SuiteEntry:
        """The entry whose spec is named ``name`` (KeyError if absent)."""
        for entry in self.entries:
            if entry.name == name:
                return entry
        raise KeyError(f"suite {self.name!r} has no entry named {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(entry.name == name for entry in self.entries)

    def assertion_names(self, *, include_disabled: bool = False) -> list:
        """Expanded assertion names the compiled database will hold."""
        names: list = []
        for entry in self.entries:
            if entry.enabled or include_disabled:
                names.extend(spec_assertion_names(entry.spec))
        return names

    def tagged(self, *tags: str) -> list:
        """Entries carrying at least one of ``tags``, in suite order."""
        wanted = set(tags)
        return [e for e in self.entries if wanted & set(e.tags)]

    # -- evolution (each returns a new suite with version + 1) ---------
    def _bump(self, entries: tuple) -> "AssertionSuite":
        return dataclasses.replace(
            self, entries=tuple(entries), version=self.version + 1
        )

    def with_entry(self, entry: SuiteEntry, *, replace: bool = False) -> "AssertionSuite":
        """Append an entry (or replace the same-named one)."""
        if entry.name in self:
            if not replace:
                raise ValueError(
                    f"suite {self.name!r} already has an entry named "
                    f"{entry.name!r}; pass replace=True to overwrite"
                )
            return self._bump(
                tuple(entry if e.name == entry.name else e for e in self.entries)
            )
        return self._bump(self.entries + (entry,))

    def without(self, name: str) -> "AssertionSuite":
        """Drop the entry named ``name`` (KeyError if absent)."""
        self.get(name)
        return self._bump(tuple(e for e in self.entries if e.name != name))

    def with_enabled(self, name: str, enabled: bool = True) -> "AssertionSuite":
        """Toggle one entry's enable flag."""
        entry = self.get(name)
        return self._bump(
            tuple(
                dataclasses.replace(e, enabled=enabled) if e.name == name else e
                for e in self.entries
            )
        )

    def with_weight(self, name: str, weight: float) -> "AssertionSuite":
        """Re-weight one entry."""
        entry = self.get(name)
        return self._bump(
            tuple(
                dataclasses.replace(e, weight=weight) if e.name == name else e
                for e in self.entries
            )
        )

    def diff(self, other: "AssertionSuite") -> "SuiteDiff":
        """Entry-level diff from ``self`` (old) to ``other`` (new)."""
        mine = {e.name: e for e in self.entries}
        theirs = {e.name: e for e in other.entries}
        added = tuple(n for n in other.entry_names() if n not in mine)
        removed = tuple(n for n in self.entry_names() if n not in theirs)
        changed = tuple(
            n for n in self.entry_names() if n in theirs and mine[n] != theirs[n]
        )
        return SuiteDiff(added=added, removed=removed, changed=changed)


@register_result_type
@dataclass(frozen=True)
class SuiteDiff:
    """Entry names added / removed / changed between two suites."""

    added: tuple = ()
    removed: tuple = ()
    changed: tuple = ()

    def __bool__(self) -> bool:
        return bool(self.added or self.removed or self.changed)


# ----------------------------------------------------------------------
# Composite / weighted assertions
# ----------------------------------------------------------------------
class CompositeAssertion(ModelAssertion):
    """Element-wise combination of child assertions (see :class:`CompositeSpec`)."""

    def __init__(
        self,
        name: str,
        op: str,
        children: list,
        weights: "tuple | None" = None,
        description: str = "",
        taxonomy_class: str = "custom",
    ) -> None:
        super().__init__(name, description)
        self.op = op
        self.children = list(children)
        self.weights = (
            np.asarray(weights, dtype=np.float64) if weights else None
        )
        self.taxonomy_class = taxonomy_class
        if all(self._child_is_per_item(c) for c in self.children):
            # Per-item streaming hook, present only when every child has one.
            self.evaluate_item = self._evaluate_item

    @staticmethod
    def _child_is_per_item(child: ModelAssertion) -> bool:
        # FunctionAssertion always defines evaluate_item but guards it
        # for window > 1, so the window must be checked too; otherwise a
        # rolling-window child would crash the per-item fast path.
        return (
            callable(getattr(child, "evaluate_item", None))
            and getattr(child, "window", 1) == 1
        )

    def _combine(self, stacked: np.ndarray) -> np.ndarray:
        if self.op == "and":
            return stacked.min(axis=0)
        if self.op == "or":
            return stacked.max(axis=0)
        return self.weights @ stacked

    def _evaluate_item(self, item) -> float:
        values = np.array(
            [float(c.evaluate_item(item)) for c in self.children], dtype=np.float64
        )
        return float(self._combine(values[:, None])[0])

    def evaluate_stream(self, items: list) -> np.ndarray:
        stacked = np.stack(
            [
                np.asarray(c.evaluate_stream(items), dtype=np.float64)
                for c in self.children
            ]
        )
        return self._combine(stacked)


class WeightedAssertion(ModelAssertion):
    """Scale a per-item-capable assertion's severity by a constant weight."""

    def __init__(self, inner: ModelAssertion, weight: float) -> None:
        super().__init__(inner.name, inner.description)
        self.inner = inner
        self.weight = float(weight)
        self.taxonomy_class = inner.taxonomy_class
        if callable(getattr(inner, "evaluate_item", None)):
            self.evaluate_item = self._evaluate_item

    def _evaluate_item(self, item) -> float:
        return self.weight * float(self.inner.evaluate_item(item))

    def evaluate_stream(self, items: list) -> np.ndarray:
        return self.weight * np.asarray(
            self.inner.evaluate_stream(items), dtype=np.float64
        )


# ----------------------------------------------------------------------
# Compiler
# ----------------------------------------------------------------------
def _severity_callable(spec) -> Callable:
    """Resolve a PerItem/RollingWindow spec to its severity callable."""
    fn = get_predicate(spec.predicate)
    if is_factory_predicate(spec.predicate):
        obj = fn(**spec.params)
        return obj
    return partial(fn, **spec.params) if spec.params else fn


def _finish_assertion(assertion: ModelAssertion, spec) -> ModelAssertion:
    """Align a factory-built assertion with its spec's metadata."""
    assertion.name = spec.name
    if spec.description:
        assertion.description = spec.description
    if spec.taxonomy_class and spec.taxonomy_class != "custom":
        assertion.taxonomy_class = spec.taxonomy_class
    return assertion


def _compile_single(spec) -> ModelAssertion:
    """Compile a single-assertion spec (no suite-entry weighting)."""
    if isinstance(spec, PerItemSpec):
        obj = _severity_callable(spec)
        if isinstance(obj, ModelAssertion):
            return _finish_assertion(obj, spec)
        doc = spec.description or (getattr(obj, "__doc__", None) or "")
        return FunctionAssertion(
            obj,
            spec.name,
            window=1,
            description=doc,
            taxonomy_class=spec.taxonomy_class,
        )
    if isinstance(spec, RollingWindowSpec):
        obj = _severity_callable(spec)
        if isinstance(obj, ModelAssertion):
            raise TypeError(
                f"spec {spec.name!r}: rolling-window specs need a callable "
                f"predicate, but factory {spec.predicate!r} returned a "
                f"{type(obj).__name__}"
            )
        doc = spec.description or (getattr(obj, "__doc__", None) or "")
        return FunctionAssertion(
            obj,
            spec.name,
            window=spec.window,
            description=doc,
            taxonomy_class=spec.taxonomy_class,
        )
    if isinstance(spec, CompositeSpec):
        children = [_compile_single(child) for child in spec.children]
        return CompositeAssertion(
            spec.name,
            spec.op,
            children,
            weights=spec.weights or None,
            description=spec.description,
            taxonomy_class=spec.taxonomy_class,
        )
    raise TypeError(f"not a single-assertion spec: {type(spec).__name__}")


def _compile_consistency(decl: ConsistencySpecDecl) -> list:
    """Lower a declaration onto the §4 consistency machinery.

    All generated assertions share **one** :class:`ConsistencySpec`
    instance, so the runtime's per-spec
    :class:`~repro.core.consistency.ConsistencyIndex` grouping pass is
    shared exactly as in the hand-built pipelines.
    """
    spec = ConsistencySpec(
        id_fn=get_predicate(decl.id_fn),
        attrs_fn=get_predicate(decl.attrs_fn) if decl.attrs_fn else None,
        temporal_threshold=decl.temporal_threshold,
        weak_label_fn=get_predicate(decl.weak_label_fn) if decl.weak_label_fn else None,
        set_attr_fn=get_predicate(decl.set_attr_fn) if decl.set_attr_fn else None,
        name=decl.name,
    )
    assertions: list = [
        AttributeConsistencyAssertion(spec, key) for key in decl.attr_keys
    ]
    for t in decl.temporal_decls():
        assertions.append(
            TemporalConsistencyAssertion(
                spec, mode=t.mode, name=t.assertion_name(decl.name)
            )
        )
    return assertions


def compile_spec(spec: Any, *, weight: float = 1.0) -> list:
    """Compile one spec into its :class:`ModelAssertion` list.

    ``weight`` scales severities (1.0 compiles the unmodified fast path,
    bit-identical to hand-built assertions). Consistency declarations
    reject weights != 1.0 — see :class:`SuiteEntry`.
    """
    if isinstance(spec, ConsistencySpecDecl):
        if weight != 1.0:
            raise ValueError(
                f"consistency spec {spec.name!r} cannot be re-weighted"
            )
        return _compile_consistency(spec)
    assertion = _compile_single(spec)
    if weight != 1.0:
        if isinstance(assertion, FunctionAssertion):
            inner_func = assertion.func

            def scaled(*args, _inner=inner_func, _w=float(weight)):
                return _w * float(_inner(*args))

            assertion = FunctionAssertion(
                scaled,
                assertion.name,
                window=assertion.window,
                description=assertion.description,
                taxonomy_class=assertion.taxonomy_class,
            )
        elif callable(getattr(assertion, "evaluate_item", None)):
            assertion = WeightedAssertion(assertion, weight)
        else:
            raise ValueError(
                f"spec {spec.name!r} compiled to a "
                f"{type(assertion).__name__} with no per-item hook; "
                "re-weighting is not supported for it"
            )
    return [assertion]


def compile_entry(entry: SuiteEntry) -> list:
    """Compile one suite entry (spec + weight) into assertions."""
    return compile_spec(entry.spec, weight=entry.weight)


def compile_suite(
    suite: AssertionSuite, database: "AssertionDatabase | None" = None
) -> AssertionDatabase:
    """Lower a suite into an :class:`AssertionDatabase`.

    Entries compile in order (fixing severity-matrix columns); disabled
    entries are registered disabled, so later enable/disable cycles keep
    their registration slot and fire history. The returned database is
    stamped with the suite (``database.suite``), which is how
    :meth:`OMG.snapshot` embeds it and
    :meth:`MonitorService.apply_suite` diffs running fleets.
    """
    database = database if database is not None else AssertionDatabase()
    for entry in suite.entries:
        for assertion in compile_entry(entry):
            database.add(
                assertion,
                domain=suite.domain,
                author=entry.author,
                tags=entry.tags,
                enabled=entry.enabled,
                spec=entry,
            )
    database.suite = suite
    return database


# ----------------------------------------------------------------------
# Lint
# ----------------------------------------------------------------------
def lint_suite(suite: AssertionSuite) -> list:
    """Validate a suite; returns a list of problem strings (empty = clean).

    Checks what construction alone cannot: predicate references resolve,
    expanded assertion names are unique across entries, the whole suite
    compiles, and no compiled assertion is left on the ``"custom"``
    taxonomy default (Table 5 classes are the vocabulary the Table 5
    bench and the improvement loop's reporting key on).
    """
    problems: list = []
    if not suite.entries:
        problems.append(f"suite {suite.name!r} has no entries")

    # Unresolved predicate references, named per entry.
    for entry in suite.entries:
        spec = entry.spec
        refs: list = []
        if isinstance(spec, (PerItemSpec, RollingWindowSpec)):
            refs = [("predicate", spec.predicate)]
        elif isinstance(spec, ConsistencySpecDecl):
            refs = [
                ("id_fn", spec.id_fn),
                ("attrs_fn", spec.attrs_fn),
                ("weak_label_fn", spec.weak_label_fn),
                ("set_attr_fn", spec.set_attr_fn),
            ]
        elif isinstance(spec, CompositeSpec):
            stack = list(spec.children)
            while stack:
                child = stack.pop()
                if isinstance(child, CompositeSpec):
                    stack.extend(child.children)
                else:
                    refs.append(("predicate", child.predicate))
        for role, ref in refs:
            if ref is not None and not _resolvable(ref):
                problems.append(
                    f"entry {entry.name!r}: {role} {ref!r} is not a "
                    "registered predicate"
                )

    # Duplicate expanded names across entries (including disabled ones —
    # they share the registration namespace).
    seen: dict = {}
    for entry in suite.entries:
        for name in spec_assertion_names(entry.spec):
            if name in seen:
                problems.append(
                    f"assertion name {name!r} is generated by both entries "
                    f"{seen[name]!r} and {entry.name!r}"
                )
            else:
                seen[name] = entry.name

    if problems:
        return problems  # compilation would only re-report these

    try:
        database = compile_suite(suite)
    except Exception as exc:  # factory errors, bad params, …
        problems.append(f"suite {suite.name!r} does not compile: {exc}")
        return problems

    from repro.core.taxonomy import ASSERTION_CLASSES

    for name in database.all_names():
        assertion = database.get(name)
        taxonomy = assertion.taxonomy_class
        if not taxonomy or taxonomy == "custom":
            problems.append(
                f"assertion {name!r} reports the {taxonomy!r} taxonomy "
                f"default; tag it with a Table 5 class "
                f"({', '.join(ASSERTION_CLASSES)})"
            )
        elif taxonomy not in ASSERTION_CLASSES:
            problems.append(
                f"assertion {name!r} reports unknown taxonomy class "
                f"{taxonomy!r}; known: {', '.join(ASSERTION_CLASSES)}"
            )
    return problems


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------
def suite_payload(suite: AssertionSuite) -> dict:
    """The JSON file payload for a suite (what :func:`save_suite` writes)."""
    return {"format": SUITE_FILE_FORMAT, "suite": to_jsonable(suite)}


def suite_from_payload(payload: Any) -> AssertionSuite:
    """Inverse of :func:`suite_payload`, with header validation."""
    if not isinstance(payload, dict) or "suite" not in payload:
        raise ValueError(
            "not an assertion-suite payload (expected a JSON object with "
            "'format' and 'suite' keys)"
        )
    fmt = payload.get("format")
    if fmt != SUITE_FILE_FORMAT:
        raise ValueError(
            f"unsupported assertion-suite format {fmt!r} "
            f"(expected {SUITE_FILE_FORMAT})"
        )
    suite = from_jsonable(payload["suite"])
    if not isinstance(suite, AssertionSuite):
        raise ValueError(
            f"payload decodes to {type(suite).__name__}, not an AssertionSuite"
        )
    return suite


def save_suite(suite: AssertionSuite, path: str) -> dict:
    """Write a suite to ``path`` atomically; returns the payload."""
    from repro.utils.io import atomic_write_json

    payload = suite_payload(suite)
    atomic_write_json(payload, path)
    return payload


def load_suite(path: str) -> AssertionSuite:
    """Read a suite file written by :func:`save_suite` (or ``assertions
    show --json``)."""
    from repro.utils.io import read_json

    try:
        payload = read_json(path)
    except ValueError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from None
    try:
        return suite_from_payload(payload)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None
