"""Round-based active-learning harness (§3, §5.4).

BAL "assumes that a set of data points has been collected and a subset
will be labeled in bulk" over ``T`` rounds with budget ``B_t`` per round.
The harness below runs that loop for any :class:`ActiveLearningTask`:

    for each round:
        predict on the unlabeled pool
        compute assertion severities + uncertainty on those predictions
        ask the strategy for ``budget`` points
        label them (oracle) and retrain
        evaluate on the held-out test set

Domains implement the task interface; strategies come from
:mod:`repro.core.strategies`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.strategies import SelectionContext, SelectionStrategy


class ActiveLearningTask(abc.ABC):
    """Domain adapter for the active-learning loop.

    A task owns the unlabeled pool, the oracle labels, the model, and the
    evaluation set. The harness only ever sees pool indices and metric
    values, so one harness drives detection (mAP) and classification
    (accuracy) domains alike.
    """

    @abc.abstractmethod
    def pool_size(self) -> int:
        """Number of unlabeled pool points."""

    @abc.abstractmethod
    def initial_model(self) -> Any:
        """A freshly bootstrapped ("pretrained") model."""

    @abc.abstractmethod
    def train(self, model: Any, labeled_indices: np.ndarray) -> Any:
        """Fine-tune ``model`` on the cumulative labeled set; return it."""

    @abc.abstractmethod
    def predict_pool(self, model: Any) -> Any:
        """Model predictions over the whole pool (opaque to the harness)."""

    @abc.abstractmethod
    def severities(self, predictions: Any) -> np.ndarray:
        """``(n, d)`` assertion severity matrix for the pool predictions."""

    @abc.abstractmethod
    def uncertainty(self, predictions: Any) -> np.ndarray:
        """``(n,)`` least-confidence scores for the pool predictions."""

    @abc.abstractmethod
    def evaluate(self, model: Any) -> float:
        """Test metric in percent (mAP% or accuracy%)."""


@dataclass
class RoundResult:
    """Metrics recorded after one labeling round."""

    round_index: int
    metric: float
    n_labeled: int
    fire_counts: dict = field(default_factory=dict)
    selected: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.intp))


@dataclass
class ActiveLearningResult:
    """Full learning curve for one (task, strategy) run."""

    strategy_name: str
    rounds: list = field(default_factory=list)
    initial_metric: float = 0.0

    @property
    def metrics(self) -> list:
        """Per-round metric values, in round order."""
        return [r.metric for r in self.rounds]

    @property
    def final_metric(self) -> float:
        return self.rounds[-1].metric if self.rounds else self.initial_metric

    def labels_to_reach(self, target_metric: float) -> "int | None":
        """Labels needed to first reach ``target_metric`` (None if never).

        This is the paper's labeling-cost comparison: "BAL … can achieve
        an accuracy target (62% mAP) with 40% fewer labels" (§5.4).
        """
        for result in self.rounds:
            if result.metric >= target_metric:
                return result.n_labeled
        return None


def run_active_learning(
    task: ActiveLearningTask,
    strategy: SelectionStrategy,
    *,
    n_rounds: int,
    budget_per_round: int,
    evaluate_initial: bool = True,
) -> ActiveLearningResult:
    """Run the round-based loop for one strategy.

    The strategy is ``reset()`` first so runs are independent; the task's
    model starts from :meth:`ActiveLearningTask.initial_model` each call.
    """
    if n_rounds < 1:
        raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
    if budget_per_round < 1:
        raise ValueError(f"budget_per_round must be >= 1, got {budget_per_round}")

    strategy.reset()
    model = task.initial_model()
    n = task.pool_size()
    labeled_mask = np.zeros(n, dtype=bool)
    result = ActiveLearningResult(strategy_name=strategy.name)
    if evaluate_initial:
        result.initial_metric = task.evaluate(model)

    for round_index in range(n_rounds):
        predictions = task.predict_pool(model)
        severities = np.asarray(task.severities(predictions), dtype=np.float64)
        uncertainty = np.asarray(task.uncertainty(predictions), dtype=np.float64)
        if severities.shape[0] != n:
            raise ValueError(
                f"severities rows {severities.shape[0]} != pool size {n}"
            )
        ctx = SelectionContext(
            severities=severities,
            uncertainty=uncertainty,
            labeled_mask=labeled_mask.copy(),
            round_index=round_index,
        )
        selected = np.asarray(strategy.select(ctx, budget_per_round), dtype=np.intp)
        selected = selected[~labeled_mask[selected]]
        labeled_mask[selected] = True

        model = task.train(model, np.flatnonzero(labeled_mask))
        fire_counts = {
            f"assertion_{m}": int(np.count_nonzero(severities[:, m] > 0))
            for m in range(severities.shape[1])
        }
        result.rounds.append(
            RoundResult(
                round_index=round_index,
                metric=task.evaluate(model),
                n_labeled=int(labeled_mask.sum()),
                fire_counts=fire_counts,
                selected=selected,
            )
        )
    return result


def compare_strategies(
    task_factory,
    strategies: list,
    *,
    n_rounds: int,
    budget_per_round: int,
    n_trials: int = 1,
) -> dict:
    """Run every strategy ``n_trials`` times on fresh tasks; average curves.

    ``task_factory(trial_index)`` must return a *fresh* task per trial so
    trials are independent (the paper averages 2–8 trials, Appendix C).
    Returns strategy name → averaged :class:`ActiveLearningResult`.
    """
    results: dict = {}
    for strategy in strategies:
        curves = []
        initials = []
        for trial in range(n_trials):
            task = task_factory(trial)
            run = run_active_learning(
                task,
                strategy,
                n_rounds=n_rounds,
                budget_per_round=budget_per_round,
            )
            curves.append(run.metrics)
            initials.append(run.initial_metric)
        mean_curve = np.mean(np.asarray(curves, dtype=np.float64), axis=0)
        averaged = ActiveLearningResult(strategy_name=strategy.name)
        averaged.initial_metric = float(np.mean(initials))
        for round_index, metric in enumerate(mean_curve):
            averaged.rounds.append(
                RoundResult(
                    round_index=round_index,
                    metric=float(metric),
                    n_labeled=(round_index + 1) * budget_per_round,
                )
            )
        results[strategy.name] = averaged
    return results
