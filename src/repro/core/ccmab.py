"""CC-MAB: the resource-unconstrained reference algorithm (Algorithm 1).

The paper grounds BAL in CC-MAB (Chen, Xu & Lu, 2018): a contextual
combinatorial bandit over volatile arms with submodular rewards. CC-MAB is
"not feasible as it requires labels for every point and training the ML
model many times" (§3), so the paper only runs BAL — but it summarizes
CC-MAB as Algorithm 1, and we implement it here both as documentation and
as a baseline for the synthetic-bandit tests.

The implementation follows the summary in the paper: partition the context
space into hypercubes; while any cube containing an available arm is
*under-explored* (fewer pulls than the round's exploration quota
``K(t) = t^(2α/(3α+d)) · log t``), pull arms from under-explored cubes;
otherwise greedily pick the arms whose *estimated* marginal gain (mean of
observed single-arm rewards in the cube, Eq. 1) is largest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import as_generator


@dataclass
class CCMABState:
    """Per-cube statistics: pull counts and reward means."""

    counts: dict = field(default_factory=dict)
    means: dict = field(default_factory=dict)


class CCMAB:
    """Contextual combinatorial MAB with hypercube discretization.

    Parameters
    ----------
    n_dims:
        Context dimensionality ``d`` (number of model assertions).
    horizon:
        Number of rounds ``T``; sets the discretization granularity
        ``h_T = ⌈T^(1/(3α+d))⌉`` from Chen et al. (2018).
    alpha:
        Hölder smoothness parameter of the expected-reward function.
    """

    def __init__(
        self,
        n_dims: int,
        horizon: int,
        *,
        alpha: float = 1.0,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        if n_dims < 1:
            raise ValueError(f"n_dims must be >= 1, got {n_dims}")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        if alpha <= 0:
            raise ValueError(f"alpha must be > 0, got {alpha}")
        self.n_dims = n_dims
        self.horizon = horizon
        self.alpha = alpha
        self.n_bins = max(1, int(np.ceil(horizon ** (1.0 / (3 * alpha + n_dims)))))
        self.state = CCMABState()
        self._rng = as_generator(seed)
        self._round = 0

    # ------------------------------------------------------------------
    def cube_of(self, context: np.ndarray) -> tuple:
        """Hypercube index of a context in ``[0, 1]^d``."""
        ctx = np.clip(np.asarray(context, dtype=np.float64), 0.0, 1.0)
        if ctx.shape != (self.n_dims,):
            raise ValueError(f"context shape {ctx.shape} != ({self.n_dims},)")
        bins = np.minimum((ctx * self.n_bins).astype(int), self.n_bins - 1)
        return tuple(int(b) for b in bins)

    def exploration_quota(self) -> float:
        """``K(t)``: required pulls per cube at the current round."""
        t = max(self._round, 1)
        exponent = 2 * self.alpha / (3 * self.alpha + self.n_dims)
        return t**exponent * np.log(t + 1.0)

    # ------------------------------------------------------------------
    def select(self, contexts: np.ndarray, budget: int) -> np.ndarray:
        """Choose up to ``budget`` of this round's arms (Algorithm 1).

        ``contexts`` is ``(n, d)``, one row per available arm; arms are
        volatile (a fresh set arrives each round).
        """
        ctx = np.asarray(contexts, dtype=np.float64)
        if ctx.ndim != 2 or ctx.shape[1] != self.n_dims:
            raise ValueError(f"contexts must be (n, {self.n_dims}), got {ctx.shape}")
        n = ctx.shape[0]
        budget = min(budget, n)
        if budget <= 0:
            return np.zeros(0, dtype=np.intp)

        cubes = [self.cube_of(ctx[i]) for i in range(n)]
        quota = self.exploration_quota()

        under = [
            i for i in range(n) if self.state.counts.get(cubes[i], 0) < quota
        ]
        chosen: list[int] = []
        if under:
            picks = self._rng.permutation(len(under))[:budget]
            chosen = [under[int(p)] for p in picks]
        if len(chosen) < budget:
            remaining = [i for i in range(n) if i not in set(chosen)]
            scores = np.array(
                [self.state.means.get(cubes[i], 0.0) for i in remaining]
            )
            order = np.argsort(-scores, kind="stable")
            for pos in order[: budget - len(chosen)]:
                chosen.append(remaining[int(pos)])
        return np.asarray(chosen, dtype=np.intp)

    def update(self, contexts: np.ndarray, indices: np.ndarray, rewards: np.ndarray) -> None:
        """Record observed single-arm rewards for the pulled arms."""
        ctx = np.asarray(contexts, dtype=np.float64)
        indices = np.asarray(indices, dtype=np.intp)
        rewards = np.asarray(rewards, dtype=np.float64)
        if indices.shape != rewards.shape:
            raise ValueError(f"{indices.shape[0]} indices but {rewards.shape[0]} rewards")
        for i, reward in zip(indices, rewards):
            cube = self.cube_of(ctx[int(i)])
            count = self.state.counts.get(cube, 0)
            mean = self.state.means.get(cube, 0.0)
            self.state.counts[cube] = count + 1
            self.state.means[cube] = mean + (float(reward) - mean) / (count + 1)
        self._round += 1
