"""The assertion taxonomy of Appendix B / Table 5.

The paper taxonomizes common classes of model assertions — consistency,
domain knowledge, perturbation, and input validation — each with
sub-classes and concrete examples, as guidance for "how one might look for
assertions in other domains". This module encodes that table as data so
the Table 5 bench can regenerate it and so registered assertions can be
tagged with their class.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TaxonomyEntry:
    """One row of Table 5."""

    assertion_class: str
    sub_class: str
    description: str
    examples: tuple


TAXONOMY: tuple = (
    TaxonomyEntry(
        assertion_class="consistency",
        sub_class="multi-source",
        description="Model outputs from multiple sources should agree",
        examples=(
            "verifying human labels (number of labelers that disagree)",
            "multiple models (number of models that disagree)",
        ),
    ),
    TaxonomyEntry(
        assertion_class="consistency",
        sub_class="multi-modal",
        description="Model outputs from multiple modes of data should agree",
        examples=(
            "multiple sensors (disagreements from LIDAR and camera models)",
            "multiple data sources (text and images)",
        ),
    ),
    TaxonomyEntry(
        assertion_class="consistency",
        sub_class="multi-view",
        description="Model outputs from multiple views of the same data should agree",
        examples=(
            "video analytics (overlapping camera views should agree)",
            "medical imaging (different angles should agree)",
        ),
    ),
    TaxonomyEntry(
        assertion_class="domain knowledge",
        sub_class="physical",
        description="Physical constraints on model outputs",
        examples=(
            "video analytics (cars should not flicker)",
            "earthquake detection (earthquakes appear across sensors consistently)",
            "protein-protein interaction (number of overlapping atoms)",
        ),
    ),
    TaxonomyEntry(
        assertion_class="domain knowledge",
        sub_class="unlikely scenario",
        description="Scenarios that are unlikely to occur",
        examples=(
            "video analytics (maximum confidence of 3 vehicles that highly overlap)",
            "text generation (two of the same word should not appear sequentially)",
        ),
    ),
    TaxonomyEntry(
        assertion_class="perturbation",
        sub_class="insertion",
        description="Inserting certain types of data should not modify model outputs",
        examples=(
            "visual analytics (synthetically added car should be detected)",
            "LIDAR detection (similar to visual analytics)",
        ),
    ),
    TaxonomyEntry(
        assertion_class="perturbation",
        sub_class="similar",
        description="Replacing parts of the input with similar data should not modify model outputs",
        examples=(
            "sentiment analysis (classification should not change with synonyms)",
            "object detection (painting objects different colors should not change detection)",
        ),
    ),
    TaxonomyEntry(
        assertion_class="perturbation",
        sub_class="noise",
        description="Adding noise should not modify model outputs",
        examples=(
            "image classification (small Gaussian noise should not affect classification)",
            "time series (small Gaussian noise should not affect classification)",
        ),
    ),
    TaxonomyEntry(
        assertion_class="input validation",
        sub_class="schema validation",
        description="Inputs should conform to a schema",
        examples=(
            "Boolean features should not have inputs that are not 0 or 1",
            "all features should be present",
        ),
    ),
)

#: The four top-level assertion classes, in the table's order.
ASSERTION_CLASSES: tuple = tuple(dict.fromkeys(e.assertion_class for e in TAXONOMY))


def entries_for_class(assertion_class: str) -> list:
    """All taxonomy rows for a top-level class."""
    found = [e for e in TAXONOMY if e.assertion_class == assertion_class]
    if not found:
        raise KeyError(
            f"unknown assertion class {assertion_class!r}; known: {ASSERTION_CLASSES}"
        )
    return found


def format_taxonomy_table() -> str:
    """Render Table 5 as aligned plain text."""
    lines = [f"{'Class':<18} {'Sub-class':<18} Description"]
    lines.append("-" * 88)
    for entry in TAXONOMY:
        lines.append(
            f"{entry.assertion_class:<18} {entry.sub_class:<18} {entry.description}"
        )
        for example in entry.examples:
            lines.append(f"{'':<37} - {example}")
    return "\n".join(lines)
