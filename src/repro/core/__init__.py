"""The paper's contribution: assertions, OMG runtime, consistency, BAL.

Public surface:

- :class:`ModelAssertion`, :class:`FunctionAssertion` — the assertion
  abstraction (§2.1).
- :class:`AssertionDatabase` — the shared assertion registry (Figure 2).
- :class:`OMG`, :class:`MonitoringReport` — runtime monitoring (§2.4).
- :class:`ConsistencySpec` + generated assertion classes — the
  ``AddConsistencyAssertion(Id, Attrs, T)`` API (§4).
- :class:`BAL`, :class:`CCMAB` and the selection strategies — active
  learning (§3).
- :func:`harvest_weak_labels` — weak supervision (§4.2).
"""

from repro.core.active_learning import (
    ActiveLearningResult,
    ActiveLearningTask,
    RoundResult,
    compare_strategies,
    run_active_learning,
)
from repro.core.assertion import FunctionAssertion, ModelAssertion, as_assertion
from repro.core.bal import BAL, BALSelection
from repro.core.ccmab import CCMAB
from repro.core.consistency import (
    AttributeConsistencyAssertion,
    ConsistencyIndex,
    ConsistencySpec,
    TemporalConsistencyAssertion,
    TemporalViolation,
    generate_assertions,
    majority_value,
)
from repro.core.database import AssertionDatabase, AssertionEntry
from repro.core.runtime import ENGINES, OMG, MonitoringReport
from repro.core.seeding import derive_rng, derive_seed, spawn_seeds
from repro.core.spec import (
    AssertionSuite,
    CompositeAssertion,
    CompositeSpec,
    ConsistencySpecDecl,
    PerItemSpec,
    RollingWindowSpec,
    SuiteDiff,
    SuiteEntry,
    TemporalDecl,
    compile_spec,
    compile_suite,
    get_predicate,
    lint_suite,
    load_suite,
    predicate_names,
    register_predicate,
    save_suite,
    spec_assertion_names,
)
from repro.core.streaming import (
    AttributeConsistencyEvaluator,
    PerItemEvaluator,
    RollingWindowEvaluator,
    StreamingEngine,
    StreamingEvaluator,
    TemporalConsistencyEvaluator,
    WindowedReplayEvaluator,
    make_evaluator,
)
from repro.core.strategies import (
    BALStrategy,
    RandomStrategy,
    SelectionContext,
    SelectionStrategy,
    UncertaintyStrategy,
    UniformAssertionStrategy,
    default_strategies,
)
from repro.core.taxonomy import (
    ASSERTION_CLASSES,
    TAXONOMY,
    TaxonomyEntry,
    entries_for_class,
    format_taxonomy_table,
)
from repro.core.types import (
    AssertionRecord,
    Correction,
    StreamItem,
    apply_corrections,
    make_stream,
)
from repro.core.weak_supervision import (
    WeakLabelSet,
    WeakSupervisionResult,
    harvest_weak_labels,
)

__all__ = [
    "ASSERTION_CLASSES",
    "BAL",
    "BALSelection",
    "BALStrategy",
    "CCMAB",
    "TAXONOMY",
    "ActiveLearningResult",
    "ActiveLearningTask",
    "AssertionDatabase",
    "AssertionEntry",
    "AssertionRecord",
    "AssertionSuite",
    "CompositeAssertion",
    "CompositeSpec",
    "ConsistencySpecDecl",
    "PerItemSpec",
    "RollingWindowSpec",
    "SuiteDiff",
    "SuiteEntry",
    "TemporalDecl",
    "compile_spec",
    "compile_suite",
    "get_predicate",
    "lint_suite",
    "load_suite",
    "predicate_names",
    "register_predicate",
    "save_suite",
    "spec_assertion_names",
    "AttributeConsistencyAssertion",
    "AttributeConsistencyEvaluator",
    "ConsistencyIndex",
    "ConsistencySpec",
    "Correction",
    "ENGINES",
    "FunctionAssertion",
    "ModelAssertion",
    "MonitoringReport",
    "OMG",
    "PerItemEvaluator",
    "RollingWindowEvaluator",
    "StreamingEngine",
    "StreamingEvaluator",
    "TemporalConsistencyEvaluator",
    "WindowedReplayEvaluator",
    "RandomStrategy",
    "RoundResult",
    "SelectionContext",
    "SelectionStrategy",
    "StreamItem",
    "TaxonomyEntry",
    "TemporalConsistencyAssertion",
    "TemporalViolation",
    "UncertaintyStrategy",
    "UniformAssertionStrategy",
    "WeakLabelSet",
    "WeakSupervisionResult",
    "apply_corrections",
    "as_assertion",
    "compare_strategies",
    "default_strategies",
    "derive_rng",
    "derive_seed",
    "spawn_seeds",
    "entries_for_class",
    "format_taxonomy_table",
    "generate_assertions",
    "harvest_weak_labels",
    "majority_value",
    "make_evaluator",
    "make_stream",
    "run_active_learning",
]
