"""Data-selection strategies for the active-learning experiments (§5.4).

The paper compares four strategies: random sampling, uncertainty sampling
with "least confident" scores (Settles, 2009), uniform sampling from data
that triggered assertions, and BAL. Each is a :class:`SelectionStrategy`
with the same interface so the harness in
:mod:`repro.core.active_learning` can swap them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.bal import BAL
from repro.utils.rng import as_generator


@dataclass
class SelectionContext:
    """Everything a strategy may condition on in one round.

    Attributes
    ----------
    severities:
        ``(n, d)`` assertion severity matrix on the current model's pool
        predictions.
    uncertainty:
        ``(n,)`` least-confidence scores (higher = less confident).
    labeled_mask:
        ``(n,)`` bool; True where the point has already been labeled.
    round_index:
        0-based round number.
    """

    severities: np.ndarray
    uncertainty: np.ndarray
    labeled_mask: np.ndarray
    round_index: int

    @property
    def pool_size(self) -> int:
        return int(self.labeled_mask.shape[0])

    @property
    def selectable(self) -> np.ndarray:
        return ~self.labeled_mask


class SelectionStrategy(abc.ABC):
    """Strategy interface: pick up to ``budget`` unlabeled pool indices."""

    name: str = "strategy"

    @abc.abstractmethod
    def select(self, ctx: SelectionContext, budget: int) -> np.ndarray:
        """Return selected indices (subset of ``ctx.selectable``)."""

    def reset(self) -> None:
        """Clear any cross-round state; default is stateless."""

    def get_state(self) -> dict:
        """JSON-encodable cross-round state; default is stateless ``{}``.

        Stateful strategies (seeded sampling, the BAL bandit) override
        this so the improvement loop can checkpoint selection state and
        resume with bit-identical picks.
        """
        return {}

    def set_state(self, payload: dict) -> None:
        """Restore :meth:`get_state` output; default accepts only ``{}``."""
        if payload:
            raise ValueError(
                f"strategy {self.name!r} is stateless but got state keys "
                f"{sorted(payload)}"
            )


class RandomStrategy(SelectionStrategy):
    """Uniform random sampling from the unlabeled pool."""

    name = "random"

    def __init__(self, seed: "int | np.random.Generator | None" = None) -> None:
        self._rng = as_generator(seed)

    def get_state(self) -> dict:
        from repro.utils.rng import generator_state

        return {"rng": generator_state(self._rng)}

    def set_state(self, payload: dict) -> None:
        from repro.utils.rng import generator_from_state

        self._rng = generator_from_state(payload["rng"])

    def select(self, ctx: SelectionContext, budget: int) -> np.ndarray:
        candidates = np.flatnonzero(ctx.selectable)
        k = min(budget, candidates.size)
        if k == 0:
            return np.zeros(0, dtype=np.intp)
        return self._rng.choice(candidates, size=k, replace=False)


class UncertaintyStrategy(SelectionStrategy):
    """Least-confident sampling: label the points the model is least sure of."""

    name = "uncertainty"

    def select(self, ctx: SelectionContext, budget: int) -> np.ndarray:
        candidates = np.flatnonzero(ctx.selectable)
        if candidates.size == 0 or budget <= 0:
            return np.zeros(0, dtype=np.intp)
        scores = ctx.uncertainty[candidates]
        order = np.argsort(-scores, kind="stable")
        return candidates[order[: min(budget, candidates.size)]]


class UniformAssertionStrategy(SelectionStrategy):
    """Uniform sampling from assertion-flagged data ("uniform MA", §5.4).

    Picks an assertion uniformly, then a uniformly random unlabeled point
    that triggered it; falls back to random for any unmet budget.
    """

    name = "uniform_ma"

    def __init__(self, seed: "int | np.random.Generator | None" = None) -> None:
        self._rng = as_generator(seed)

    def get_state(self) -> dict:
        from repro.utils.rng import generator_state

        return {"rng": generator_state(self._rng)}

    def set_state(self, payload: dict) -> None:
        from repro.utils.rng import generator_from_state

        self._rng = generator_from_state(payload["rng"])

    def select(self, ctx: SelectionContext, budget: int) -> np.ndarray:
        n, d = ctx.severities.shape
        taken = np.zeros(n, dtype=bool)
        chosen: list[int] = []
        for _ in range(budget):
            available = ctx.selectable & ~taken
            triggering = [
                np.flatnonzero((ctx.severities[:, m] > 0) & available) for m in range(d)
            ]
            nonempty = [m for m in range(d) if triggering[m].size > 0]
            if not nonempty:
                break
            m = int(self._rng.choice(nonempty))
            point = int(self._rng.choice(triggering[m]))
            chosen.append(point)
            taken[point] = True
        if len(chosen) < budget:  # pool exhausted of flagged points
            rest = np.flatnonzero(ctx.selectable & ~taken)
            k = min(budget - len(chosen), rest.size)
            if k > 0:
                chosen.extend(self._rng.choice(rest, size=k, replace=False).tolist())
        return np.asarray(chosen, dtype=np.intp)


class BALStrategy(SelectionStrategy):
    """Adapter exposing :class:`repro.core.bal.BAL` as a strategy."""

    name = "bal"

    def __init__(
        self,
        *,
        fallback: str = "random",
        exploration_fraction: float = 0.25,
        reduction_threshold: float = 0.01,
        rank_power: float = 1.0,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        self._kwargs = dict(
            fallback=fallback,
            exploration_fraction=exploration_fraction,
            reduction_threshold=reduction_threshold,
            rank_power=rank_power,
        )
        self._seed = seed
        self.bal = BAL(seed=seed, **self._kwargs)
        self.last_selection = None

    def select(self, ctx: SelectionContext, budget: int) -> np.ndarray:
        selection = self.bal.select(
            ctx.severities,
            budget,
            uncertainty=ctx.uncertainty,
            selectable=ctx.selectable,
        )
        self.last_selection = selection
        return selection.indices

    def reset(self) -> None:
        self.bal = BAL(seed=self._seed, **self._kwargs)
        self.last_selection = None

    def get_state(self) -> dict:
        return {"bal": self.bal.get_state()}

    def set_state(self, payload: dict) -> None:
        self.bal.set_state(payload["bal"])
        self.last_selection = None


def default_strategies(seed: "int | None" = None) -> list:
    """The paper's four §5.4 strategies, independently seeded."""
    rng = as_generator(seed)
    children = rng.spawn(3)
    return [
        RandomStrategy(seed=children[0]),
        UncertaintyStrategy(),
        UniformAssertionStrategy(seed=children[1]),
        BALStrategy(seed=children[2]),
    ]
