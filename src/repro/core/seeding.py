"""Deterministic child-seed derivation for multi-trial experiments.

Every experiment that averages over trials needs one independent random
stream per trial (and per strategy, per domain, …). Before this module
each experiment hand-rolled the same two lines —

    rng = as_generator(seed)
    trial_seeds = rng.integers(0, 2**31 - 1, size=n_trials)

— which ties every child stream to the *order* the parent generator is
consumed in. That is fine for a serial loop but breaks as soon as trials
fan out across processes: a worker cannot know the parent's state without
replaying every earlier trial. The helpers here make child streams a pure
function of ``(root seed, path)``, so any unit of work can be scheduled
anywhere — serially, on a process pool, or re-run in isolation — and draw
bit-identical randomness.

- :func:`spawn_seeds` reproduces the classic ``rng.integers`` fan-out
  (and accepts a live generator so callers sharing a stream keep their
  exact draw order).
- :func:`derive_seed` / :func:`derive_rng` hash a ``(seed, *path)``
  tuple into an independent child, with no parent state at all.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.utils.rng import as_generator

#: Exclusive upper bound for all derived integer seeds (fits int32).
SEED_BOUND = 2**31 - 1


def spawn_seeds(seed: "int | np.random.Generator | None", n: int) -> list:
    """Draw ``n`` deterministic child seeds from ``seed``.

    Equivalent to the ``rng.integers(0, 2**31 - 1, size=n)`` idiom the
    experiment modules used to duplicate. Passing a live
    :class:`~numpy.random.Generator` advances *that* stream (preserving
    the caller's draw order); passing an int or ``None`` derives a fresh
    generator first.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = as_generator(seed)
    return [int(s) for s in rng.integers(0, SEED_BOUND, size=n)]


def derive_seed(seed: "int | None", *path) -> int:
    """Hash ``(seed, *path)`` into a stable child seed in ``[0, 2**31-1)``.

    ``path`` components (strings, ints, …) name the subcomponent — e.g.
    ``derive_seed(0, "fig4_video", "bal", 1)`` is the seed for the BAL
    strategy in trial 1. Unlike :func:`spawn_seeds` the result depends
    only on the arguments, never on generator state, so parallel workers
    and serial loops derive identical streams.
    """
    key = "/".join(str(part) for part in (seed, *path))
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % SEED_BOUND


def derive_rng(seed: "int | None", *path) -> np.random.Generator:
    """A fresh generator seeded by :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(seed, *path))
