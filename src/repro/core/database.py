"""The assertion database.

The paper's deployment story (Figure 2) has ML developers collaboratively
adding assertions to a shared *assertion database* that the runtime,
active-learning, and weak-supervision components all read. This module is
that registry: named assertions plus metadata, with the accumulated fire
records from monitoring runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.assertion import ModelAssertion


@dataclass
class AssertionEntry:
    """An assertion plus registration metadata.

    ``spec`` records the declarative suite entry that compiled this
    assertion (``None`` for imperatively registered ones); it is what
    lets :meth:`~repro.core.runtime.OMG.apply_suite` decide whether a
    live evaluator can be kept across a suite change.
    """

    assertion: ModelAssertion
    domain: str = ""
    author: str = ""
    tags: tuple = ()
    enabled: bool = True
    spec: Any = None


class AssertionDatabase:
    """Registry of named model assertions.

    Names are unique; re-registering a name raises unless
    ``replace=True``. Iteration yields enabled assertions in registration
    order, which fixes the column order of severity matrices produced by
    :class:`~repro.core.runtime.OMG`. When the database was built by
    :func:`~repro.core.spec.compile_suite`, :attr:`suite` holds the
    declarative :class:`~repro.core.spec.AssertionSuite` it was lowered
    from (``None`` for hand-built databases).
    """

    def __init__(self) -> None:
        self._entries: dict = {}
        self._order: list = []
        #: The AssertionSuite this database was compiled from, if any.
        self.suite: Any = None

    def add(
        self,
        assertion: ModelAssertion,
        *,
        domain: str = "",
        author: str = "",
        tags: tuple = (),
        replace: bool = False,
        enabled: bool = True,
        spec: Any = None,
    ) -> ModelAssertion:
        """Register an assertion; returns it for chaining."""
        name = assertion.name
        if name in self._entries and not replace:
            raise ValueError(
                f"an assertion named {name!r} is already registered; "
                "assertion names must be unique — pick another name, or pass "
                "replace=True to overwrite the existing registration"
            )
        if name not in self._entries:
            self._order.append(name)
        self._entries[name] = AssertionEntry(
            assertion=assertion,
            domain=domain,
            author=author,
            tags=tuple(tags),
            enabled=enabled,
            spec=spec,
        )
        return assertion

    def remove(self, name: str) -> None:
        """Delete an assertion by name (KeyError if absent)."""
        del self._entries[name]
        self._order.remove(name)

    def get(self, name: str) -> ModelAssertion:
        """Look up an assertion by name (KeyError if absent)."""
        return self._entries[name].assertion

    def entry(self, name: str) -> AssertionEntry:
        """Look up the full registration entry."""
        return self._entries[name]

    def enable(self, name: str, enabled: bool = True) -> None:
        """Toggle whether an assertion participates in monitoring.

        Disabling pauses evaluation without dropping the registration
        slot or the streaming engine's accumulated fire log, so a later
        re-enable resumes with the fire history intact (items observed
        while disabled are never evaluated retroactively).
        """
        self._entries[name].enabled = enabled

    def disable(self, name: str) -> None:
        """Sugar for ``enable(name, False)`` — the suite-diff primitive."""
        self.enable(name, False)

    def enabled_by_tags(self, *tags: str) -> list:
        """Enabled assertion names carrying at least one of ``tags``,
        in registration order."""
        wanted = set(tags)
        return [
            name
            for name in self._order
            if self._entries[name].enabled and wanted & set(self._entries[name].tags)
        ]

    def names(self) -> list[str]:
        """Enabled assertion names in registration order."""
        return [n for n in self._order if self._entries[n].enabled]

    def all_names(self) -> list[str]:
        """All assertion names, enabled or not, in registration order."""
        return list(self._order)

    def __iter__(self) -> Iterator[ModelAssertion]:
        for name in self.names():
            yield self._entries[name].assertion

    def __len__(self) -> int:
        return len(self.names())

    def __contains__(self, name: str) -> bool:
        return name in self._entries
