"""The assertion database.

The paper's deployment story (Figure 2) has ML developers collaboratively
adding assertions to a shared *assertion database* that the runtime,
active-learning, and weak-supervision components all read. This module is
that registry: named assertions plus metadata, with the accumulated fire
records from monitoring runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.assertion import ModelAssertion


@dataclass
class AssertionEntry:
    """An assertion plus registration metadata."""

    assertion: ModelAssertion
    domain: str = ""
    author: str = ""
    tags: tuple = ()
    enabled: bool = True


class AssertionDatabase:
    """Registry of named model assertions.

    Names are unique; re-registering a name raises unless
    ``replace=True``. Iteration yields enabled assertions in registration
    order, which fixes the column order of severity matrices produced by
    :class:`~repro.core.runtime.OMG`.
    """

    def __init__(self) -> None:
        self._entries: dict = {}
        self._order: list = []

    def add(
        self,
        assertion: ModelAssertion,
        *,
        domain: str = "",
        author: str = "",
        tags: tuple = (),
        replace: bool = False,
    ) -> ModelAssertion:
        """Register an assertion; returns it for chaining."""
        name = assertion.name
        if name in self._entries and not replace:
            raise ValueError(
                f"an assertion named {name!r} is already registered; "
                "assertion names must be unique — pick another name, or pass "
                "replace=True to overwrite the existing registration"
            )
        if name not in self._entries:
            self._order.append(name)
        self._entries[name] = AssertionEntry(
            assertion=assertion, domain=domain, author=author, tags=tuple(tags)
        )
        return assertion

    def remove(self, name: str) -> None:
        """Delete an assertion by name (KeyError if absent)."""
        del self._entries[name]
        self._order.remove(name)

    def get(self, name: str) -> ModelAssertion:
        """Look up an assertion by name (KeyError if absent)."""
        return self._entries[name].assertion

    def entry(self, name: str) -> AssertionEntry:
        """Look up the full registration entry."""
        return self._entries[name]

    def enable(self, name: str, enabled: bool = True) -> None:
        """Toggle whether an assertion participates in monitoring."""
        self._entries[name].enabled = enabled

    def names(self) -> list[str]:
        """Enabled assertion names in registration order."""
        return [n for n in self._order if self._entries[n].enabled]

    def all_names(self) -> list[str]:
        """All assertion names, enabled or not, in registration order."""
        return list(self._order)

    def __iter__(self) -> Iterator[ModelAssertion]:
        for name in self.names():
            yield self._entries[name].assertion

    def __len__(self) -> int:
        return len(self.names())

    def __contains__(self, name: str) -> bool:
        return name in self._entries
