"""Incremental streaming evaluation for the OMG runtime.

The legacy :meth:`OMG.observe` path re-ran every registered assertion over
the *entire* trailing history window on *every* invocation — O(window ×
assertions) work per item. This module provides stateful per-assertion
evaluators that consume items one at a time and maintain rolling state,
so each observation costs O(assertions) amortized:

- :class:`PerItemEvaluator` — assertions whose severity for an item
  depends on that item alone (``FunctionAssertion(window=1)`` and any
  :class:`~repro.core.assertion.ModelAssertion` exposing
  ``evaluate_item``): one function call per item.
- :class:`RollingWindowEvaluator` — ``FunctionAssertion(window=w)``:
  deque-based rolling window of exactly the assertion's own lookback, so
  the function runs once per item instead of once per (item, window
  position) pair.
- :class:`AttributeConsistencyEvaluator` — per-identifier observation
  groups with incrementally-maintained majority values; emits
  *retroactive* severity revisions when a late observation flips a
  group's majority.
- :class:`TemporalConsistencyEvaluator` — per-identifier presence runs;
  emits retroactive severities for gap/run violations the moment the
  closing transition is observed.
- :class:`WindowedReplayEvaluator` — fallback for arbitrary assertion
  subclasses with no streaming form: exact legacy semantics (re-evaluate
  over the bounded history window, record the newest position).

The engine's invariant — enforced by
``tests/core/test_streaming_equivalence.py`` — is that after any stream
is fed through :meth:`StreamingEngine.ingest` (or ``ingest_batch``), the
accumulated severity matrix equals what the offline
:meth:`OMG.monitor` pass computes over the same items, exactly, for all
four assertion families. Function-assertion evaluators keep bounded
deques; consistency evaluators keep full-stream aggregates since the
last reset — that exactness costs memory that grows with the stream
(per-identifier observation values, the position→index map, the sparse
severity log), so long-lived deployments should :meth:`reset` at
episode boundaries. The O(assertions) per-item cost is amortized: an
attribute-majority flip rescans its identifier's group, so a pathological
stream alternating one identifier between two values degrades to
O(group) on the items where the majority changes.

Severity attribution is *revisable*: a flicker is only detectable once
the object reappears, so the evaluator assigns severity to the gap items
retroactively. Evaluators report changes as ``{item_index: severity}``
dictionaries; the engine keeps a sparse severity log, emits
:class:`~repro.core.types.AssertionRecord` fire events for every change
to a positive severity, and can materialize the log as a
:class:`~repro.core.runtime.MonitoringReport` at any time.
"""

from __future__ import annotations

import abc
from collections import Counter, deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any

import numpy as np

from repro.core.assertion import FunctionAssertion, ModelAssertion
from repro.core.consistency import (
    AttributeConsistencyAssertion,
    TemporalConsistencyAssertion,
)
from repro.core.types import AssertionRecord, StreamItem
from repro.utils.codec import from_jsonable, to_jsonable


class StreamingEvaluator(abc.ABC):
    """Stateful single-assertion evaluator.

    ``update`` consumes one item and returns the severities that changed:
    ``{item_index: new_total_severity}``. The newest item is included
    whenever its severity is positive; earlier indices appear only when
    new information revises them (consistency assertions).
    """

    def __init__(self, assertion: ModelAssertion) -> None:
        self.assertion = assertion

    @abc.abstractmethod
    def update(self, item: StreamItem) -> dict:
        """Consume one stream item; return changed ``{index: severity}``."""

    def update_batch(self, items: list) -> list:
        """Consume a chunk; return one change-dict per item, in order."""
        return [self.update(item) for item in items]

    @abc.abstractmethod
    def reset(self) -> None:
        """Drop all rolling state (the assertion itself is stateless)."""

    def get_state(self) -> dict:
        """JSON-encodable rolling state (see :meth:`OMG.snapshot`).

        The payload uses the :mod:`repro.utils.codec` encoding for
        non-primitive leaves and pair lists wherever keys are not
        strings, so ``json.dumps`` round-trips it bit-exactly. Stateless
        evaluators return ``{}``.
        """
        return {}

    def set_state(self, state: dict) -> None:
        """Restore rolling state captured by :meth:`get_state`."""

    def _check_severity(self, value: Any) -> float:
        severity = float(value)
        if severity < 0:
            raise ValueError(
                f"assertion {self.assertion.name!r} returned negative severity {severity}"
            )
        return severity


class PerItemEvaluator(StreamingEvaluator):
    """Assertions whose severity depends on the current item only."""

    def __init__(self, assertion: ModelAssertion) -> None:
        super().__init__(assertion)
        evaluate_item = getattr(assertion, "evaluate_item", None)
        if not callable(evaluate_item):
            raise TypeError(f"{assertion!r} does not define evaluate_item")
        self._evaluate_item = evaluate_item

    def update(self, item: StreamItem) -> dict:
        severity = self._check_severity(self._evaluate_item(item))
        return {item.index: severity} if severity > 0 else {}

    def reset(self) -> None:
        pass


class RollingWindowEvaluator(StreamingEvaluator):
    """``FunctionAssertion(window=w)`` over a deque of its own lookback.

    The deque length is the *assertion's* window, independent of the
    runtime's history bound, so the online severity matches the offline
    ``evaluate_stream`` exactly even for small runtime windows.
    """

    def __init__(self, assertion: FunctionAssertion) -> None:
        super().__init__(assertion)
        self._inputs: deque = deque(maxlen=assertion.window)
        self._outputs: deque = deque(maxlen=assertion.window)

    def update(self, item: StreamItem) -> dict:
        self._inputs.append(item.input)
        self._outputs.append(list(item.outputs))
        value = self.assertion.func(list(self._inputs), list(self._outputs))
        severity = self._check_severity(value)
        return {item.index: severity} if severity > 0 else {}

    def reset(self) -> None:
        self._inputs.clear()
        self._outputs.clear()

    def get_state(self) -> dict:
        return {
            "inputs": to_jsonable(list(self._inputs)),
            "outputs": to_jsonable(list(self._outputs)),
        }

    def set_state(self, state: dict) -> None:
        self.reset()
        self._inputs.extend(from_jsonable(state["inputs"]))
        self._outputs.extend(from_jsonable(state["outputs"]))


class WindowedReplayEvaluator(StreamingEvaluator):
    """Legacy fallback: re-evaluate the full window, keep the newest score.

    Used for arbitrary :class:`ModelAssertion` subclasses that offer
    neither ``evaluate_item`` nor a dedicated streaming form. Costs
    O(window) per item — exactly the legacy ``observe`` semantics.
    """

    def __init__(self, assertion: ModelAssertion, window_size: int) -> None:
        super().__init__(assertion)
        self._window: deque = deque(maxlen=window_size)

    def update(self, item: StreamItem) -> dict:
        self._window.append(item)
        window = list(self._window)
        severities = np.asarray(self.assertion.evaluate_stream(window), dtype=np.float64)
        if severities.shape != (len(window),):
            raise ValueError(
                f"assertion {self.assertion.name!r} returned shape "
                f"{severities.shape}, expected ({len(window)},)"
            )
        severity = self._check_severity(severities[-1])
        return {item.index: severity} if severity > 0 else {}

    def reset(self) -> None:
        self._window.clear()

    def get_state(self) -> dict:
        return {"window": to_jsonable(list(self._window))}

    def set_state(self, state: dict) -> None:
        self.reset()
        self._window.extend(from_jsonable(state["window"]))


class _AttrGroup:
    """Rolling state for one identifier of an attribute assertion."""

    __slots__ = ("observations", "counts", "first_seen", "majority", "contrib")

    def __init__(self) -> None:
        #: (item_index, value) per kept observation, in arrival order.
        self.observations: list = []
        self.counts: Counter = Counter()
        #: value → arrival position of its first occurrence (tie-break).
        self.first_seen: dict = {}
        self.majority: Any = None
        #: item_index → deviation count this group currently contributes.
        self.contrib: dict = {}


class AttributeConsistencyEvaluator(StreamingEvaluator):
    """Incremental form of :class:`AttributeConsistencyAssertion`.

    Maintains, per identifier, the multiset of attribute values and the
    current majority under the offline tie-break (most common, first
    occurrence wins ties). A new observation normally costs O(1); when it
    flips the group's majority, the group's deviations are recomputed and
    the affected items' severities are revised retroactively.
    """

    def __init__(self, assertion: AttributeConsistencyAssertion) -> None:
        super().__init__(assertion)
        self.spec = assertion.spec
        self.attr_key = assertion.attr_key
        self._groups: dict = {}
        self._item_sev: Counter = Counter()

    def reset(self) -> None:
        self._groups = {}
        self._item_sev = Counter()

    def get_state(self) -> dict:
        # Per-group observation lists are the whole truth: counts,
        # first-seen order, the majority (most common, first occurrence
        # wins ties), per-item contributions, and the item severity
        # counter are all pure functions of them, recomputed on restore.
        return {
            "groups": [
                [
                    to_jsonable(identifier),
                    [[int(idx), to_jsonable(value)] for idx, value in group.observations],
                ]
                for identifier, group in self._groups.items()
            ]
        }

    def set_state(self, state: dict) -> None:
        self.reset()
        for encoded_id, observations in state["groups"]:
            identifier = from_jsonable(encoded_id)
            group = self._groups[identifier] = _AttrGroup()
            for idx, encoded_value in observations:
                value = from_jsonable(encoded_value)
                group.observations.append((int(idx), value))
                group.counts[value] += 1
                group.first_seen.setdefault(value, len(group.observations) - 1)
            if group.counts:
                group.majority = max(
                    group.counts,
                    key=lambda v: (group.counts[v], -group.first_seen[v]),
                )
            group.contrib = self._group_deviations(group)
            for idx, n in group.contrib.items():
                self._item_sev[idx] += n

    def _group_deviations(self, group: _AttrGroup) -> dict:
        """item_index → deviation count under the group's current majority."""
        if len(group.observations) < 2 or len(group.counts) < 2:
            return {}
        contrib: dict = {}
        for item_index, value in group.observations:
            if value != group.majority:
                contrib[item_index] = contrib.get(item_index, 0) + 1
        return contrib

    def _apply_contrib(self, group: _AttrGroup, new_contrib: dict, changed: dict) -> None:
        for item_index in set(group.contrib) | set(new_contrib):
            delta = new_contrib.get(item_index, 0) - group.contrib.get(item_index, 0)
            if delta:
                self._item_sev[item_index] += delta
                changed[item_index] = float(self._item_sev[item_index])
        group.contrib = new_contrib

    def update(self, item: StreamItem) -> dict:
        changed: dict = {}
        touched: dict = {}  # identifier → needs full rescan (flip/activation)
        added: dict = {}  # identifier → values this item contributed
        for output in item.outputs:
            identifier = self.spec.id_fn(output)
            if identifier is None:
                continue
            attrs = self.spec.attributes_of(output)
            if self.attr_key not in attrs:
                continue
            value = attrs[self.attr_key]
            group = self._groups.get(identifier)
            if group is None:
                group = self._groups[identifier] = _AttrGroup()
            was_active = len(group.observations) >= 2 and len(group.counts) >= 2
            old_majority = group.majority
            group.observations.append((item.index, value))
            group.counts[value] += 1
            group.first_seen.setdefault(value, len(group.observations) - 1)
            if (
                group.majority is None
                or group.counts[value] > group.counts[group.majority]
                or (
                    group.counts[value] == group.counts[group.majority]
                    and group.first_seen[value] < group.first_seen[group.majority]
                )
            ):
                group.majority = value
            now_active = len(group.observations) >= 2 and len(group.counts) >= 2
            needs_rescan = (now_active and not was_active) or (
                was_active and group.majority != old_majority
            )
            touched[identifier] = touched.get(identifier, False) or needs_rescan
            added.setdefault(identifier, []).append(value)

        for identifier, rescanned in touched.items():
            group = self._groups[identifier]
            if rescanned:
                new_contrib = self._group_deviations(group)
            else:
                # Majority stable: only this item's new observations can
                # deviate; older contributions are untouched.
                if len(group.observations) < 2 or len(group.counts) < 2:
                    continue
                fresh = sum(1 for value in added[identifier] if value != group.majority)
                if fresh == group.contrib.get(item.index, 0):
                    continue
                new_contrib = dict(group.contrib)
                if fresh:
                    new_contrib[item.index] = fresh
                else:
                    new_contrib.pop(item.index, None)
            self._apply_contrib(group, new_contrib, changed)
        return changed


class _PresenceState:
    """Rolling presence run of one identifier (temporal assertions)."""

    __slots__ = ("run_start", "run_end", "run_start_ts", "run_end_ts")

    def __init__(self, pos: int, ts: float) -> None:
        self.run_start = pos
        self.run_end = pos
        self.run_start_ts = ts
        self.run_end_ts = ts


class TemporalConsistencyEvaluator(StreamingEvaluator):
    """Incremental form of :class:`TemporalConsistencyAssertion`.

    Tracks each identifier's current presence run. A *gap* violation is
    emitted (retroactively, onto the gap items) the moment the identifier
    reappears within ``T`` of vanishing; a *run* violation is emitted
    onto the run items the moment a short interior run is followed by an
    absence. Items at the stream boundary are never flagged, matching
    the offline rule that edge runs may continue past the window.
    """

    def __init__(self, assertion: TemporalConsistencyAssertion) -> None:
        super().__init__(assertion)
        self.spec = assertion.spec
        self.mode = assertion.mode
        self._states: dict = {}
        self._present_prev: set = set()
        self._next_pos = 0
        self._item_sev: Counter = Counter()
        #: window position → item index (positions == indices since reset,
        #: but kept explicit so severity lands on true stream indices).
        self._index_of: dict = {}

    def reset(self) -> None:
        self._states = {}
        self._present_prev = set()
        self._next_pos = 0
        self._item_sev = Counter()
        self._index_of = {}

    def get_state(self) -> dict:
        return {
            "states": [
                [
                    to_jsonable(identifier),
                    [s.run_start, s.run_end, s.run_start_ts, s.run_end_ts],
                ]
                for identifier, s in self._states.items()
            ],
            "present_prev": [to_jsonable(i) for i in self._present_prev],
            "next_pos": self._next_pos,
            "item_sev": [[int(i), int(c)] for i, c in sorted(self._item_sev.items())],
            "index_of": [[int(p), int(i)] for p, i in sorted(self._index_of.items())],
        }

    def set_state(self, state: dict) -> None:
        self.reset()
        for encoded_id, (start, end, start_ts, end_ts) in state["states"]:
            presence = _PresenceState(int(start), float(start_ts))
            presence.run_end = int(end)
            presence.run_end_ts = float(end_ts)
            self._states[from_jsonable(encoded_id)] = presence
        self._present_prev = {from_jsonable(i) for i in state["present_prev"]}
        self._next_pos = int(state["next_pos"])
        self._item_sev = Counter({int(i): int(c) for i, c in state["item_sev"]})
        self._index_of = {int(p): int(i) for p, i in state["index_of"]}

    def _flag_span(self, start_pos: int, end_pos: int, changed: dict) -> None:
        for pos in range(start_pos, end_pos + 1):
            index = self._index_of[pos]
            self._item_sev[index] += 1
            changed[index] = float(self._item_sev[index])

    def update(self, item: StreamItem) -> dict:
        pos = self._next_pos
        self._next_pos += 1
        self._index_of[pos] = item.index
        threshold = float(self.spec.temporal_threshold)
        check_gaps = self.mode in ("gap", "both")
        check_runs = self.mode in ("run", "both")

        present = set()
        for output in item.outputs:
            identifier = self.spec.id_fn(output)
            if identifier is not None:
                present.add(identifier)

        changed: dict = {}
        # Runs that just ended: identifier present at pos-1, absent now.
        if check_runs:
            for identifier in self._present_prev - present:
                state = self._states[identifier]
                interior = state.run_start > 0
                if interior and state.run_end_ts - state.run_start_ts < threshold:
                    self._flag_span(state.run_start, state.run_end, changed)

        for identifier in present:
            state = self._states.get(identifier)
            if state is None:
                self._states[identifier] = _PresenceState(pos, item.timestamp)
            elif state.run_end == pos - 1:
                state.run_end = pos
                state.run_end_ts = item.timestamp
            else:
                # Reappearance after a positional gap.
                if check_gaps and item.timestamp - state.run_end_ts < threshold:
                    self._flag_span(state.run_end + 1, pos - 1, changed)
                state.run_start = pos
                state.run_end = pos
                state.run_start_ts = item.timestamp
                state.run_end_ts = item.timestamp

        self._present_prev = present
        # Positions older than any possible revision can be forgotten once
        # every identifier's pending gap/run would exceed the threshold;
        # kept simple: the map grows with the stream (ints only) and is
        # cleared on reset.
        return changed


def make_evaluator(assertion: ModelAssertion, window_size: int) -> StreamingEvaluator:
    """Pick the streaming evaluator for an assertion.

    Dispatch order: dedicated consistency evaluators, rolling/per-item
    function evaluators, any ``evaluate_item`` hook on custom subclasses,
    then the legacy windowed-replay fallback.
    """
    if isinstance(assertion, AttributeConsistencyAssertion):
        return AttributeConsistencyEvaluator(assertion)
    if isinstance(assertion, TemporalConsistencyAssertion):
        return TemporalConsistencyEvaluator(assertion)
    if isinstance(assertion, FunctionAssertion):
        if assertion.window == 1:
            return PerItemEvaluator(assertion)
        return RollingWindowEvaluator(assertion)
    if callable(getattr(assertion, "evaluate_item", None)):
        return PerItemEvaluator(assertion)
    return WindowedReplayEvaluator(assertion, window_size)


class StreamingEngine:
    """Drives one evaluator per registered assertion and keeps the log.

    The engine is owned by :class:`~repro.core.runtime.OMG`; it tracks
    the assertion database lazily, so assertions registered mid-stream
    get an evaluator seeded by replaying the bounded recent-item window
    (the same context the legacy path would have shown them).
    """

    def __init__(
        self,
        database,
        window_size: int,
        max_workers: "int | None" = None,
        recent: "deque | None" = None,
    ) -> None:
        self.database = database
        self.window_size = window_size
        self.max_workers = max_workers
        self._evaluators: dict = {}
        #: assertion name → {item_index: severity} (sparse, nonzero only).
        self._log: dict = {}
        #: Bounded recent-item window, used to warm up late-registered
        #: assertions and by the replay fallback; may be shared with the
        #: owning runtime (OMG hands in its history deque).
        self._recent: deque = recent if recent is not None else deque(maxlen=window_size)
        self._n_items = 0
        self._executor: "ThreadPoolExecutor | None" = None
        #: Restored evaluator states whose assertions were not enabled at
        #: restore time; claimed (without a log reset or warm-up) when the
        #: assertion is re-enabled, so a disable → snapshot → restore →
        #: enable cycle keeps its fire history.
        self._pending_states: dict = {}

    # ------------------------------------------------------------------
    def reset(self) -> None:
        for evaluator in self._evaluators.values():
            evaluator.reset()
        self._log = {}
        self._recent.clear()
        self._n_items = 0
        self._pending_states = {}

    def discard(self, name: str) -> None:
        """Forget one assertion's evaluator, log, and pending state.

        Called when a suite change removes or replaces an assertion, so
        stale state never leaks into later snapshots (a replacement then
        rebuilds from the warm-up replay in :meth:`_sync`).
        """
        self._evaluators.pop(name, None)
        self._log.pop(name, None)
        self._pending_states.pop(name, None)

    def sync(self) -> None:
        """Materialize evaluators for the current database eagerly.

        Reports read the severity log without syncing; callers that
        mutate the database outside an ingest (``OMG.apply_suite``) call
        this so warm-up replay happens at the mutation point, not on the
        next observation.
        """
        self._sync()

    def _sync(self) -> list:
        """Evaluators for the enabled assertions, creating any missing.

        A late-registered assertion is warmed up on the recent-item
        window so its rolling state matches what it would hold had it
        been registered ``window_size`` items ago; warm-up severities are
        logged but produce no fire records (they are not fresh events).
        """
        evaluators = []
        for assertion in self.database:
            evaluator = self._evaluators.get(assertion.name)
            if evaluator is None or evaluator.assertion is not assertion:
                evaluator = make_evaluator(assertion, self.window_size)
                self._evaluators[assertion.name] = evaluator
                pending = self._pending_states.pop(assertion.name, None)
                if pending is not None:
                    # Re-enabled after a restore: resume the snapshotted
                    # rolling state and keep the restored fire log.
                    evaluator.set_state(pending)
                    self._log.setdefault(assertion.name, {})
                else:
                    # A replaced assertion must not inherit its
                    # predecessor's fires: the log restarts from the
                    # warm-up replay.
                    log = self._log[assertion.name] = {}
                    for item in self._recent:
                        for index, severity in evaluator.update(item).items():
                            if severity > 0:
                                log[index] = severity
                            else:
                                log.pop(index, None)
            evaluators.append(evaluator)
        return evaluators

    def _merge(self, name: str, changes: dict, records: list) -> None:
        log = self._log.setdefault(name, {})
        for index, severity in sorted(changes.items()):
            previous = log.get(index, 0.0)
            if severity > 0:
                log[index] = severity
            else:
                log.pop(index, None)
            if severity > 0 and severity != previous:
                records.append(
                    AssertionRecord(
                        assertion_name=name, item_index=index, severity=severity
                    )
                )

    # ------------------------------------------------------------------
    def ingest(self, item: StreamItem) -> list:
        """Consume one item; return fresh fire records (incl. revisions)."""
        evaluators = self._sync()
        self._recent.append(item)
        self._n_items = max(self._n_items, item.index + 1)
        records: list = []
        for evaluator in evaluators:
            self._merge(evaluator.assertion.name, evaluator.update(item), records)
        return records

    def ingest_batch(self, items: list, *, parallel: bool = False) -> list:
        """Consume a chunk of items; return fresh fire records.

        With ``parallel=True`` each assertion's evaluator consumes the
        chunk on a thread-pool worker — evaluators share no state, so
        independent assertions stream concurrently. The merge is
        serialized per (item, assertion) in registration order, so the
        records and the severity log are identical to the serial path.
        """
        if not items:
            return []
        evaluators = self._sync()
        self._recent.extend(items)
        self._n_items = max(self._n_items, items[-1].index + 1)
        if parallel and len(evaluators) > 1:
            if self._executor is None:
                # Reused across chunks; idle workers are joined at
                # interpreter exit, so no explicit shutdown is needed.
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="omg-streaming"
                )
            per_evaluator = list(
                self._executor.map(lambda ev: ev.update_batch(items), evaluators)
            )
        else:
            per_evaluator = [ev.update_batch(items) for ev in evaluators]
        records: list = []
        for item_pos in range(len(items)):
            for evaluator, changes in zip(evaluators, per_evaluator):
                self._merge(evaluator.assertion.name, changes[item_pos], records)
        return records

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """JSON-encodable engine state: log, recent window, evaluators.

        Evaluators for every enabled assertion are synced first, so a
        snapshot taken right after registering assertions (before any
        item) is restorable too.
        """
        self._sync()
        # Every evaluator the database still knows about is captured —
        # including disabled ones — plus any still-unclaimed restored
        # states, so disable → enable survives a snapshot boundary.
        known = set(self.database.all_names())
        states = {
            name: state
            for name, state in self._pending_states.items()
            if name in known
        }
        states.update(
            {
                name: evaluator.get_state()
                for name, evaluator in self._evaluators.items()
                if name in known
            }
        )
        return {
            "n_items": self._n_items,
            "recent": to_jsonable(list(self._recent)),
            "log": {
                name: [[int(i), float(s)] for i, s in sorted(log.items())]
                for name, log in self._log.items()
                if log and name in known
            },
            "evaluators": states,
        }

    def set_state(self, state: dict) -> None:
        """Restore state captured by :meth:`get_state`.

        The current database must hold the same enabled assertions the
        snapshot was taken with (validated by :meth:`OMG.restore`).
        """
        self.reset()
        evaluators = self._sync()
        self._n_items = int(state["n_items"])
        self._recent.extend(from_jsonable(state["recent"]))
        self._log = {
            name: {int(i): float(s) for i, s in pairs}
            for name, pairs in state["log"].items()
        }
        saved = state["evaluators"]
        applied = set()
        for evaluator in evaluators:
            name = evaluator.assertion.name
            if name in saved:
                evaluator.set_state(saved[name])
                applied.add(name)
        # States for assertions that exist but are not currently enabled
        # (snapshotted while disabled) wait here until re-enabled.
        self._pending_states = {
            name: payload
            for name, payload in saved.items()
            if name not in applied
        }

    # ------------------------------------------------------------------
    def severity_matrix(self, n_items: "int | None" = None) -> tuple:
        """(assertion names, dense ``(n_items, n_assertions)`` matrix)."""
        names = self.database.names()
        n = self._n_items if n_items is None else n_items
        matrix = np.zeros((n, len(names)), dtype=np.float64)
        for col, name in enumerate(names):
            for index, severity in self._log.get(name, {}).items():
                if 0 <= index < n:
                    matrix[index, col] = severity
        return names, matrix

    def chunk_matrix(self, start: int, stop: int) -> tuple:
        """(assertion names, dense matrix for item indices [start, stop)).

        O(chunk × assertions) — unlike :meth:`severity_matrix` it does
        not touch the full log, so per-chunk reporting stays flat over
        a long-lived stream.
        """
        names = self.database.names()
        matrix = np.zeros((max(0, stop - start), len(names)), dtype=np.float64)
        for col, name in enumerate(names):
            log = self._log.get(name)
            if not log:
                continue
            for row in range(start, stop):
                severity = log.get(row)
                if severity:
                    matrix[row - start, col] = severity
        return names, matrix
