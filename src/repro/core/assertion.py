"""The model-assertion abstraction.

A model assertion is "an arbitrary function over a model's input and output
that returns a Boolean (0 or 1) or continuous (floating point) severity
score to indicate when faults may be occurring" (§1). By convention 0 means
abstain; scores need not be calibrated — downstream algorithms (BAL) use
only their relative ordering (§2.1).
"""

from __future__ import annotations

import abc
import inspect
from typing import Any, Callable

import numpy as np

from repro.core.types import Correction, StreamItem


class ModelAssertion(abc.ABC):
    """Base class for model assertions.

    Subclasses implement :meth:`evaluate_stream`, returning one severity
    per stream item. Assertions that can repair outputs additionally
    override :meth:`corrections` (the consistency assertions of §4 do).
    """

    #: Taxonomy class from Table 5 (e.g., "consistency", "domain knowledge").
    taxonomy_class: str = "custom"

    def __init__(self, name: str, description: str = "") -> None:
        if not name:
            raise ValueError("assertion name must be non-empty")
        self.name = name
        self.description = description

    @abc.abstractmethod
    def evaluate_stream(self, items: list) -> np.ndarray:
        """Return per-item severity scores, shape ``(len(items),)``.

        A severity of 0 is an abstention; positive values flag likely
        errors, larger = more severe.
        """

    def corrections(self, items: list) -> list:
        """Weak-label proposals for items where this assertion fires.

        The default for arbitrary assertions is no proposals (the paper's
        correction rules are generated only by the consistency API, though
        users can subclass to add their own).
        """
        return []

    #: Streaming hook. Subclasses whose severity for an item depends on
    #: that item alone may define ``evaluate_item(item) -> float``; the
    #: streaming engine then evaluates them in O(1) per observation
    #: instead of replaying the history window. Left undefined here so
    #: window-dependent assertions fall back to exact replay.
    evaluate_item = None

    def __call__(self, items: list) -> np.ndarray:
        return self.evaluate_stream(items)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class FunctionAssertion(ModelAssertion):
    """Wrap a plain Python function as a model assertion.

    Mirrors OMG's ``AddAssertion(func)`` (§2.4). Two signatures are
    supported, selected by ``window``:

    - ``window == 1`` (default): ``func(input, outputs) -> float`` is
      called independently per stream item.
    - ``window > 1``: ``func(recent_inputs, recent_outputs) -> float`` is
      called on the trailing window ending at each item — the signature of
      the paper's ``flickering(recent_frames, recent_outputs)`` example.

    The returned value is coerced to ``float``; Boolean assertions simply
    return 0/1.
    """

    def __init__(
        self,
        func: Callable[..., Any],
        name: "str | None" = None,
        *,
        window: int = 1,
        description: str = "",
        taxonomy_class: str = "custom",
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        inferred = name or getattr(func, "__name__", None)
        if not inferred or inferred == "<lambda>":
            inferred = name
        if not inferred:
            raise ValueError("anonymous functions require an explicit name")
        super().__init__(inferred, description or (inspect.getdoc(func) or ""))
        self.func = func
        self.window = window
        self.taxonomy_class = taxonomy_class

    def evaluate_item(self, item: StreamItem) -> float:
        """Severity of one item; only valid for ``window == 1``."""
        if self.window != 1:
            raise ValueError(
                f"assertion {self.name!r} has window={self.window}; "
                "per-item evaluation requires window == 1"
            )
        return float(self.func(item.input, list(item.outputs)))

    def evaluate_stream(self, items: list) -> np.ndarray:
        severities = np.zeros(len(items), dtype=np.float64)
        for pos, item in enumerate(items):
            if self.window == 1:
                value = self.func(item.input, list(item.outputs))
            else:
                start = max(0, pos - self.window + 1)
                window_items = items[start : pos + 1]
                value = self.func(
                    [it.input for it in window_items],
                    [list(it.outputs) for it in window_items],
                )
            severity = float(value)
            if severity < 0:
                raise ValueError(
                    f"assertion {self.name!r} returned negative severity {severity}"
                )
            severities[pos] = severity
        return severities


def as_assertion(obj: "ModelAssertion | Callable", name: "str | None" = None, **kwargs) -> ModelAssertion:
    """Coerce a callable into a :class:`ModelAssertion` (idempotent)."""
    if isinstance(obj, ModelAssertion):
        if name is not None and name != obj.name:
            raise ValueError(
                f"cannot rename assertion {obj.name!r} to {name!r}; construct it with the right name"
            )
        return obj
    if callable(obj):
        return FunctionAssertion(obj, name, **kwargs)
    raise TypeError(f"expected a ModelAssertion or callable, got {type(obj).__name__}")
