"""``python -m repro`` — the reproduction command line.

Subcommands:

- ``list`` — the experiment catalog (name, paper artifact, config).
- ``run NAME... | --all`` — execute experiments through the registry
  runner, with the artifact cache and ``--jobs N`` trial parallelism.
- ``report`` — render cached results without recomputation.
- ``stream DOMAIN`` — serve interleaved monitored streams of one domain
  through :class:`~repro.serve.MonitorService`, with optional
  checkpoint/resume via ``--snapshot`` and a declarative assertion
  suite via ``--suite FILE``.
- ``assertions list|show|lint|diff`` — inspect, export, validate, and
  compare declarative assertion suites (built-in per domain, or JSON
  files written by ``assertions show --json`` / ``repro.core.save_suite``).
- ``serve DOMAIN`` — run the asyncio TCP front-end
  (:class:`~repro.serve.MonitorServer`): newline-delimited JSON requests,
  batched ingestion, bounded-queue backpressure, optional checkpoint via
  ``--snapshot`` and a ``--ready-file`` announcing the bound port.
- ``loadtest [DOMAIN]`` — closed/open-loop load harness against a
  self-hosted server; sweeps ``--clients`` counts (and ``--shards``
  fleet sizes) and writes latency percentiles + throughput to
  ``BENCH_serve.json``.
- ``fleet DOMAIN --shards N`` — run a sharded monitor fleet: worker
  shard processes behind a consistent-hash router speaking the same
  protocol as ``serve``, with live snapshot-based stream migration
  (the ``migrate``/``rebalance`` ops) and coordinated fleet snapshots
  via ``--snapshot``.

Examples
--------
.. code-block:: console

   $ python -m repro list
   $ python -m repro run fig4_video --jobs 4
   $ python -m repro run table6 --seed 7 --set n_video_frames=600
   $ python -m repro run --all --jobs 2
   $ python -m repro report fig4_video
   $ python -m repro stream tvnews --streams 4 --items 8
   $ python -m repro stream ecg --streams 2 --items 3 --snapshot fleet.json
   $ python -m repro assertions list
   $ python -m repro assertions show tvnews --json > suite.json
   $ python -m repro assertions lint suite.json
   $ python -m repro assertions diff tvnews suite.json
   $ python -m repro stream tvnews --suite suite.json --items 3
   $ python -m repro serve tvnews --port 7781
   $ python -m repro serve tvnews --ready-file server.json --snapshot fleet.json
   $ python -m repro loadtest tvnews --clients 1,4,8 --duration 3
   $ python -m repro loadtest tvnews --mode open --rate 500 --out BENCH_serve.json
   $ python -m repro loadtest tvnews --shards 1,2 --clients 4
   $ python -m repro fleet tvnews --shards 2 --ready-file fleet.json
   $ python -m repro fleet tvnews --shards 2 --snapshot fleet-snap.json
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import json
import sys

from repro.experiments import list_experiments, run_experiment
from repro.experiments.reporting import (
    format_table,
    from_jsonable,
    render_result,
    to_jsonable,
)
from repro.experiments.runner import get_experiment, load_cached


def _parse_value(text: str):
    """Best-effort literal parsing for ``--set key=value`` overrides."""
    try:
        return ast.literal_eval(text)
    except (SyntaxError, ValueError):
        return text


def _config_overrides(spec, args, *, strict: bool = True) -> dict:
    """Map CLI flags onto the experiment's config fields.

    With ``strict`` (explicitly named experiments) an override naming a
    field the config lacks is an error; under ``run --all`` the same
    override is applied only where the field exists, so a battery-wide
    ``--seed 7`` doesn't abort on the knobless experiments.
    """
    field_names = {f.name for f in dataclasses.fields(spec.config_type)}
    overrides: dict = {}
    if args.seed is not None:
        if "seed" in field_names:
            overrides["seed"] = args.seed
        elif strict:
            raise SystemExit(f"error: experiment {spec.name!r} takes no seed")
    if args.trials is not None:
        if "n_trials" in field_names:
            overrides["n_trials"] = args.trials
        elif strict:
            raise SystemExit(f"error: experiment {spec.name!r} has no trials")
    for assignment in args.set or []:
        key, sep, value = assignment.partition("=")
        if not sep:
            raise SystemExit(f"error: --set expects key=value, got {assignment!r}")
        if key in field_names:
            overrides[key] = _parse_value(value)
        elif strict:
            known = ", ".join(sorted(field_names)) or "(none)"
            raise SystemExit(
                f"error: {spec.name!r} config has no field {key!r}; fields: {known}"
            )
    return overrides


def _cmd_list(args) -> int:
    specs = list_experiments()
    if args.json:
        payload = [
            {
                "name": spec.name,
                "artifact": spec.artifact,
                "description": spec.description,
                "config": to_jsonable(spec.config_type()),
            }
            for spec in specs
        ]
        print(json.dumps(payload, indent=2))
        return 0
    rows = []
    for spec in specs:
        fields = dataclasses.fields(spec.config_type)
        config = ", ".join(f"{f.name}={getattr(spec.config_type(), f.name)}" for f in fields)
        rows.append((spec.name, spec.artifact, config or "-"))
    print(format_table(["Experiment", "Paper artifact", "Config defaults"], rows,
                       title=f"{len(specs)} registered experiments"))
    return 0


def _cmd_run(args) -> int:
    if args.all:
        if args.names:
            raise SystemExit("error: give experiment names or --all, not both")
        names = [spec.name for spec in list_experiments()]
    elif args.names:
        names = args.names
    else:
        raise SystemExit("error: give at least one experiment name (or --all)")

    # Resolve every name and its overrides up front, so a typo in the
    # last argument fails before the first expensive experiment runs.
    plan = []
    for name in names:
        try:
            spec = get_experiment(name)
        except KeyError as exc:
            raise SystemExit(f"error: {exc.args[0]}") from None
        plan.append((spec, _config_overrides(spec, args, strict=not args.all)))

    payloads = []
    for spec, overrides in plan:
        run = run_experiment(
            spec.name,
            jobs=args.jobs,
            force=args.force,
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
            **overrides,
        )
        if args.json:
            payloads.append(
                {
                    "experiment": spec.name,
                    "artifact": spec.artifact,
                    "cached": run.cached,
                    "elapsed_s": run.elapsed_s,
                    "config": to_jsonable(run.config),
                    "result": to_jsonable(run.result),
                }
            )
        else:
            status = (
                f"[{spec.name}] cache hit ({run.path})"
                if run.cached
                else f"[{spec.name}] ran in {run.elapsed_s:.1f}s"
                + (f" → {run.path}" if run.path else "")
            )
            print(status)
            print(render_result(run.result))
            print()
    if args.json:
        # One parseable document: an object for a single experiment, an
        # array when several ran.
        print(json.dumps(payloads[0] if len(payloads) == 1 else payloads, indent=2))
    return 0


def _cmd_report(args) -> int:
    names = args.names or [spec.name for spec in list_experiments()]
    for name in names:  # validate everything before rendering anything
        try:
            get_experiment(name)
        except KeyError as exc:
            raise SystemExit(f"error: {exc.args[0]}") from None
    missing = []
    shown = 0
    payloads = []
    for name in names:
        entries = load_cached(name, cache_dir=args.cache_dir)
        if not entries:
            missing.append(name)
            continue
        payload, path = entries[0]  # newest; older fingerprints stay on disk
        shown += 1
        if args.json:
            payloads.append(payload)
        else:
            print(f"[{name}] {payload.get('artifact', '')} (cached at {path})")
            print(render_result(from_jsonable(payload["result"])))
            print()
    if args.json and payloads:
        # One parseable document, like `run --json`.
        print(json.dumps(payloads[0] if len(payloads) == 1 else payloads, indent=2))
    if missing and args.names:
        raise SystemExit(
            "error: no cached artifacts for: "
            + ", ".join(missing)
            + " — run `python -m repro run <name>` first"
        )
    if not shown:
        raise SystemExit(
            "error: the artifact cache is empty — run `python -m repro run --all` first"
        )
    return 0


def _resolve_suite(target: str):
    """A suite from a registered domain name or a suite JSON file."""
    import os

    from repro.core.spec import load_suite
    from repro.domains.registry import domain_names, get_domain

    if target in domain_names():
        try:
            return get_domain(target).assertion_suite()
        except NotImplementedError:
            raise SystemExit(
                f"error: domain {target!r} declares no assertion suite"
            ) from None
    if os.path.exists(target):
        try:
            suite = load_suite(target)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from None
        if suite.domain in domain_names():
            # Importing the domain registers the predicates its built-in
            # specs reference, so file-loaded suites lint/compile alone.
            get_domain(suite.domain)
        return suite
    raise SystemExit(
        f"error: {target!r} is neither a registered domain "
        f"({', '.join(domain_names())}) nor a suite file"
    )


def _suite_rows(suite):
    """One table row per compiled assertion of ``suite``."""
    from repro.core.spec import compile_suite

    try:
        database = compile_suite(suite)
    except (KeyError, TypeError, ValueError) as exc:
        # e.g. a file suite referencing an unregistered predicate —
        # `assertions lint` reports the same problem with details.
        raise SystemExit(
            f"error: suite {suite.name!r} does not compile: "
            f"{exc.args[0] if exc.args else exc}"
        ) from None
    rows = []
    for name in database.all_names():
        entry = database.entry(name)
        suite_entry = entry.spec
        rows.append(
            (
                name,
                type(suite_entry.spec).__name__,
                entry.assertion.taxonomy_class,
                ",".join(entry.tags) or "-",
                "yes" if entry.enabled else "no",
                f"{suite_entry.weight:g}",
            )
        )
    return rows


def _cmd_assertions(args) -> int:
    """Inspect / export / validate / diff declarative assertion suites."""
    from repro.core.spec import lint_suite, suite_payload
    from repro.domains.registry import domain_names

    if args.action == "list":
        targets = args.targets or sorted(domain_names())
        if args.json:
            payload = []
            for target in targets:
                suite = _resolve_suite(target)
                payload.append(
                    {
                        "target": target,
                        "suite": suite.name,
                        "version": suite.version,
                        "domain": suite.domain,
                        "assertions": suite.assertion_names(include_disabled=True),
                        "enabled": suite.assertion_names(),
                    }
                )
            print(json.dumps(payload, indent=2))
            return 0
        for target in targets:
            suite = _resolve_suite(target)
            print(
                format_table(
                    ["Assertion", "Spec", "Taxonomy", "Tags", "Enabled", "Weight"],
                    _suite_rows(suite),
                    title=f"{target}: suite {suite.name!r} v{suite.version} "
                    f"({len(suite)} entr{'y' if len(suite) == 1 else 'ies'})",
                )
            )
            print()
        return 0

    if args.action == "show":
        suite = _resolve_suite(args.targets[0])
        if args.json:
            # The export format --suite / load_suite consume.
            print(json.dumps(suite_payload(suite), indent=2))
        else:
            print(
                format_table(
                    ["Assertion", "Spec", "Taxonomy", "Tags", "Enabled", "Weight"],
                    _suite_rows(suite),
                    title=f"suite {suite.name!r} v{suite.version} "
                    f"(domain {suite.domain or '-'})",
                )
            )
            print(
                "\nExport with `python -m repro assertions show "
                f"{args.targets[0]} --json > suite.json`, then serve it with "
                "`python -m repro stream DOMAIN --suite suite.json`."
            )
        return 0

    if args.action == "lint":
        targets = args.targets or sorted(domain_names())
        failures = 0
        for target in targets:
            problems = lint_suite(_resolve_suite(target))
            if problems:
                failures += 1
                print(f"[{target}] {len(problems)} problem(s):")
                for problem in problems:
                    print(f"  - {problem}")
            else:
                print(f"[{target}] OK")
        return 1 if failures else 0

    # diff
    old = _resolve_suite(args.targets[0])
    new = _resolve_suite(args.targets[1])
    diff = old.diff(new)
    if args.json:
        print(
            json.dumps(
                {
                    "old": {"suite": old.name, "version": old.version},
                    "new": {"suite": new.name, "version": new.version},
                    "added": list(diff.added),
                    "removed": list(diff.removed),
                    "changed": list(diff.changed),
                },
                indent=2,
            )
        )
        return 0
    print(
        f"{old.name!r} v{old.version} → {new.name!r} v{new.version}"
        + ("" if diff else ": no entry changes")
    )
    for label, names in (
        ("added", diff.added),
        ("removed", diff.removed),
        ("changed", diff.changed),
    ):
        for name in names:
            print(f"  {label}: {name}")
    return 0


def _cmd_stream(args) -> int:
    """Serve ``--streams`` interleaved monitored streams of one domain.

    Each stream gets its own seeded world; every round ingests one raw
    unit per stream through :meth:`MonitorService.ingest_batch` (thread
    fan-out unless ``--serial``). With ``--snapshot PATH``: an existing
    file is restored first (the fleet resumes where it checkpointed —
    each stream's world is fast-forwarded by replaying the units already
    consumed), and the final state is written back to PATH. The replay
    makes resume cost linear in a stream's total history (including
    model inference for av/video); snapshotting world RNG state for an
    O(1) resume is future work.
    """
    import os

    from repro.core.seeding import derive_seed
    from repro.domains.registry import domain_names
    from repro.serve import MonitorService, ServiceConfig
    from repro.serve.snapshot import load_snapshot_payload, save_service_snapshot

    if args.domain not in domain_names():
        raise SystemExit(
            f"error: unknown domain {args.domain!r}; "
            f"registered domains: {', '.join(domain_names())}"
        )
    if args.streams is not None and args.streams < 1:
        raise SystemExit("error: --streams must be >= 1")
    if args.items < 1:
        raise SystemExit("error: --items must be >= 1")

    suite = _resolve_suite(args.suite) if args.suite else None
    try:
        service = MonitorService(
            args.domain,
            config=ServiceConfig(parallel=not args.serial),
            suite=suite,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    seed = args.seed if args.seed is not None else 0
    n_streams = args.streams if args.streams is not None else 2
    resumed = False
    if args.snapshot and os.path.exists(args.snapshot):
        try:
            payload = load_snapshot_payload(args.snapshot)
            service.restore(payload)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from None
        if args.suite:
            # The snapshot pins the fleet's suite like seed/streams: a
            # different --suite would silently reconfigure the resumed
            # fleet (that is apply_suite's job, not resume's).
            pinned = (
                from_jsonable(payload["suite"])
                if payload.get("suite") is not None
                else None
            )
            if pinned != suite:
                raise SystemExit(
                    f"error: --suite {args.suite} conflicts with the snapshot "
                    f"({args.snapshot} was written with a different assertion "
                    "suite); drop the flag to resume, or delete the snapshot "
                    "to start over"
                )
        provenance = payload.get("cli")
        if provenance is None:
            # Library-written snapshots carry no world seeds, so the CLI
            # cannot rebuild matching worlds — resuming would bolt fresh
            # default-seeded streams onto an unrelated fleet.
            raise SystemExit(
                f"error: {args.snapshot} was not written by `python -m repro "
                "stream` (no CLI provenance); restore it with "
                "repro.serve.load_service_snapshot instead"
            )
        # The snapshot pins seed/streams: the worlds replay from those
        # seeds, so conflicting explicit flags would silently corrupt
        # the resumed streams — reject them instead.
        for flag, given, pinned in (
            ("--seed", args.seed, provenance.get("seed")),
            ("--streams", args.streams, provenance.get("streams")),
        ):
            if given is not None and pinned is not None and given != pinned:
                raise SystemExit(
                    f"error: {flag} {given} conflicts with the snapshot "
                    f"({args.snapshot} was written with {flag[2:]}={pinned}); "
                    "drop the flag to resume, or delete the snapshot to start over"
                )
        seed = provenance.get("seed", seed)
        n_streams = provenance.get("streams", n_streams)
        resumed = True

    stream_ids = [f"{args.domain}-{k}" for k in range(n_streams)]
    iterators = {}
    for k, stream_id in enumerate(stream_ids):
        world = service.domain.build_world(derive_seed(seed, "stream", k))
        iterator = service.domain.iter_stream(world)
        # Resumed streams replay the deterministic world up to where the
        # checkpoint left off, so ingestion continues with fresh units.
        for _ in range(service.session(stream_id).n_raw):
            next(iterator)
        iterators[stream_id] = iterator

    for _ in range(args.items):
        service.ingest_batch(
            [(stream_id, next(iterators[stream_id])) for stream_id in stream_ids]
        )

    fleet = service.fleet_report()
    if args.json:
        print(
            json.dumps(
                {
                    "domain": args.domain,
                    "seed": seed,
                    "resumed": resumed,
                    "streams": {
                        stream_id: {
                            "n_raw": service.session(stream_id).n_raw,
                            "n_items": report.n_items,
                            "fire_counts": report.fire_counts(),
                            "total_fires": report.total_fires(),
                        }
                        for stream_id, report in fleet.stream_reports.items()
                    },
                    "fleet": {
                        "n_items": fleet.aggregate.n_items,
                        "fire_counts": fleet.fire_counts(),
                        "total_fires": fleet.aggregate.total_fires(),
                    },
                },
                indent=2,
            )
        )
    else:
        mode = "serial" if args.serial else "interleaved, thread fan-out"
        print(
            f"[{args.domain}] {n_streams} stream(s) × {args.items} raw unit(s)"
            f" this run (seed {seed}, {mode})"
            + (" — resumed from snapshot" if resumed else "")
        )
        print(fleet.format_table())
        if fleet.aggregate.records:
            first = fleet.aggregate.records[0]
            print(
                f"First fire: stream {first.context}, {first.assertion_name} "
                f"severity {first.severity:g}"
            )
    if args.snapshot:
        save_service_snapshot(
            service,
            args.snapshot,
            extra={"cli": {"seed": seed, "streams": n_streams}},
        )
        if not args.json:
            print(
                f"Snapshot written to {args.snapshot} "
                "(re-run the same command to resume)"
            )
    return 0


def _cmd_serve(args) -> int:
    """Run the asyncio network front-end until interrupted.

    Binds (ephemeral port by default — ``--ready-file`` announces the
    actual address), optionally restores a fleet snapshot first, and on
    SIGINT/SIGTERM writes the fleet back to ``--snapshot`` so a
    restarted server resumes every stream's session state bit-exactly.
    """
    import asyncio
    import os
    import signal

    from repro.domains.registry import domain_names
    from repro.serve import MonitorServer, MonitorService, ServerConfig, ServiceConfig
    from repro.serve.snapshot import load_snapshot_payload, save_service_snapshot
    from repro.utils.io import atomic_write_json

    if args.domain not in domain_names():
        raise SystemExit(
            f"error: unknown domain {args.domain!r}; "
            f"registered domains: {', '.join(domain_names())}"
        )
    suite = _resolve_suite(args.suite) if args.suite else None
    try:
        service = MonitorService(
            args.domain,
            config=ServiceConfig(parallel=not args.serial),
            suite=suite,
        )
        config = ServerConfig(
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_delay=args.max_delay,
            max_pending=args.max_pending,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None

    restored = 0
    if args.snapshot and os.path.exists(args.snapshot):
        try:
            payload = load_snapshot_payload(args.snapshot)
            service.restore(payload)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from None
        if args.suite:
            # Like `stream`: the snapshot pins the fleet's suite; a
            # different --suite would silently reconfigure the resumed
            # fleet (that is apply_suite's job, not resume's).
            pinned = (
                from_jsonable(payload["suite"])
                if payload.get("suite") is not None
                else None
            )
            if pinned != suite:
                raise SystemExit(
                    f"error: --suite {args.suite} conflicts with the snapshot "
                    f"({args.snapshot} was written with a different assertion "
                    "suite); drop the flag to resume, or delete the snapshot "
                    "to start over"
                )
        restored = len(service)

    async def _main() -> None:
        server = MonitorServer(service, config)
        await server.start()
        # Explicit handlers, not KeyboardInterrupt: a server launched as
        # a shell background job inherits SIGINT ignored, and SIGTERM
        # would otherwise kill us before the shutdown snapshot.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # e.g. non-main thread / platforms without support
        print(
            f"[{args.domain}] serving on {server.host}:{server.port}"
            + (f" — {restored} stream(s) restored from {args.snapshot}"
               if restored else ""),
            flush=True,
        )
        if args.ready_file:
            atomic_write_json(
                {
                    "host": server.host,
                    "port": server.port,
                    "domain": args.domain,
                    "pid": os.getpid(),
                },
                args.ready_file,
            )
        try:
            await stop.wait()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
        print("interrupted — shutting down", flush=True)
    except KeyboardInterrupt:  # signal arrived before the handlers did
        print("interrupted — shutting down", flush=True)
    if args.snapshot:
        save_service_snapshot(service, args.snapshot)
        print(
            f"Snapshot written to {args.snapshot} "
            "(restart the same command to resume the fleet)"
        )
    return 0


def _parse_counts(text: str, flag: str) -> tuple:
    """``"1,4,8"`` → ``(1, 4, 8)`` for the sweep axes."""
    try:
        counts = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise SystemExit(
            f"error: {flag} expects comma-separated integers, got {text!r}"
        ) from None
    if not counts:
        raise SystemExit(f"error: {flag} needs at least one count")
    return counts


def _cmd_fleet(args) -> int:
    """Run a sharded monitor fleet: worker processes + routing front-end.

    Spawns ``--shards`` worker processes (one MonitorServer each), waits
    for readiness, and serves the whole fleet through one consistent-hash
    router endpoint speaking the identical protocol as ``serve`` — so
    clients, the loadtest, and the migrate/rebalance ops all talk to one
    address. With ``--snapshot`` an existing coordinated fleet snapshot
    is restored on start and a fresh one written on shutdown.
    """
    import asyncio
    import os
    import signal
    import tempfile

    from repro.domains.registry import domain_names
    from repro.fleet.manager import FleetManager
    from repro.fleet.router import FleetRouter, RouterConfig
    from repro.fleet.snapshot import (
        SnapshotFormatError,
        load_fleet_snapshot,
        save_fleet_snapshot,
    )
    from repro.utils.io import atomic_write_json

    if args.domain not in domain_names():
        raise SystemExit(
            f"error: unknown domain {args.domain!r}; "
            f"registered domains: {', '.join(domain_names())}"
        )
    if args.shards < 1:
        raise SystemExit("error: --shards must be >= 1")

    restore_payload = None
    if args.snapshot and os.path.exists(args.snapshot):
        try:
            restore_payload = load_fleet_snapshot(args.snapshot)
        except SnapshotFormatError as exc:
            raise SystemExit(f"error: {exc}") from None
        if restore_payload["domain"] != args.domain:
            raise SystemExit(
                f"error: {args.snapshot} is a fleet snapshot for domain "
                f"{restore_payload['domain']!r}, not {args.domain!r}"
            )

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-fleet-")
    manager = FleetManager(
        args.domain,
        args.shards,
        workdir=workdir,
        max_batch=args.max_batch,
        max_delay=args.max_delay,
        max_pending=args.max_pending,
        serial=args.serial,
    )
    try:
        specs = manager.start()
    except RuntimeError as exc:
        raise SystemExit(f"error: {exc}") from None

    final_snapshot = {}

    async def _main() -> None:
        router = FleetRouter(
            args.domain,
            manager.addresses(),
            RouterConfig(host=args.host, port=args.port),
        )
        await router.start()
        if restore_payload is not None:
            restored = await router.restore_fleet(restore_payload)
            n_streams = sum(len(v) for v in restored["shards"].values())
            print(
                f"{n_streams} stream(s) restored from {args.snapshot}",
                flush=True,
            )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        print(
            f"[{args.domain}] fleet of {args.shards} shard(s) on "
            f"{router.host}:{router.port} "
            f"(workers: {', '.join(f'{s.name}={s.host}:{s.port}' for s in specs.values())})",
            flush=True,
        )
        if args.ready_file:
            atomic_write_json(
                {
                    "host": router.host,
                    "port": router.port,
                    "domain": args.domain,
                    "pid": os.getpid(),
                    "shards": {
                        name: {"host": s.host, "port": s.port, "pid": s.pid}
                        for name, s in specs.items()
                    },
                },
                args.ready_file,
            )
        try:
            await stop.wait()
            if args.snapshot:
                final_snapshot["payload"] = await router.fleet_snapshot()
        finally:
            await router.stop()

    try:
        try:
            asyncio.run(_main())
            print("interrupted — shutting down", flush=True)
        except KeyboardInterrupt:  # signal arrived before the handlers did
            print("interrupted — shutting down", flush=True)
    finally:
        manager.stop()
    if args.snapshot and final_snapshot:
        save_fleet_snapshot(final_snapshot["payload"], args.snapshot)
        print(
            f"Fleet snapshot written to {args.snapshot} "
            "(restart the same command to resume every shard)"
        )
    return 0


def _cmd_loadtest(args) -> int:
    """Saturation sweep against a self-hosted server; writes BENCH_serve.json."""
    from repro.domains.registry import domain_names
    from repro.serve import LoadTestConfig, run_loadtest, write_bench

    if args.domain not in domain_names():
        raise SystemExit(
            f"error: unknown domain {args.domain!r}; "
            f"registered domains: {', '.join(domain_names())}"
        )
    try:
        config = LoadTestConfig(
            domain=args.domain,
            client_counts=_parse_counts(args.clients, "--clients"),
            shard_counts=_parse_counts(args.shards, "--shards"),
            mode=args.mode,
            duration=args.duration,
            warmup=args.warmup,
            items=args.items,
            rate=args.rate,
            seed=args.seed,
            pool_units=args.pool_units,
            max_batch=args.max_batch,
            max_delay=args.max_delay,
            max_pending=args.max_pending,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None

    result = run_loadtest(config, echo=None if args.json else print)
    payload = write_bench(result, args.out)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print()
        print(result.format_table())
        print(f"\nSweep written to {args.out}")
    bad = [point.clients for point in result.points if not point.ledger_ok]
    if bad:
        # Should be impossible: the server accounts every offered unit.
        print(
            "error: accounting ledger violated (offered != accepted + rejected) "
            f"at client count(s) {bad} — units were silently dropped",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_improve(args) -> int:
    """Run the closed improvement loop over a serving fleet.

    Fires from ``--streams`` monitored streams feed the labeling queue;
    the ``--policy`` picks ``--budget`` units per round for the oracle;
    retraining (inline, or a background process with ``--jobs 2``)
    publishes versioned models that hot-swap into the fleet at a raw-unit
    boundary. With ``--snapshot PATH`` the entire loop state (fleet,
    fire store, bandit posteriors, labeled set, model versions) is
    restored first if the file exists — ``--rounds`` then means
    *additional* rounds — and written back on exit.
    """
    import os

    from repro.domains.registry import domain_names
    from repro.improve import ImproveConfig, ImprovementLoop
    from repro.improve.snapshot import load_loop_payload, save_loop_snapshot

    if args.domain not in domain_names():
        raise SystemExit(
            f"error: unknown domain {args.domain!r}; "
            f"registered domains: {', '.join(domain_names())}"
        )

    resumed = False
    if args.snapshot and os.path.exists(args.snapshot):
        try:
            payload = load_loop_payload(args.snapshot)
            config = from_jsonable(payload["config"])
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from None
        if config.domain != args.domain:
            raise SystemExit(
                f"error: {args.snapshot} is an improvement loop for domain "
                f"{config.domain!r}, not {args.domain!r}"
            )
        # The snapshot pins the loop's configuration; conflicting flags
        # would silently corrupt the resumed loop — reject them instead.
        pinned = (
            ("--policy", args.policy, config.policy),
            ("--streams", args.streams, config.n_streams),
            ("--items-per-round", args.items_per_round, config.items_per_round),
            ("--budget", args.budget, config.budget),
            ("--seed", args.seed, config.seed),
            ("--jobs", args.jobs, config.jobs),
            ("--swap-tick", args.swap_tick, config.swap_tick),
        )
        for flag, given, value in pinned:
            if given is not None and given != value:
                raise SystemExit(
                    f"error: {flag} {given} conflicts with the snapshot "
                    f"({args.snapshot} pins {flag[2:].replace('-', '_')}="
                    f"{value}); drop the flag to resume, or delete the "
                    "snapshot to start over"
                )
        if args.weak and not config.weak:
            raise SystemExit(
                f"error: --weak conflicts with the snapshot ({args.snapshot} "
                "was started without weak supervision)"
            )
        if args.suite and _resolve_suite(args.suite) != config.suite:
            raise SystemExit(
                f"error: --suite {args.suite} conflicts with the snapshot "
                f"({args.snapshot} pins the loop's assertion suite); drop "
                "the flag to resume, or delete the snapshot to start over"
            )
        loop = ImprovementLoop.from_snapshot(payload)
        resumed = True
    else:
        overrides = {
            key: value
            for key, value in {
                "policy": args.policy,
                "n_streams": args.streams,
                "items_per_round": args.items_per_round,
                "budget": args.budget,
                "n_rounds": args.rounds,
                "seed": args.seed,
                "jobs": args.jobs,
                "swap_tick": args.swap_tick,
            }.items()
            if value is not None
        }
        if args.weak:
            overrides["weak"] = True
        if args.suite:
            overrides["suite"] = _resolve_suite(args.suite)
        try:
            config = ImproveConfig(domain=args.domain, **overrides)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from None
        loop = ImprovementLoop(config)

    n_rounds = args.rounds if args.rounds is not None else loop.config.n_rounds
    with loop:
        result = loop.run(n_rounds)
        if args.snapshot:
            save_loop_snapshot(loop, args.snapshot)

    if args.json:
        print(
            json.dumps(
                {
                    "domain": result.domain,
                    "policy": result.policy,
                    "budget": result.budget,
                    "resumed": resumed,
                    "metric_name": result.metric_name,
                    "initial_metric": result.initial_metric,
                    "final_metric": result.final_metric,
                    "n_labeled": result.n_labeled,
                    "n_weak": result.n_weak,
                    "versions": [
                        {"version": v, "metric": metric, "round": round_index}
                        for v, metric, round_index in result.versions
                    ],
                    "rounds": [
                        {
                            "round": r.round_index,
                            "version_start": r.version_start,
                            "version_end": r.version_end,
                            "items": r.n_items,
                            "fires": r.n_fires,
                            "fires_per_item": r.fires_per_item,
                            "oracle_new": r.n_oracle_new,
                            "weak_new": r.n_weak_new,
                        }
                        for r in result.rounds
                    ],
                },
                indent=2,
            )
        )
    else:
        print(result.format_table())
        print(
            f"{result.metric_name}: {result.initial_metric:.2f} → "
            f"{result.final_metric:.2f} after {len(result.rounds)} round(s), "
            f"{result.n_labeled} oracle label(s), {result.n_weak} weak"
            + (" — resumed from snapshot" if resumed else "")
        )
        if args.snapshot:
            print(
                f"Snapshot written to {args.snapshot} "
                "(re-run the same command for more rounds)"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and figures through the experiment registry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show the experiment catalog")
    p_list.add_argument("--json", action="store_true", help="machine-readable output")
    p_list.set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="run experiments (cached, parallel trials)")
    p_run.add_argument("names", nargs="*", help="experiment names (see `list`)")
    p_run.add_argument("--all", action="store_true", help="run every registered experiment")
    p_run.add_argument("--jobs", type=int, default=1, help="worker processes for independent trials")
    p_run.add_argument("--seed", type=int, default=None, help="override the config seed")
    p_run.add_argument("--trials", type=int, default=None, help="override the config n_trials")
    p_run.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="override any other config field (repeatable)")
    p_run.add_argument("--force", action="store_true", help="recompute even on a cache hit")
    p_run.add_argument("--no-cache", action="store_true", help="skip the artifact cache entirely")
    p_run.add_argument("--cache-dir", default=None, help="artifact cache directory (default .repro-cache)")
    p_run.add_argument("--json", action="store_true", help="machine-readable output")
    p_run.set_defaults(fn=_cmd_run)

    p_report = sub.add_parser("report", help="render cached results without recomputation")
    p_report.add_argument("names", nargs="*", help="experiment names (default: all cached)")
    p_report.add_argument("--cache-dir", default=None, help="artifact cache directory")
    p_report.add_argument("--json", action="store_true", help="machine-readable output")
    p_report.set_defaults(fn=_cmd_report)

    p_assert = sub.add_parser(
        "assertions",
        help="inspect, export, lint, and diff declarative assertion suites",
    )
    assert_sub = p_assert.add_subparsers(dest="action", required=True)
    p_a_list = assert_sub.add_parser(
        "list", help="every assertion of one or more suites (default: all domains)"
    )
    p_a_list.add_argument("targets", nargs="*", metavar="DOMAIN|FILE",
                          help="registered domain names or suite JSON files")
    p_a_list.add_argument("--json", action="store_true", help="machine-readable output")
    p_a_list.set_defaults(fn=_cmd_assertions)
    p_a_show = assert_sub.add_parser(
        "show", help="render one suite (--json emits the loadable file format)"
    )
    p_a_show.add_argument("targets", nargs=1, metavar="DOMAIN|FILE")
    p_a_show.add_argument("--json", action="store_true",
                          help="emit the suite file payload (what --suite loads)")
    p_a_show.set_defaults(fn=_cmd_assertions)
    p_a_lint = assert_sub.add_parser(
        "lint", help="validate suites; non-zero exit on problems"
    )
    p_a_lint.add_argument("targets", nargs="*", metavar="DOMAIN|FILE",
                          help="suites to check (default: every registered domain)")
    p_a_lint.set_defaults(fn=_cmd_assertions)
    p_a_diff = assert_sub.add_parser("diff", help="entry-level diff of two suites")
    p_a_diff.add_argument("targets", nargs=2, metavar="DOMAIN|FILE")
    p_a_diff.add_argument("--json", action="store_true", help="machine-readable output")
    p_a_diff.set_defaults(fn=_cmd_assertions)

    p_stream = sub.add_parser(
        "stream", help="serve interleaved monitored streams of one domain"
    )
    p_stream.add_argument("domain", help="registered domain (av, ecg, tvnews, video)")
    p_stream.add_argument("--streams", type=int, default=None,
                          help="number of keyed streams (default 2; pinned by --snapshot on resume)")
    p_stream.add_argument("--items", type=int, default=4,
                          help="raw units ingested per stream this run")
    p_stream.add_argument("--seed", type=int, default=None,
                          help="root seed for the stream worlds (default 0; pinned by --snapshot on resume)")
    p_stream.add_argument("--suite", default=None, metavar="FILE",
                          help="declarative assertion suite to monitor with "
                               "(a domain name or a suite JSON file; pinned by --snapshot on resume)")
    p_stream.add_argument("--snapshot", default=None, metavar="PATH",
                          help="checkpoint file: restored first if it exists, written on exit")
    p_stream.add_argument("--serial", action="store_true",
                          help="disable the ingest_batch thread fan-out")
    p_stream.add_argument("--json", action="store_true", help="machine-readable output")
    p_stream.set_defaults(fn=_cmd_stream)

    p_serve = sub.add_parser(
        "serve", help="run the asyncio TCP serving front-end for one domain"
    )
    p_serve.add_argument("domain", help="registered domain (av, ecg, tvnews, video)")
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (default 0 = ephemeral; see --ready-file)")
    p_serve.add_argument("--max-batch", type=int, default=32,
                         help="most raw units coalesced into one service batch")
    p_serve.add_argument("--max-delay", type=float, default=0.005,
                         help="seconds a unit may wait for batch-mates before flush")
    p_serve.add_argument("--max-pending", type=int, default=1024,
                         help="admitted-unit bound; beyond it requests get "
                              "an explicit `overloaded` error")
    p_serve.add_argument("--suite", default=None, metavar="FILE",
                         help="declarative assertion suite to monitor with "
                              "(a domain name or a suite JSON file; pinned by --snapshot)")
    p_serve.add_argument("--snapshot", default=None, metavar="PATH",
                         help="fleet checkpoint: restored first if it exists, "
                              "written on shutdown (Ctrl-C)")
    p_serve.add_argument("--ready-file", default=None, metavar="PATH",
                         help="write {host, port, domain, pid} JSON once listening")
    p_serve.add_argument("--serial", action="store_true",
                         help="disable the ingest_batch thread fan-out")
    p_serve.set_defaults(fn=_cmd_serve)

    p_load = sub.add_parser(
        "loadtest",
        help="closed/open-loop load harness with a client-count saturation sweep",
    )
    p_load.add_argument("domain", nargs="?", default="tvnews",
                        help="registered domain to serve (default tvnews)")
    p_load.add_argument("--clients", default="1,4", metavar="N,N,...",
                        help="comma-separated client counts, one sweep point each")
    p_load.add_argument("--shards", default="1", metavar="N,N,...",
                        help="comma-separated fleet sizes; shards > 1 stands up "
                             "worker processes behind the consistent-hash router")
    p_load.add_argument("--mode", choices=["closed", "open"], default="closed",
                        help="closed: one request in flight per client; "
                             "open: fixed offered --rate, pipelined")
    p_load.add_argument("--duration", type=float, default=2.0,
                        help="measured seconds per sweep point")
    p_load.add_argument("--warmup", type=float, default=0.5,
                        help="seconds excluded from latency measurement")
    p_load.add_argument("--items", type=int, default=None,
                        help="closed loop: exactly N units per client "
                             "instead of a timed window (CI smoke)")
    p_load.add_argument("--rate", type=float, default=200.0,
                        help="open loop: aggregate offered units/s")
    p_load.add_argument("--seed", type=int, default=0,
                        help="root seed for the pre-generated unit pools")
    p_load.add_argument("--pool-units", type=int, default=32,
                        help="pre-generated raw units per client (cycled)")
    p_load.add_argument("--max-batch", type=int, default=32,
                        help="server knob: units per service batch")
    p_load.add_argument("--max-delay", type=float, default=0.002,
                        help="server knob: batch coalescing window (s)")
    p_load.add_argument("--max-pending", type=int, default=1024,
                        help="server knob: admitted-unit bound (backpressure)")
    p_load.add_argument("--out", default="BENCH_serve.json", metavar="PATH",
                        help="where to write the sweep payload")
    p_load.add_argument("--json", action="store_true", help="machine-readable output")
    p_load.set_defaults(fn=_cmd_loadtest)

    p_fleet = sub.add_parser(
        "fleet",
        help="run a sharded monitor fleet: worker shards behind a "
             "consistent-hash router with live migration",
    )
    p_fleet.add_argument("domain", help="registered domain (av, ecg, tvnews, video)")
    p_fleet.add_argument("--shards", type=int, default=2,
                         help="worker shard processes to spawn (default 2)")
    p_fleet.add_argument("--host", default="127.0.0.1", help="router bind address")
    p_fleet.add_argument("--port", type=int, default=0,
                         help="router TCP port (default 0 = ephemeral; see --ready-file)")
    p_fleet.add_argument("--ready-file", default=None, metavar="PATH",
                         help="write {host, port, domain, pid, shards} JSON once "
                              "the whole fleet is listening")
    p_fleet.add_argument("--snapshot", default=None, metavar="PATH",
                         help="coordinated fleet checkpoint: restored first if it "
                              "exists, written on shutdown (Ctrl-C)")
    p_fleet.add_argument("--workdir", default=None, metavar="DIR",
                         help="directory for worker ready files and logs "
                              "(default: a fresh temp dir)")
    p_fleet.add_argument("--max-batch", type=int, default=32,
                         help="per-shard server knob: units per service batch")
    p_fleet.add_argument("--max-delay", type=float, default=0.005,
                         help="per-shard server knob: batch coalescing window (s)")
    p_fleet.add_argument("--max-pending", type=int, default=1024,
                         help="per-shard server knob: admitted-unit bound")
    p_fleet.add_argument("--serial", action="store_true",
                         help="disable the per-shard ingest_batch thread fan-out")
    p_fleet.set_defaults(fn=_cmd_fleet)

    p_improve = sub.add_parser(
        "improve",
        help="close the loop: monitor → select → label → retrain → hot-swap",
    )
    p_improve.add_argument("domain", help="retrainable domain (ecg, video)")
    p_improve.add_argument("--rounds", type=int, default=None,
                           help="improvement rounds this run (additional rounds on resume)")
    p_improve.add_argument("--budget", type=int, default=None,
                           help="oracle labels per round (default 8)")
    p_improve.add_argument("--policy", choices=["bal", "random", "uniform"], default=None,
                           help="selection policy (default bal)")
    p_improve.add_argument("--streams", type=int, default=None,
                           help="monitored streams (default 2; pinned by --snapshot)")
    p_improve.add_argument("--items-per-round", type=int, default=None,
                           help="raw units per stream per round (default 8)")
    p_improve.add_argument("--seed", type=int, default=None,
                           help="root seed (default 0; pinned by --snapshot)")
    p_improve.add_argument("--jobs", type=int, default=None,
                           help="2+ retrains in a background process (bit-identical)")
    p_improve.add_argument("--swap-tick", type=int, default=None,
                           help="raw-unit boundary where a new version is adopted (default 0)")
    p_improve.add_argument("--weak", action="store_true",
                           help="also pseudo-label fired units via weak supervision")
    p_improve.add_argument("--suite", default=None, metavar="FILE",
                           help="declarative assertion suite for the fleet "
                                "(a domain name or a suite JSON file; pinned by --snapshot)")
    p_improve.add_argument("--snapshot", default=None, metavar="PATH",
                           help="loop checkpoint: restored first if it exists, written on exit")
    p_improve.add_argument("--json", action="store_true", help="machine-readable output")
    p_improve.set_defaults(fn=_cmd_improve)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # e.g. `python -m repro run --all | head` — exit quietly with the
        # conventional SIGPIPE status instead of a traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)
