"""``python -m repro`` — the reproduction command line.

Subcommands:

- ``list`` — the experiment catalog (name, paper artifact, config).
- ``run NAME... | --all`` — execute experiments through the registry
  runner, with the artifact cache and ``--jobs N`` trial parallelism.
- ``report`` — render cached results without recomputation.

Examples
--------
.. code-block:: console

   $ python -m repro list
   $ python -m repro run fig4_video --jobs 4
   $ python -m repro run table6 --seed 7 --set n_video_frames=600
   $ python -m repro run --all --jobs 2
   $ python -m repro report fig4_video
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import json
import sys

from repro.experiments import list_experiments, run_experiment
from repro.experiments.reporting import (
    format_table,
    from_jsonable,
    render_result,
    to_jsonable,
)
from repro.experiments.runner import get_experiment, load_cached


def _parse_value(text: str):
    """Best-effort literal parsing for ``--set key=value`` overrides."""
    try:
        return ast.literal_eval(text)
    except (SyntaxError, ValueError):
        return text


def _config_overrides(spec, args, *, strict: bool = True) -> dict:
    """Map CLI flags onto the experiment's config fields.

    With ``strict`` (explicitly named experiments) an override naming a
    field the config lacks is an error; under ``run --all`` the same
    override is applied only where the field exists, so a battery-wide
    ``--seed 7`` doesn't abort on the knobless experiments.
    """
    field_names = {f.name for f in dataclasses.fields(spec.config_type)}
    overrides: dict = {}
    if args.seed is not None:
        if "seed" in field_names:
            overrides["seed"] = args.seed
        elif strict:
            raise SystemExit(f"error: experiment {spec.name!r} takes no seed")
    if args.trials is not None:
        if "n_trials" in field_names:
            overrides["n_trials"] = args.trials
        elif strict:
            raise SystemExit(f"error: experiment {spec.name!r} has no trials")
    for assignment in args.set or []:
        key, sep, value = assignment.partition("=")
        if not sep:
            raise SystemExit(f"error: --set expects key=value, got {assignment!r}")
        if key in field_names:
            overrides[key] = _parse_value(value)
        elif strict:
            known = ", ".join(sorted(field_names)) or "(none)"
            raise SystemExit(
                f"error: {spec.name!r} config has no field {key!r}; fields: {known}"
            )
    return overrides


def _cmd_list(args) -> int:
    specs = list_experiments()
    if args.json:
        payload = [
            {
                "name": spec.name,
                "artifact": spec.artifact,
                "description": spec.description,
                "config": to_jsonable(spec.config_type()),
            }
            for spec in specs
        ]
        print(json.dumps(payload, indent=2))
        return 0
    rows = []
    for spec in specs:
        fields = dataclasses.fields(spec.config_type)
        config = ", ".join(f"{f.name}={getattr(spec.config_type(), f.name)}" for f in fields)
        rows.append((spec.name, spec.artifact, config or "-"))
    print(format_table(["Experiment", "Paper artifact", "Config defaults"], rows,
                       title=f"{len(specs)} registered experiments"))
    return 0


def _cmd_run(args) -> int:
    if args.all:
        if args.names:
            raise SystemExit("error: give experiment names or --all, not both")
        names = [spec.name for spec in list_experiments()]
    elif args.names:
        names = args.names
    else:
        raise SystemExit("error: give at least one experiment name (or --all)")

    # Resolve every name and its overrides up front, so a typo in the
    # last argument fails before the first expensive experiment runs.
    plan = []
    for name in names:
        try:
            spec = get_experiment(name)
        except KeyError as exc:
            raise SystemExit(f"error: {exc.args[0]}") from None
        plan.append((spec, _config_overrides(spec, args, strict=not args.all)))

    payloads = []
    for spec, overrides in plan:
        run = run_experiment(
            spec.name,
            jobs=args.jobs,
            force=args.force,
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
            **overrides,
        )
        if args.json:
            payloads.append(
                {
                    "experiment": spec.name,
                    "artifact": spec.artifact,
                    "cached": run.cached,
                    "elapsed_s": run.elapsed_s,
                    "config": to_jsonable(run.config),
                    "result": to_jsonable(run.result),
                }
            )
        else:
            status = (
                f"[{spec.name}] cache hit ({run.path})"
                if run.cached
                else f"[{spec.name}] ran in {run.elapsed_s:.1f}s"
                + (f" → {run.path}" if run.path else "")
            )
            print(status)
            print(render_result(run.result))
            print()
    if args.json:
        # One parseable document: an object for a single experiment, an
        # array when several ran.
        print(json.dumps(payloads[0] if len(payloads) == 1 else payloads, indent=2))
    return 0


def _cmd_report(args) -> int:
    names = args.names or [spec.name for spec in list_experiments()]
    for name in names:  # validate everything before rendering anything
        try:
            get_experiment(name)
        except KeyError as exc:
            raise SystemExit(f"error: {exc.args[0]}") from None
    missing = []
    shown = 0
    payloads = []
    for name in names:
        entries = load_cached(name, cache_dir=args.cache_dir)
        if not entries:
            missing.append(name)
            continue
        payload, path = entries[0]  # newest; older fingerprints stay on disk
        shown += 1
        if args.json:
            payloads.append(payload)
        else:
            print(f"[{name}] {payload.get('artifact', '')} (cached at {path})")
            print(render_result(from_jsonable(payload["result"])))
            print()
    if args.json and payloads:
        # One parseable document, like `run --json`.
        print(json.dumps(payloads[0] if len(payloads) == 1 else payloads, indent=2))
    if missing and args.names:
        raise SystemExit(
            "error: no cached artifacts for: "
            + ", ".join(missing)
            + " — run `python -m repro run <name>` first"
        )
    if not shown:
        raise SystemExit(
            "error: the artifact cache is empty — run `python -m repro run --all` first"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and figures through the experiment registry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show the experiment catalog")
    p_list.add_argument("--json", action="store_true", help="machine-readable output")
    p_list.set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="run experiments (cached, parallel trials)")
    p_run.add_argument("names", nargs="*", help="experiment names (see `list`)")
    p_run.add_argument("--all", action="store_true", help="run every registered experiment")
    p_run.add_argument("--jobs", type=int, default=1, help="worker processes for independent trials")
    p_run.add_argument("--seed", type=int, default=None, help="override the config seed")
    p_run.add_argument("--trials", type=int, default=None, help="override the config n_trials")
    p_run.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="override any other config field (repeatable)")
    p_run.add_argument("--force", action="store_true", help="recompute even on a cache hit")
    p_run.add_argument("--no-cache", action="store_true", help="skip the artifact cache entirely")
    p_run.add_argument("--cache-dir", default=None, help="artifact cache directory (default .repro-cache)")
    p_run.add_argument("--json", action="store_true", help="machine-readable output")
    p_run.set_defaults(fn=_cmd_run)

    p_report = sub.add_parser("report", help="render cached results without recomputation")
    p_report.add_argument("names", nargs="*", help="experiment names (default: all cached)")
    p_report.add_argument("--cache-dir", default=None, help="artifact cache directory")
    p_report.add_argument("--json", action="store_true", help="machine-readable output")
    p_report.set_defaults(fn=_cmd_report)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # e.g. `python -m repro run --all | head` — exit quietly with the
        # conventional SIGPIPE status instead of a traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)
