"""Simulated labeling services over traffic-world frames."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.box2d import Box2D
from repro.utils.rng import as_generator
from repro.worlds.traffic import VEHICLE_CLASSES


@dataclass(frozen=True)
class HumanLabel:
    """One human-annotated box.

    Attributes
    ----------
    frame_index:
        Index of the labeled frame within the *sampled* frame list.
    object_id:
        Ground-truth object identity (used by the evaluation only — the
        assertion never sees it unless the tracker recovers it).
    box:
        The annotated box with the (possibly wrong) class label.
    true_label:
        The ground-truth class.
    """

    frame_index: int
    object_id: int
    box: Box2D
    true_label: str

    @property
    def is_error(self) -> bool:
        return self.box.label != self.true_label


class OracleLabeler:
    """Perfect labels: returns the world's ground truth unchanged."""

    def label_frames(self, frames: list) -> list:
        """Per-frame lists of ground-truth boxes."""
        return [frame.ground_truth for frame in frames]


class HumanLabeler:
    """A Scale-like service with rare classification errors.

    The paper's audit of 469 Scale-returned boxes found "no localization
    errors, but there were 32 classification errors" (~6.8%); this
    labeler reproduces that profile: boxes are exact, class labels are
    wrong at ``class_error_rate``, confused with the geometrically
    nearest other class (car↔truck more often than car↔bus).
    """

    #: Confusion preferences: class → candidate mistaken classes, nearer first.
    _CONFUSIONS = {
        "car": ("truck", "car"),
        "truck": ("car", "truck"),
    }

    def __init__(
        self,
        class_error_rate: float = 0.068,
        *,
        near_confusion_probability: float = 0.8,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        if not 0.0 <= class_error_rate <= 1.0:
            raise ValueError(f"class_error_rate must be in [0, 1], got {class_error_rate}")
        self.class_error_rate = class_error_rate
        self.near_confusion_probability = near_confusion_probability
        self._rng = as_generator(seed)

    def _mistaken_label(self, true_label: str) -> str:
        near, _far = self._CONFUSIONS[true_label]
        return near

    def label_frames(self, frames: list) -> list:
        """Annotate frames → per-frame lists of :class:`HumanLabel`."""
        labeled = []
        for frame_index, frame in enumerate(frames):
            rows = []
            for vehicle in frame.vehicles:
                label = vehicle.label
                if self._rng.random() < self.class_error_rate:
                    label = self._mistaken_label(vehicle.label)
                rows.append(
                    HumanLabel(
                        frame_index=frame_index,
                        object_id=vehicle.object_id,
                        box=vehicle.box.with_label(label),
                        true_label=vehicle.label,
                    )
                )
            labeled.append(rows)
        return labeled
