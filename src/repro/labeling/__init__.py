"""Label providers: the perfect oracle and a noisy human labeling service.

The oracle backs active learning (the paper labels selected data through a
labeling service and treats the result as ground truth); the noisy
:class:`HumanLabeler` backs Appendix E / Table 6, where model assertions
catch classification errors in Scale-annotated frames.
"""

from repro.labeling.human import HumanLabel, HumanLabeler, OracleLabeler

__all__ = ["HumanLabel", "HumanLabeler", "OracleLabeler"]
