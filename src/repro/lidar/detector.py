"""Cluster-scoring LIDAR detector emitting 3-D boxes."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.box3d import Box3D
from repro.lidar.clustering import BEVGrid, Cluster, cluster_points
from repro.ml.linear import LogisticRegression
from repro.ml.preprocess import Standardizer
from repro.utils.rng import as_generator

#: Number of features per cluster.
N_CLUSTER_FEATURES = 8

CLUSTER_FEATURE_NAMES = (
    "n_points_log",
    "extent_x",
    "extent_y",
    "extent_z",
    "bev_area",
    "density",
    "distance",
    "height_max",
)


def cluster_features(cluster: Cluster) -> np.ndarray:
    """Shape/density statistics of one cluster."""
    extent = cluster.extent
    centroid = cluster.centroid
    bev_area = max(extent[0] * extent[1], 1e-3)
    return np.array(
        [
            np.log1p(cluster.n_points),
            extent[0],
            extent[1],
            extent[2],
            bev_area,
            cluster.n_points / bev_area,
            float(np.hypot(centroid[0], centroid[1])),
            float(cluster.points[:, 2].max()),
        ],
        dtype=np.float64,
    )


@dataclass(frozen=True)
class LidarDetectorConfig:
    """LIDAR detector hyperparameters."""

    grid: BEVGrid = field(default_factory=BEVGrid)
    score_threshold: float = 0.5
    match_distance: float = 2.0  # BEV centroid distance for GT matching (m)
    min_points: int = 4
    default_height: float = 1.6  # emitted box height when points underestimate
    learning_rate: float = 0.08
    l2: float = 1e-3
    epochs: int = 150


class LidarDetector:
    """Binary (vehicle vs clutter) cluster classifier → 3-D boxes.

    Trained on scenes with ground-truth 3-D boxes: clusters whose BEV
    centroid lies within ``match_distance`` of a ground-truth box center
    are positives. The emitted box takes the cluster's BEV bounds (LIDAR
    sees only visible faces, so boxes systematically under/over-shoot —
    one reason the camera and LIDAR disagree).
    """

    def __init__(
        self,
        config: "LidarDetectorConfig | None" = None,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        self.config = config if config is not None else LidarDetectorConfig()
        self._rng = as_generator(seed)
        self.standardizer = Standardizer()
        self.scorer = LogisticRegression(
            n_classes=2,
            n_features=N_CLUSTER_FEATURES,
            learning_rate=self.config.learning_rate,
            l2=self.config.l2,
            seed=self._rng.spawn(1)[0],
        )
        self.is_fitted = False

    # ------------------------------------------------------------------
    def _candidate_clusters(self, point_cloud: np.ndarray) -> list:
        clusters = cluster_points(point_cloud, self.config.grid)
        return [c for c in clusters if c.n_points >= self.config.min_points]

    def fit(self, point_clouds: list, ground_truths: list) -> "LidarDetector":
        """Train the cluster classifier on labeled samples.

        ``ground_truths`` is a parallel list of per-sample
        :class:`~repro.geometry.box3d.Box3D` lists.
        """
        features = []
        labels = []
        for cloud, gt_boxes in zip(point_clouds, ground_truths):
            centers = np.array([[b.cx, b.cy] for b in gt_boxes]) if gt_boxes else None
            for cluster in self._candidate_clusters(cloud):
                features.append(cluster_features(cluster))
                centroid = cluster.centroid[:2]
                if centers is not None and centers.size:
                    dist = np.min(np.linalg.norm(centers - centroid, axis=1))
                    labels.append(1 if dist <= self.config.match_distance else 0)
                else:
                    labels.append(0)
        if not features:
            raise ValueError("no clusters found in the training samples")
        x = self.standardizer.fit(np.asarray(features)).transform(np.asarray(features))
        y = np.asarray(labels, dtype=np.intp)
        counts = np.bincount(y, minlength=2).astype(np.float64)
        weights = np.sqrt(len(y) / np.maximum(counts, 1.0))[y]
        self.scorer.fit(x, y, epochs=self.config.epochs, sample_weight=weights, reset=True)
        self.is_fitted = True
        return self

    # ------------------------------------------------------------------
    def detect(self, point_cloud: np.ndarray) -> list:
        """Detect vehicles in one point cloud → scored :class:`Box3D` s."""
        if not self.is_fitted:
            raise RuntimeError("LidarDetector is not fitted; call fit first")
        clusters = self._candidate_clusters(point_cloud)
        if not clusters:
            return []
        feats = np.stack([cluster_features(c) for c in clusters])
        probs = self.scorer.predict_proba(self.standardizer.transform(feats))[:, 1]
        boxes = []
        for cluster, score in zip(clusters, probs):
            if score < self.config.score_threshold:
                continue
            (x1, y1), (x2, y2) = cluster.bounds
            length = max(x2 - x1, 0.8)
            width = max(y2 - y1, 0.8)
            height = max(float(cluster.points[:, 2].max()), self.config.default_height)
            boxes.append(
                Box3D(
                    cx=(x1 + x2) / 2.0,
                    cy=(y1 + y2) / 2.0,
                    cz=height / 2.0,
                    length=length,
                    width=width,
                    height=height,
                    yaw=0.0,
                    label="vehicle",
                    score=float(score),
                )
            )
        boxes.sort(key=lambda b: -b.score)
        return boxes

    def detect_samples(self, point_clouds: list) -> list:
        """Run :meth:`detect` over many point clouds."""
        return [self.detect(cloud) for cloud in point_clouds]
