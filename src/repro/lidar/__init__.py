"""A trainable bird's-eye-view LIDAR detector (the PointPillars stand-in).

Pipeline: drop ground returns, rasterize the remaining points into a BEV
occupancy grid, extract clusters via connected components
(:mod:`repro.lidar.clustering`), score each cluster with a learned
logistic classifier over cluster shape features, and emit 3-D boxes
(:mod:`repro.lidar.detector`). Like the paper's Second/PointPillars model
it is bootstrapped once on labeled scenes and then held fixed while the
camera model is improved (§5.1).
"""

from repro.lidar.clustering import BEVGrid, Cluster, cluster_points
from repro.lidar.detector import LidarDetector, LidarDetectorConfig

__all__ = [
    "BEVGrid",
    "Cluster",
    "LidarDetector",
    "LidarDetectorConfig",
    "cluster_points",
]
