"""BEV occupancy-grid clustering of LIDAR point clouds."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage


@dataclass(frozen=True)
class BEVGrid:
    """Bird's-eye-view grid specification (ego frame, meters)."""

    x_range: tuple = (0.0, 60.0)
    y_range: tuple = (-15.0, 15.0)
    cell_size: float = 0.5
    ground_height: float = 0.3  # points at or below are ground returns

    @property
    def shape(self) -> tuple:
        nx = int(np.ceil((self.x_range[1] - self.x_range[0]) / self.cell_size))
        ny = int(np.ceil((self.y_range[1] - self.y_range[0]) / self.cell_size))
        return nx, ny


@dataclass(frozen=True)
class Cluster:
    """A connected group of above-ground points."""

    points: np.ndarray  # (n, 3)

    @property
    def n_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def centroid(self) -> np.ndarray:
        return self.points.mean(axis=0)

    @property
    def extent(self) -> np.ndarray:
        """(dx, dy, dz) bounding extents."""
        return self.points.max(axis=0) - self.points.min(axis=0)

    @property
    def bounds(self) -> tuple:
        """((x1, y1), (x2, y2)) BEV bounding rectangle."""
        mins = self.points.min(axis=0)
        maxs = self.points.max(axis=0)
        return (float(mins[0]), float(mins[1])), (float(maxs[0]), float(maxs[1]))


def cluster_points(points: np.ndarray, grid: "BEVGrid | None" = None) -> list:
    """Cluster above-ground points via BEV connected components.

    Points outside the grid or at ground height are dropped; remaining
    points are binned into cells; 8-connected occupied cells form
    clusters. Deterministic.
    """
    grid = grid if grid is not None else BEVGrid()
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError(f"points must be (n, 3), got shape {pts.shape}")
    if pts.shape[0] == 0:
        return []

    keep = (
        (pts[:, 2] > grid.ground_height)
        & (pts[:, 0] >= grid.x_range[0])
        & (pts[:, 0] < grid.x_range[1])
        & (pts[:, 1] >= grid.y_range[0])
        & (pts[:, 1] < grid.y_range[1])
    )
    pts = pts[keep]
    if pts.shape[0] == 0:
        return []

    nx, ny = grid.shape
    ix = ((pts[:, 0] - grid.x_range[0]) / grid.cell_size).astype(int)
    iy = ((pts[:, 1] - grid.y_range[0]) / grid.cell_size).astype(int)
    occupancy = np.zeros((nx, ny), dtype=bool)
    occupancy[ix, iy] = True

    labeled, n_components = ndimage.label(occupancy, structure=np.ones((3, 3), dtype=int))
    if n_components == 0:
        return []
    point_labels = labeled[ix, iy]
    clusters = []
    for component in range(1, n_components + 1):
        member = point_labels == component
        if np.any(member):
            clusters.append(Cluster(points=pts[member]))
    return clusters
