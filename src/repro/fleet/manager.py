"""Spawn and supervise the worker processes of a sharded fleet.

:class:`FleetManager` turns "N shards of domain D" into N running
``python -m repro.fleet.worker`` processes, each announcing its bound
address through a ready file in the manager's working directory. The
manager owns only *process* lifecycle — spawn, readiness, liveness,
restart, orderly stop; stream placement and migration are the router's
job (:mod:`repro.fleet.router`), and a restarted worker comes back
*empty* by design: re-seeding its sessions is an explicit
``restore_stream``/fleet-restore decision, never something the manager
does implicitly.

Workers inherit this process's environment (so ``PYTHONPATH=src`` test
runs spawn importable children) and write stderr to
``<workdir>/<shard>.log`` — the first thing :meth:`FleetManager.start`
shows you when a worker dies before its ready file appears.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass

from repro.utils.io import read_json

#: Seconds a spawned worker gets to write its ready file.
READY_TIMEOUT = 30.0


@dataclass(frozen=True)
class ShardSpec:
    """One running shard: its name on the ring and where it listens."""

    name: str
    host: str
    port: int
    pid: int

    def address(self) -> tuple:
        return (self.host, self.port)


def shard_names(n_shards: int) -> list:
    """Canonical shard names ``shard-0 .. shard-N-1``.

    Shared by the manager and the CLI so a ring built from ``--shards N``
    alone owns streams identically everywhere.
    """
    if n_shards < 1:
        raise ValueError(f"a fleet needs at least 1 shard, got {n_shards}")
    return [f"shard-{index}" for index in range(n_shards)]


class FleetManager:
    """Run one worker process per shard (see module docstring).

    Usage::

        manager = FleetManager("tvnews", 2, workdir="/tmp/fleet")
        specs = manager.start()          # blocks until every shard is up
        ...                              # specs[name].address() per shard
        manager.stop()

    or as a context manager (``with FleetManager(...) as specs:``).
    """

    def __init__(
        self,
        domain: str,
        n_shards: int,
        *,
        workdir: str,
        host: str = "127.0.0.1",
        max_batch: int = 32,
        max_delay: float = 0.005,
        max_pending: int = 1024,
        serial: bool = False,
        ready_timeout: float = READY_TIMEOUT,
    ) -> None:
        self.domain = domain
        self.names = shard_names(n_shards)
        self.workdir = workdir
        self.host = host
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.max_pending = max_pending
        self.serial = serial
        self.ready_timeout = ready_timeout
        self._procs: "dict[str, subprocess.Popen]" = {}
        self._specs: "dict[str, ShardSpec]" = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> dict:
        """Spawn every worker; returns ``{name: ShardSpec}`` once all are
        listening. Any worker that dies (or stays silent past
        ``ready_timeout``) aborts the whole start with its log tail."""
        if self._procs:
            raise RuntimeError("fleet already started")
        os.makedirs(self.workdir, exist_ok=True)
        for name in self.names:
            self._spawn(name)
        for name in self.names:
            self._specs[name] = self._await_ready(name)
        return dict(self._specs)

    def _spawn(self, name: str) -> None:
        ready = self._ready_file(name)
        if os.path.exists(ready):
            os.unlink(ready)  # never trust a previous incarnation's file
        command = [
            sys.executable,
            "-m",
            "repro.fleet.worker",
            self.domain,
            "--shard", name,
            "--host", self.host,
            "--port", "0",
            "--ready-file", ready,
            "--max-batch", str(self.max_batch),
            "--max-delay", str(self.max_delay),
            "--max-pending", str(self.max_pending),
        ]
        if self.serial:
            command.append("--serial")
        log = open(self._log_file(name), "ab")
        try:
            self._procs[name] = subprocess.Popen(
                command, stdout=log, stderr=subprocess.STDOUT
            )
        finally:
            log.close()  # the child holds its own descriptor

    def _await_ready(self, name: str) -> ShardSpec:
        proc = self._procs[name]
        ready = self._ready_file(name)
        deadline = time.monotonic() + self.ready_timeout
        while time.monotonic() < deadline:
            if os.path.exists(ready):
                try:
                    payload = read_json(ready)
                except ValueError:
                    pass  # torn read cannot happen (atomic write) — but be safe
                else:
                    return ShardSpec(
                        name=name,
                        host=payload["host"],
                        port=int(payload["port"]),
                        pid=int(payload["pid"]),
                    )
            if proc.poll() is not None:
                raise RuntimeError(
                    f"shard {name!r} exited with status {proc.returncode} "
                    f"before becoming ready:\n{self._log_tail(name)}"
                )
            time.sleep(0.02)
        raise RuntimeError(
            f"shard {name!r} did not become ready within "
            f"{self.ready_timeout:.0f}s:\n{self._log_tail(name)}"
        )

    def poll(self) -> dict:
        """``{name: None | exit_status}`` — None means still running."""
        return {name: proc.poll() for name, proc in self._procs.items()}

    def restart(self, name: str) -> ShardSpec:
        """Bounce one worker: SIGKILL (simulating a crash), respawn, wait
        for readiness. The new incarnation is *empty* — restore state
        through the router / ``restore_stream`` explicitly."""
        proc = self._procs.get(name)
        if proc is None:
            raise KeyError(name)
        if proc.poll() is None:
            proc.kill()
        proc.wait()
        self._spawn(name)
        self._specs[name] = self._await_ready(name)
        return self._specs[name]

    def addresses(self) -> dict:
        """``{name: (host, port)}`` of every started shard."""
        return {name: spec.address() for name, spec in self._specs.items()}

    def stop(self, *, timeout: float = 10.0) -> None:
        """SIGTERM every worker (drains + snapshots), SIGKILL stragglers."""
        for proc in self._procs.values():
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + timeout
        for proc in self._procs.values():
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._procs.clear()
        self._specs.clear()

    def __enter__(self) -> dict:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Paths / diagnostics
    # ------------------------------------------------------------------
    def _ready_file(self, name: str) -> str:
        return os.path.join(self.workdir, f"{name}.ready.json")

    def _log_file(self, name: str) -> str:
        return os.path.join(self.workdir, f"{name}.log")

    def _log_tail(self, name: str, lines: int = 20) -> str:
        try:
            with open(self._log_file(name), "r", errors="replace") as handle:
                tail = handle.readlines()[-lines:]
        except OSError:
            return "(no worker log)"
        return "".join(tail) or "(empty worker log)"
