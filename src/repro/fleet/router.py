"""The fleet's front door: route streams to shards, migrate them live.

:class:`FleetRouter` is an asyncio TCP server speaking exactly the
NDJSON protocol of a single :class:`~repro.serve.MonitorServer`
(:mod:`repro.serve.net`) — a :class:`~repro.serve.ServiceClient` or
``repro loadtest`` pointed at a router cannot tell it from one big
server. Behind it, each stream lives on exactly one worker shard,
chosen by the :class:`~repro.fleet.ring.RoutingTable`.

Routing invariants (``tests/fleet/test_router.py`` pins each):

- **Per-stream FIFO end to end.** Ingest requests are forwarded to the
  owning shard *synchronously, in arrival order* — the await happens on
  the response, never before the forward — so two units of one stream
  can never reorder, even across interleaved connections, a migration,
  or a shard redial.
- **Typed errors, never hangups.** A dead shard surfaces as a
  ``shard-unavailable`` error payload naming the shard; requests queued
  while a shard link is redialing are flushed in order once it returns,
  and requests that were *in flight* when the connection died are failed
  (never resent — a resend could double-ingest against state the shard
  already applied before crashing).
- **Merged views.** ``fleet_report`` stacks every shard's stream
  reports through the same :func:`~repro.serve.service.build_fleet_report`
  core a single service uses (rows in router first-seen order);
  ``stats`` sums the shard ledgers and carries the per-stream and
  per-shard breakdowns.

**Live migration** (the ``migrate``/``rebalance`` ops) moves a stream
between shards mid-run with zero unit loss or reorder:

1. *Quiesce* — freeze the stream (new units buffer at the router) and
   drain its in-flight responses, leaving the source at a raw-unit
   boundary (the shard's single pipeline guarantees a control op queued
   after N ingests sees all N applied);
2. *Snapshot* — ``snapshot_stream`` on the source (validating the
   requested ``tick`` against the session's consumed-unit count);
3. *Restore* — ``restore_stream`` on the destination, then ``evict``
   on the source;
4. *Flip* — pin the stream to the destination in the routing table and
   flush the buffered units there, in order.

A migrated stream's fires, reports, and final state are bit-identical
to a never-migrated run — including migrations straddling an
``apply_suite`` reconfiguration or a client-side model hot-swap
(``tests/fleet/test_migration.py``).

The ``snapshot``/``restore`` ops extend the same quiesce to the whole
fleet: gate all admissions, drain everything, snapshot every shard, and
compose one :func:`~repro.fleet.snapshot.fleet_snapshot_payload`.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass

from repro.fleet.ring import HashRing, RoutingTable
from repro.fleet.snapshot import (
    SnapshotFormatError,
    fleet_snapshot_payload,
    validate_fleet_payload,
)
from repro.serve.net import (
    PROTOCOL_VERSION,
    ServiceClient,
    ServiceError,
    _Connection,
    _error_doc,
)
from repro.serve.service import build_fleet_report
from repro.utils.codec import from_jsonable
from repro.utils.framing import MAX_FRAME_BYTES, FrameError, decode_frame


@dataclass(frozen=True)
class RouterConfig:
    """Network and shard-link knobs of :class:`FleetRouter`.

    ``link_retries``/``link_backoff``/``link_max_backoff`` bound how long
    a shard link redials a lost worker before declaring it dead; while
    redialing, new requests queue (in order), and once dead every request
    for that shard fails fast with ``shard-unavailable``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_frame_bytes: int = MAX_FRAME_BYTES
    replicas: int = 64
    link_retries: int = 8
    link_backoff: float = 0.05
    link_max_backoff: float = 0.5

    def __post_init__(self) -> None:
        if self.link_retries < 1:
            raise ValueError(f"link_retries must be >= 1, got {self.link_retries}")
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")


class ShardUnavailableError(ConnectionError):
    """A shard that cannot currently take requests (dead or mid-crash)."""

    def __init__(self, shard: str, cause) -> None:
        super().__init__(f"shard {shard!r} is unavailable: {cause}")
        self.shard = shard
        self.cause = cause


class _RouterOpError(Exception):
    """An op-level failure the router answers with a typed error doc."""

    def __init__(self, error_type: str, message: str, **extra) -> None:
        super().__init__(message)
        self.error_type = error_type
        self.extra = extra


class _ShardLink:
    """One persistent connection to one worker shard.

    ``submit`` is synchronous (the write happens before returning to the
    event loop), which is what preserves per-stream FIFO order across
    everything the router forwards. On a lost connection the link
    redials with bounded exponential backoff; requests submitted while
    redialing queue in order, requests in flight at the moment of death
    fail with :class:`ShardUnavailableError` — deliberately *not*
    resent, because the shard may have applied them before crashing.
    """

    def __init__(self, name: str, host: str, port: int, config: RouterConfig) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.config = config
        self._client: "ServiceClient | None" = None
        self._backlog: list = []
        self._redial_task: "asyncio.Task | None" = None
        self._dead = False
        self._last_error: "Exception | None" = None

    async def start(self) -> None:
        self._client = await ServiceClient.connect(self.host, self.port)

    async def close(self) -> None:
        if self._redial_task is not None:
            self._redial_task.cancel()
            try:
                await self._redial_task
            except asyncio.CancelledError:
                pass
            self._redial_task = None
        if self._client is not None:
            client, self._client = self._client, None
            await client.close()
        self._dead = True
        self._fail_backlog(ConnectionError("link closed"))

    @property
    def alive(self) -> bool:
        return not self._dead

    def submit(self, op: str, fields: dict) -> "asyncio.Future":
        """Queue one request; resolves to the shard's response envelope."""
        loop = asyncio.get_running_loop()
        outer = loop.create_future()
        if self._dead:
            outer.set_exception(ShardUnavailableError(self.name, self._last_error))
            return outer
        if self._client is not None and not self._client.connected:
            self._note_disconnect()
        if self._client is not None:
            self._send(op, fields, outer)
        else:
            self._backlog.append((op, fields, outer))
        return outer

    async def request(self, op: str, **fields) -> dict:
        """Call-and-wait; raises :class:`ServiceError` on ``ok: false``
        and :class:`ShardUnavailableError` on transport loss."""
        envelope = await self.submit(op, fields)
        if not envelope.get("ok"):
            raise ServiceError(envelope.get("error"))
        return envelope.get("result") or {}

    def _send(self, op: str, fields: dict, outer: "asyncio.Future") -> None:
        inner = self._client.submit(op, **fields)

        def _relay(fut: "asyncio.Future") -> None:
            if fut.exception() is not None:
                # The connection died with this request in flight. Fail
                # it (at-most-once) and start redialing for later ones.
                self._note_disconnect()
                if not outer.done():
                    outer.set_exception(
                        ShardUnavailableError(self.name, fut.exception())
                    )
            elif not outer.done():
                outer.set_result(fut.result())

        inner.add_done_callback(_relay)

    def _note_disconnect(self) -> None:
        if self._client is not None:
            client, self._client = self._client, None
            asyncio.ensure_future(client.close())
        if self._redial_task is None or self._redial_task.done():
            self._redial_task = asyncio.create_task(self._redial())

    async def _redial(self) -> None:
        delay = self.config.link_backoff
        for attempt in range(self.config.link_retries):
            try:
                client = await ServiceClient.connect(self.host, self.port)
            except OSError as exc:
                self._last_error = exc
                await asyncio.sleep(delay)
                delay = min(delay * 2, self.config.link_max_backoff)
            else:
                self._client = client
                backlog, self._backlog = self._backlog, []
                for op, fields, outer in backlog:  # flush in arrival order
                    if not outer.done():
                        self._send(op, fields, outer)
                return
        self._dead = True
        self._fail_backlog(self._last_error)

    def _fail_backlog(self, cause) -> None:
        backlog, self._backlog = self._backlog, []
        for _op, _fields, outer in backlog:
            if not outer.done():
                outer.set_exception(ShardUnavailableError(self.name, cause))


class _StreamRoute:
    """Router-side state of one stream: in-flight shard requests (for
    draining) and the hold-back buffer used while the stream is frozen
    mid-migration."""

    __slots__ = ("pending", "frozen", "buffer")

    def __init__(self) -> None:
        self.pending: "set[asyncio.Future]" = set()
        self.frozen = False
        self.buffer: list = []  # [(raw, placeholder_future), ...]


class FleetRouter:
    """Front a sharded fleet with one NDJSON endpoint (see module doc).

    Parameters
    ----------
    domain:
        The served domain name (every shard must serve the same one).
    addresses:
        ``{shard_name: (host, port)}`` — e.g.
        :meth:`~repro.fleet.manager.FleetManager.addresses`, or
        in-process :class:`~repro.serve.MonitorServer` s in tests.
    config:
        :class:`RouterConfig`; the ring is built from the shard names
        with ``config.replicas`` virtual nodes each.
    """

    def __init__(
        self,
        domain: str,
        addresses: dict,
        config: "RouterConfig | None" = None,
    ) -> None:
        if not addresses:
            raise ValueError("a fleet needs at least one shard address")
        self.domain = domain
        self.config = config if config is not None else RouterConfig()
        self.table = RoutingTable(
            HashRing(addresses.keys(), replicas=self.config.replicas)
        )
        self._links = {
            name: _ShardLink(name, host, port, self.config)
            for name, (host, port) in sorted(addresses.items())
        }
        self._routes: "OrderedDict[str, _StreamRoute]" = OrderedDict()
        self._server: "asyncio.base_events.Server | None" = None
        self._connections: "set[_Connection]" = set()
        self._tasks: "set[asyncio.Task]" = set()
        self._control_lock = asyncio.Lock()
        self._gated = False
        self._gate_buffer: list = []  # [(stream_id, raw, placeholder), ...]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("router already started")
        for link in self._links.values():
            await link.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_frame_bytes + 1024,
        )

    @property
    def host(self) -> str:
        return self._bound_address()[0]

    @property
    def port(self) -> int:
        return self._bound_address()[1]

    def _bound_address(self) -> tuple:
        if self._server is None:
            raise RuntimeError("router not started")
        return self._server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        for conn in list(self._connections):
            conn.outgoing.put_nowait(None)
            if conn.writer_task is not None:
                await conn.writer_task
        self._connections.clear()
        for link in self._links.values():
            await link.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def fleet_snapshot(self) -> dict:
        """Coordinated snapshot of the whole fleet (the ``snapshot`` op,
        callable in-process — what ``repro fleet --snapshot`` writes)."""
        return (await self._op_snapshot({}))["snapshot"]

    async def restore_fleet(self, payload: dict) -> dict:
        """Restore a :func:`fleet_snapshot` payload across the shards."""
        return await self._op_restore({"snapshot": payload})

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        conn.writer_task = asyncio.create_task(conn.drain_writer())
        self._connections.add(conn)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    conn.send(_error_doc(None, "bad-request", "frame too long"))
                    break
                if not line:
                    break
                self._handle_line(line, conn)
        finally:
            self._connections.discard(conn)
            conn.outgoing.put_nowait(None)
            await conn.writer_task

    def _handle_line(self, line: bytes, conn: _Connection) -> None:
        try:
            request = decode_frame(line, max_bytes=self.config.max_frame_bytes)
        except FrameError as exc:
            conn.send(_error_doc(None, "bad-request", str(exc)))
            return
        if not isinstance(request, dict) or not isinstance(request.get("op"), str):
            conn.send(_error_doc(None, "bad-request", 'expected {"op": ..., ...}'))
            return
        request_id = request.get("id")
        op = request["op"]
        domain = request.get("domain")
        if domain is not None and domain != self.domain:
            conn.send(
                _error_doc(
                    request_id,
                    "unknown-domain",
                    f"this router serves domain {self.domain!r}, not {domain!r}",
                    domain=self.domain,
                )
            )
            return
        if op == "ping":
            conn.send(
                {
                    "id": request_id,
                    "ok": True,
                    "result": {
                        "domain": self.domain,
                        "protocol": PROTOCOL_VERSION,
                        "role": "router",
                        "shards": list(self._links),
                    },
                }
            )
            return
        if op in ("ingest", "ingest_batch"):
            # Submission MUST stay synchronous here: forwarding order to
            # the shard links is what defines per-stream FIFO.
            self._handle_ingest(op, request_id, request, conn)
            return
        handler = {
            "report": self._op_report,
            "evict": self._op_evict,
            "stats": self._op_stats,
            "fleet_report": self._op_fleet_report,
            "snapshot": self._op_snapshot,
            "restore": self._op_restore,
            "migrate": self._op_migrate,
            "rebalance": self._op_rebalance,
            "apply_suite": self._op_apply_suite,
            "ring": self._op_ring,
        }.get(op)
        if handler is None:
            conn.send(_error_doc(request_id, "bad-request", f"unknown op {op!r}"))
            return
        self._spawn(self._run_op(handler, request_id, request, conn))

    def _spawn(self, coroutine) -> None:
        task = asyncio.create_task(coroutine)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_op(self, handler, request_id, request: dict, conn) -> None:
        try:
            result = await handler(request)
        except _RouterOpError as exc:
            conn.send(
                _error_doc(request_id, exc.error_type, str(exc), **exc.extra)
            )
        except ShardUnavailableError as exc:
            conn.send(
                _error_doc(request_id, "shard-unavailable", str(exc), shard=exc.shard)
            )
        except ServiceError as exc:
            conn.send({"id": request_id, "ok": False, "error": exc.error})
        except Exception as exc:
            conn.send(
                _error_doc(
                    request_id, "internal", f"{type(exc).__name__}: {exc}"
                )
            )
        else:
            conn.send({"id": request_id, "ok": True, "result": result})

    # ------------------------------------------------------------------
    # Ingest forwarding
    # ------------------------------------------------------------------
    def _handle_ingest(
        self, op: str, request_id, request: dict, conn: _Connection
    ) -> None:
        try:
            if op == "ingest":
                raw_pairs = [(request["stream_id"], request["raw"])]
            else:
                raw_pairs = [(sid, raw) for sid, raw in request["pairs"]]
            if not all(isinstance(sid, str) for sid, _raw in raw_pairs):
                raise TypeError("stream ids must be strings")
        except (KeyError, TypeError, ValueError):
            conn.send(
                _error_doc(
                    request_id,
                    "bad-request",
                    "ingest needs stream_id+raw; ingest_batch needs "
                    "pairs=[[stream_id, raw], ...]",
                )
            )
            return
        # Forward every pair now, in order (raw units pass through
        # undecoded — validation happens on the owning shard).
        placeholders = [self._submit_pair(sid, raw) for sid, raw in raw_pairs]

        async def _respond() -> None:
            docs = await asyncio.gather(*placeholders)
            if op == "ingest":
                (doc,) = docs
                if doc["ok"]:
                    conn.send({"id": request_id, "ok": True, "result": doc})
                else:
                    conn.send(
                        {"id": request_id, "ok": False, "error": doc["error"]}
                    )
                return
            failed: "OrderedDict[str, bool]" = OrderedDict()
            for (sid, _raw), doc in zip(raw_pairs, docs):
                if not doc["ok"]:
                    failed[doc["error"].get("stream_id", sid)] = True
            conn.send(
                {
                    "id": request_id,
                    "ok": not failed,
                    "result": {
                        "results": docs,
                        "failed_streams": list(failed),
                    },
                }
            )

        self._spawn(_respond())

    def _route(self, stream_id: str) -> _StreamRoute:
        route = self._routes.get(stream_id)
        if route is None:
            route = self._routes[stream_id] = _StreamRoute()
        return route

    def _submit_pair(self, stream_id: str, raw) -> "asyncio.Future":
        """Forward (or buffer) one unit; resolves to its per-pair doc.

        The returned future never raises — transport failures resolve to
        a ``shard-unavailable`` error doc.
        """
        route = self._route(stream_id)
        if self._gated:
            placeholder = asyncio.get_running_loop().create_future()
            self._gate_buffer.append((stream_id, raw, placeholder))
            return placeholder
        if route.frozen:
            placeholder = asyncio.get_running_loop().create_future()
            route.buffer.append((raw, placeholder))
            return placeholder
        return self._forward(route, stream_id, raw)

    def _forward(
        self, route: _StreamRoute, stream_id: str, raw
    ) -> "asyncio.Future":
        link = self._links[self.table.owner(stream_id)]
        envelope_future = link.submit("ingest", {"stream_id": stream_id, "raw": raw})
        route.pending.add(envelope_future)
        doc_future = asyncio.get_running_loop().create_future()

        def _done(fut: "asyncio.Future") -> None:
            route.pending.discard(fut)
            if doc_future.done():
                return
            exc = fut.exception()
            if exc is not None:
                doc_future.set_result(
                    {
                        "ok": False,
                        "error": {
                            "type": "shard-unavailable",
                            "stream_id": stream_id,
                            "shard": getattr(exc, "shard", None),
                            "message": str(exc),
                        },
                    }
                )
                return
            envelope = fut.result()
            if envelope.get("ok"):
                result = envelope["result"]
                doc_future.set_result(
                    {
                        "ok": True,
                        "stream_id": stream_id,
                        "fires": result["fires"],
                    }
                )
            else:
                error = dict(envelope.get("error") or {})
                error.setdefault("stream_id", stream_id)
                doc_future.set_result({"ok": False, "error": error})

        envelope_future.add_done_callback(_done)
        return doc_future

    @staticmethod
    def _chain(source: "asyncio.Future", target: "asyncio.Future") -> None:
        """Resolve ``target`` with ``source``'s doc (docs never raise)."""

        def _relay(fut: "asyncio.Future") -> None:
            if not target.done():
                target.set_result(fut.result())

        source.add_done_callback(_relay)

    def _flush_route(self, route: _StreamRoute, stream_id: str) -> None:
        """Forward a frozen stream's held-back units, in order, to its
        (possibly new) owner. Synchronous — no await may interleave."""
        buffered, route.buffer = route.buffer, []
        for raw, placeholder in buffered:
            self._chain(self._forward(route, stream_id, raw), placeholder)

    # ------------------------------------------------------------------
    # Quiesce primitives
    # ------------------------------------------------------------------
    async def _drain_route(self, route: _StreamRoute) -> None:
        while route.pending:
            await asyncio.gather(*list(route.pending), return_exceptions=True)

    async def _quiesce_all(self) -> None:
        self._gated = True
        pending = [
            fut for route in self._routes.values() for fut in route.pending
        ]
        while pending:
            await asyncio.gather(*pending, return_exceptions=True)
            pending = [
                fut for route in self._routes.values() for fut in route.pending
            ]

    def _release_gate(self) -> None:
        self._gated = False
        buffered, self._gate_buffer = self._gate_buffer, []
        for stream_id, raw, placeholder in buffered:
            route = self._route(stream_id)
            if route.frozen:  # a migration froze it while we were gated
                route.buffer.append((raw, placeholder))
            else:
                self._chain(self._forward(route, stream_id, raw), placeholder)

    # ------------------------------------------------------------------
    # Control ops
    # ------------------------------------------------------------------
    async def _op_report(self, request: dict) -> dict:
        stream_id = request.get("stream_id")
        if not isinstance(stream_id, str):
            raise _RouterOpError("bad-request", "report needs a stream_id")
        link = self._links[self.table.owner(stream_id)]
        return await link.request("report", stream_id=stream_id)

    async def _op_evict(self, request: dict) -> dict:
        stream_id = request.get("stream_id")
        if not isinstance(stream_id, str):
            raise _RouterOpError("bad-request", "evict needs a stream_id")
        link = self._links[self.table.owner(stream_id)]
        result = await link.request("evict", stream_id=stream_id)
        self._routes.pop(stream_id, None)
        self.table.unpin(stream_id)
        return result

    async def _op_stats(self, request: dict) -> dict:
        names = list(self._links)
        results = await asyncio.gather(
            *(self._links[name].request("stats") for name in names)
        )
        totals = {
            key: 0
            for key in (
                "offered",
                "accepted",
                "rejected",
                "rejected_overload",
                "rejected_bad",
                "completed",
                "failed",
                "batches",
                "pending",
            )
        }
        per_stream: dict = {}
        sessions: dict = {}
        shards: dict = {}
        for name, result in zip(names, results):
            shards[name] = result
            for key in totals:
                totals[key] += result.get(key, 0)
            for stream_id, entry in result.get("per_stream", {}).items():
                merged = per_stream.setdefault(
                    stream_id, {"completed": 0, "failed": 0}
                )
                merged["completed"] += entry.get("completed", 0)
                merged["failed"] += entry.get("failed", 0)
            sessions.update(result.get("sessions", {}))
        totals["per_stream"] = per_stream
        totals["sessions"] = sessions
        totals["streams"] = len(sessions)
        totals["domain"] = self.domain
        totals["shards"] = shards
        totals["routing"] = {
            "pins": self.table.pins,
            "owners": {sid: self.table.owner(sid) for sid in self._routes},
        }
        return totals

    async def _op_fleet_report(self, request: dict) -> dict:
        names = list(self._links)
        results = await asyncio.gather(
            *(self._links[name].request("fleet_report") for name in names)
        )
        assertion_names = None
        collected: dict = {}
        for result in results:
            if assertion_names is None:
                assertion_names = from_jsonable(result["aggregate"]).assertion_names
            for stream_id, report in result["stream_reports"].items():
                collected[stream_id] = from_jsonable(report)
        # Rows stack in router first-seen order — the order a single
        # unsharded service would have created the sessions — with any
        # stream the router never touched (e.g. restored from a fleet
        # snapshot before traffic) appended in sorted order.
        ordered: "OrderedDict" = OrderedDict()
        for stream_id in self._routes:
            if stream_id in collected:
                ordered[stream_id] = collected.pop(stream_id)
        for stream_id in sorted(collected):
            ordered[stream_id] = collected[stream_id]
        fleet = build_fleet_report(self.domain, ordered, assertion_names or [])
        return {
            "domain": fleet.domain,
            "stream_reports": dict(fleet.stream_reports),
            "aggregate": fleet.aggregate,
            "row_offsets": fleet.row_offsets,
        }

    async def _op_snapshot(self, request: dict) -> dict:
        async with self._control_lock:
            await self._quiesce_all()
            try:
                names = list(self._links)
                results = await asyncio.gather(
                    *(self._links[name].request("snapshot") for name in names)
                )
                payload = fleet_snapshot_payload(
                    self.domain,
                    self.table,
                    {
                        name: result["snapshot"]
                        for name, result in zip(names, results)
                    },
                    stream_order=list(self._routes),
                )
            finally:
                self._release_gate()
        return {"snapshot": payload}

    async def _op_restore(self, request: dict) -> dict:
        payload = request.get("snapshot")
        try:
            validate_fleet_payload(payload)
        except SnapshotFormatError as exc:
            raise _RouterOpError(
                "bad-request", str(exc), found=exc.found, supported=exc.supported
            ) from None
        if payload["domain"] != self.domain:
            raise _RouterOpError(
                "unknown-domain",
                f"fleet snapshot is for domain {payload['domain']!r}, "
                f"this router serves {self.domain!r}",
                domain=self.domain,
            )
        unknown = sorted(set(payload["shards"]) - set(self._links))
        if unknown:
            raise _RouterOpError(
                "bad-request",
                f"fleet snapshot names shard(s) this fleet does not run: "
                f"{', '.join(unknown)} (running: {', '.join(self._links)})",
            )
        async with self._control_lock:
            await self._quiesce_all()
            try:
                restored: dict = {}
                for name, shard_payload in payload["shards"].items():
                    result = await self._links[name].request(
                        "restore", snapshot=shard_payload
                    )
                    restored[name] = result["streams"]
                self.table = RoutingTable.restore(payload["routing"])
                self._routes.clear()
                # Recreate routes in the recorded fleet-wide creation
                # order (fleet_report row order), then any stream the
                # payload's order list doesn't mention, sorted.
                live = {
                    sid for streams in restored.values() for sid in streams
                }
                for stream_id in payload.get("streams", []):
                    if stream_id in live:
                        self._route(stream_id)
                        live.discard(stream_id)
                for stream_id in sorted(live):
                    self._route(stream_id)
            finally:
                self._release_gate()
        return {
            # "streams" keeps ServiceClient.restore() working against a
            # router exactly as against a single server.
            "streams": sorted(
                sid for streams in restored.values() for sid in streams
            ),
            "shards": restored,
        }

    async def _op_migrate(self, request: dict) -> dict:
        stream_id = request.get("stream_id")
        target = request.get("to")
        if not isinstance(stream_id, str) or not isinstance(target, str):
            raise _RouterOpError("bad-request", "migrate needs stream_id + to")
        tick = request.get("tick")
        if tick is not None and not isinstance(tick, int):
            raise _RouterOpError("bad-request", "migrate tick must be an integer")
        async with self._control_lock:
            return await self._migrate(stream_id, target, tick)

    async def _op_rebalance(self, request: dict) -> dict:
        plan = request.get("plan")
        if not isinstance(plan, dict) or not all(
            isinstance(sid, str) and isinstance(shard, str)
            for sid, shard in plan.items()
        ):
            raise _RouterOpError(
                "bad-request", "rebalance needs plan={stream_id: shard, ...}"
            )
        tick = request.get("tick")
        if tick is not None and not isinstance(tick, int):
            raise _RouterOpError("bad-request", "rebalance tick must be an integer")
        async with self._control_lock:
            moves = {}
            for stream_id, target in plan.items():
                moves[stream_id] = await self._migrate(stream_id, target, tick)
        return {"moves": moves}

    async def _migrate(self, stream_id: str, target: str, tick) -> dict:
        """One live migration (caller holds the control lock)."""
        if target not in self._links:
            raise _RouterOpError(
                "bad-request",
                f"unknown target shard {target!r} "
                f"(running: {', '.join(self._links)})",
            )
        source = self.table.owner(stream_id)
        if source == target:
            return {
                "stream_id": stream_id,
                "from": source,
                "to": target,
                "moved": False,
            }
        route = self._route(stream_id)
        route.frozen = True
        try:
            await self._drain_route(route)
            src_link, dst_link = self._links[source], self._links[target]
            try:
                snap = await src_link.request(
                    "snapshot_stream", stream_id=stream_id
                )
            except ServiceError as exc:
                if exc.type == "unknown-stream":
                    # No session on the source — the move is pure routing.
                    self.table.pin(stream_id, target)
                    return {
                        "stream_id": stream_id,
                        "from": source,
                        "to": target,
                        "moved": False,
                    }
                raise
            if tick is not None and snap["n_raw"] != tick:
                raise _RouterOpError(
                    "bad-request",
                    f"migration tick {tick} is not a raw-unit boundary for "
                    f"stream {stream_id!r}, which has consumed "
                    f"{snap['n_raw']} unit(s)",
                )
            await dst_link.request(
                "restore_stream", stream_id=stream_id, session=snap["session"]
            )
            try:
                await src_link.request("evict", stream_id=stream_id)
            except (ServiceError, ShardUnavailableError):
                # Source kept its copy; undo the destination's so exactly
                # one shard owns the stream, then surface the failure.
                try:
                    await dst_link.request("evict", stream_id=stream_id)
                finally:
                    pass
                raise
            self.table.pin(stream_id, target)
            return {
                "stream_id": stream_id,
                "from": source,
                "to": target,
                "moved": True,
                "n_raw": snap["n_raw"],
            }
        finally:
            # Whatever happened, release the stream toward whichever
            # shard the table now names — buffered units first, in order.
            self._flush_route(route, stream_id)
            route.frozen = False

    async def _op_apply_suite(self, request: dict) -> dict:
        suite_payload = request.get("suite")
        if not isinstance(suite_payload, dict):
            raise _RouterOpError("bad-request", "apply_suite needs a suite payload")
        tick = request.get("tick")
        if tick is not None and not isinstance(tick, int):
            raise _RouterOpError("bad-request", "apply_suite tick must be an integer")
        async with self._control_lock:
            await self._quiesce_all()
            try:
                names = list(self._links)
                if tick is not None:
                    # Validate the boundary across the WHOLE fleet before
                    # touching any shard — a per-shard failure halfway
                    # through would leave the fleet split across suites.
                    stats = await asyncio.gather(
                        *(self._links[name].request("stats") for name in names)
                    )
                    for name, result in zip(names, stats):
                        for stream_id, n_raw in result.get("sessions", {}).items():
                            if n_raw != tick:
                                raise _RouterOpError(
                                    "bad-request",
                                    f"apply_suite(tick={tick}) is not a "
                                    f"raw-unit boundary for stream "
                                    f"{stream_id!r} on shard {name!r}, which "
                                    f"has consumed {n_raw} unit(s)",
                                )
                streams: dict = {}
                for name in names:
                    result = await self._links[name].request(
                        "apply_suite", suite=suite_payload, tick=tick
                    )
                    streams.update(result["streams"])
            finally:
                self._release_gate()
        return {"streams": streams}

    async def _op_ring(self, request: dict) -> dict:
        return {
            "routing": self.table.snapshot(),
            "shards": {
                name: {"alive": link.alive, "host": link.host, "port": link.port}
                for name, link in self._links.items()
            },
            "owners": {sid: self.table.owner(sid) for sid in self._routes},
        }
