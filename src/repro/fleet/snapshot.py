"""Coordinated fleet-wide snapshot files, with an explicit schema version.

A fleet snapshot composes one :meth:`~repro.serve.MonitorService.snapshot`
payload per shard with the routing table that places every stream, under
a top-level ``format``/``kind`` header. Earlier snapshot layers learned
the hard way that a payload from the wrong layer (or an older schema)
must fail *loudly at the boundary* — not as an opaque ``KeyError`` deep
inside a restore — so every reader here goes through
:func:`validate_fleet_payload`, which raises :class:`SnapshotFormatError`
naming what was found and what is supported.

The determinism contract mirrors the single-service one: a fleet
restored from a coordinated snapshot and driven through the remaining
units is bit-identical to the uninterrupted fleet — and to an unsharded
run over the same per-stream unit sequences
(``tests/fleet/test_fleet_snapshot.py``).
"""

from __future__ import annotations

from repro.fleet.ring import RoutingTable
from repro.utils.io import atomic_write_json, read_json

#: Schema version of the fleet snapshot payload. Bump on layout changes;
#: readers reject other versions with a :class:`SnapshotFormatError`.
FLEET_SNAPSHOT_FORMAT = 1

#: Discriminator distinguishing fleet snapshots from the service- and
#: loop-level payloads that also carry a ``format`` integer.
FLEET_SNAPSHOT_KIND = "fleet"


class SnapshotFormatError(ValueError):
    """A snapshot payload with the wrong schema version or shape.

    Carries ``found`` (the payload's version, or ``None``) and
    ``supported`` so callers can render upgrade guidance; the message
    already names both.
    """

    def __init__(self, message: str, *, found=None, supported=FLEET_SNAPSHOT_FORMAT):
        super().__init__(message)
        self.found = found
        self.supported = supported


def fleet_snapshot_payload(
    domain: str,
    table: RoutingTable,
    shard_payloads: dict,
    stream_order: "list | None" = None,
) -> dict:
    """Compose the coordinated snapshot of a whole sharded fleet.

    ``shard_payloads`` maps shard name → that shard's service snapshot
    (each already carries its own ``format`` header, validated on
    restore by :meth:`MonitorService.restore`). ``stream_order`` records
    fleet-wide session creation order — each shard's payload preserves
    only its *own* order, and ``fleet_report`` row order (identical to
    an unsharded service's) would otherwise be lost across a restore.
    """
    return {
        "format": FLEET_SNAPSHOT_FORMAT,
        "kind": FLEET_SNAPSHOT_KIND,
        "domain": domain,
        "routing": table.snapshot(),
        "streams": list(stream_order) if stream_order is not None else [],
        "shards": dict(shard_payloads),
    }


def validate_fleet_payload(payload) -> dict:
    """Check header and shape; returns ``payload`` or raises loudly.

    Every failure mode gets a message naming the problem — an old or
    future ``format``, a service/loop-level payload handed to the fleet
    layer, missing sections — instead of surfacing later as a
    ``KeyError`` from the middle of a shard restore.
    """
    if not isinstance(payload, dict):
        raise SnapshotFormatError(
            f"not a fleet snapshot: expected a JSON object, got {type(payload).__name__}"
        )
    found = payload.get("format")
    kind = payload.get("kind")
    if kind != FLEET_SNAPSHOT_KIND:
        hint = ""
        if "sessions" in payload:
            hint = " (this looks like a MonitorService snapshot — restore it with repro.serve.snapshot)"
        elif "registry" in payload:
            hint = " (this looks like an improvement-loop snapshot — restore it with repro.improve.snapshot)"
        raise SnapshotFormatError(
            f"not a fleet snapshot: kind={kind!r}, expected {FLEET_SNAPSHOT_KIND!r}{hint}",
            found=found,
        )
    if found != FLEET_SNAPSHOT_FORMAT:
        raise SnapshotFormatError(
            f"unsupported fleet snapshot format {found!r}; this build reads "
            f"format {FLEET_SNAPSHOT_FORMAT} — re-snapshot the fleet with a "
            "matching version instead of reusing this file",
            found=found,
        )
    for key in ("domain", "routing", "shards"):
        if key not in payload:
            raise SnapshotFormatError(
                f"fleet snapshot (format {found}) lacks its {key!r} section — "
                "the file is truncated or was not written by "
                "repro.fleet.snapshot.save_fleet_snapshot",
                found=found,
            )
    if not isinstance(payload["shards"], dict):
        raise SnapshotFormatError(
            "fleet snapshot 'shards' must map shard name -> service snapshot",
            found=found,
        )
    return payload


def save_fleet_snapshot(payload: dict, path: str) -> dict:
    """Validate and write a fleet snapshot atomically; returns it."""
    validate_fleet_payload(payload)
    atomic_write_json(payload, path)
    return payload


def load_fleet_snapshot(path: str) -> dict:
    """Read and validate a fleet snapshot file (loud on mismatch)."""
    try:
        payload = read_json(path)
    except ValueError as exc:
        raise SnapshotFormatError(f"{path} is not valid JSON: {exc}") from exc
    try:
        return validate_fleet_payload(payload)
    except SnapshotFormatError as exc:
        raise SnapshotFormatError(
            f"{path}: {exc}", found=exc.found, supported=exc.supported
        ) from None
