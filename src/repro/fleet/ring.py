"""Consistent-hash ownership of streams across shards.

Two layers, both deterministic and JSON-snapshotable:

- :class:`HashRing` — the classic consistent-hash ring with virtual
  nodes: every shard hashes to ``replicas`` points on a 64-bit circle
  and a key belongs to the first shard point at or after its own hash.
  Ownership is a pure function of ``(stream_id, shard names, replicas)``
  — no RNG, no process state — so a router restarted from nothing routes
  every stream exactly where its predecessor did. Adding or removing a
  shard only remaps the keys whose arc changed hands: about ``1/N`` of
  them, never a full reshuffle (``tests/fleet/test_ring.py`` pins a
  ``< 2/N`` bound).
- :class:`RoutingTable` — the ring plus explicit per-stream *pins*.
  Live migration (:meth:`repro.fleet.router.FleetRouter.rebalance`)
  moves one stream at a time; the destination is recorded as a pin that
  overrides the ring until the stream retires, so a migration is an
  atomic ownership flip that never disturbs any other stream.

The hash is ``blake2b`` (stdlib, keyed only by the bytes), *not*
Python's ``hash()`` — the latter is salted per process and would give
every worker a different ring.
"""

from __future__ import annotations

import bisect
import hashlib


def stable_hash(key: str) -> int:
    """64-bit stable hash of ``key`` — identical in every process."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring with virtual nodes (see module docstring).

    Parameters
    ----------
    shards:
        Shard names; order does not matter (the ring sorts by hash).
    replicas:
        Virtual nodes per shard. More replicas = smoother spread at the
        cost of a longer (still tiny) sorted array.
    """

    def __init__(self, shards, replicas: int = 64) -> None:
        shards = list(shards)
        if not shards:
            raise ValueError("a HashRing needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ValueError(f"duplicate shard names: {shards!r}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._shards = sorted(shards)
        self._points: "list[int]" = []
        self._owners: "list[str]" = []
        self._rebuild()

    def _rebuild(self) -> None:
        ring = []
        for shard in self._shards:
            for replica in range(self.replicas):
                ring.append((stable_hash(f"{shard}\x00{replica}"), shard))
        # Ties (astronomically unlikely) resolve by shard name so the
        # ring stays a pure function of its inputs.
        ring.sort()
        self._points = [point for point, _shard in ring]
        self._owners = [shard for _point, shard in ring]

    @property
    def shards(self) -> list:
        """Sorted shard names currently on the ring."""
        return list(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    def owner(self, key: str) -> str:
        """The shard owning ``key`` — deterministic from the key alone."""
        index = bisect.bisect_right(self._points, stable_hash(key))
        if index == len(self._points):  # wrap past the top of the circle
            index = 0
        return self._owners[index]

    def add_shard(self, shard: str) -> None:
        """Grow the ring; only ~1/(N+1) of keys change owner."""
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} is already on the ring")
        self._shards.append(shard)
        self._shards.sort()
        self._rebuild()

    def remove_shard(self, shard: str) -> None:
        """Shrink the ring; only the removed shard's keys change owner."""
        if shard not in self._shards:
            raise ValueError(f"shard {shard!r} is not on the ring")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.remove(shard)
        self._rebuild()

    def spread(self, keys) -> dict:
        """shard → number of ``keys`` it owns (diagnostics and tests)."""
        counts = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

    def snapshot(self) -> dict:
        return {"shards": list(self._shards), "replicas": self.replicas}

    @classmethod
    def restore(cls, payload: dict) -> "HashRing":
        return cls(payload["shards"], replicas=int(payload["replicas"]))


class RoutingTable:
    """A :class:`HashRing` plus explicit per-stream pins.

    ``owner(stream_id)`` is the pinned shard when a migration placed the
    stream somewhere, else the ring's deterministic owner. Pins are what
    make a migration an *atomic* flip: the router installs the pin only
    after the snapshot has been restored on the destination, so at every
    instant exactly one shard owns the stream.
    """

    def __init__(self, ring: HashRing, pins: "dict | None" = None) -> None:
        self.ring = ring
        self._pins: "dict[str, str]" = dict(pins or {})
        for stream_id, shard in self._pins.items():
            if shard not in ring:
                raise ValueError(
                    f"pin {stream_id!r} -> {shard!r} names a shard not on the ring"
                )

    @property
    def pins(self) -> dict:
        """stream_id → shard for every migrated stream (a copy)."""
        return dict(self._pins)

    def owner(self, stream_id: str) -> str:
        pinned = self._pins.get(stream_id)
        return pinned if pinned is not None else self.ring.owner(stream_id)

    def pin(self, stream_id: str, shard: str) -> None:
        """Override the ring for one stream (the migration flip)."""
        if shard not in self.ring:
            raise ValueError(f"shard {shard!r} is not on the ring")
        if self.ring.owner(stream_id) == shard:
            # Moving a stream *home* needs no pin; drop any stale one so
            # the table stays minimal.
            self._pins.pop(stream_id, None)
        else:
            self._pins[stream_id] = shard

    def unpin(self, stream_id: str) -> None:
        self._pins.pop(stream_id, None)

    def snapshot(self) -> dict:
        return {"ring": self.ring.snapshot(), "pins": dict(self._pins)}

    @classmethod
    def restore(cls, payload: dict) -> "RoutingTable":
        return cls(HashRing.restore(payload["ring"]), pins=payload.get("pins"))
