"""One fleet shard: a :class:`~repro.serve.MonitorServer` in its own
process.

``python -m repro.fleet.worker DOMAIN --shard NAME --ready-file PATH``
is what :class:`~repro.fleet.manager.FleetManager` spawns, one process
per shard. A worker is deliberately *just* the PR-6 server — it knows
nothing about rings, routing, or the other shards; everything
fleet-shaped (ownership, migration, merged reports) lives in the router
in front of it. That keeps a shard bit-identical to a standalone
``python -m repro serve`` process, which is exactly what the migration
determinism proofs rely on.

The ready file announces ``{host, port, pid, shard, domain}`` once the
socket is listening (atomic write, so a watching manager never reads a
torn file). SIGINT/SIGTERM drain the pipeline and — with ``--snapshot``
— write the shard's service snapshot before exiting, mirroring
``repro serve``.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys

from repro.domains.registry import domain_names
from repro.serve import MonitorServer, MonitorService, ServerConfig, ServiceConfig
from repro.serve.snapshot import load_snapshot_payload, save_service_snapshot
from repro.utils.io import atomic_write_json


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.worker",
        description="Run one shard of a sharded monitor fleet.",
    )
    parser.add_argument("domain", help="registered domain (av, ecg, tvnews, video)")
    parser.add_argument("--shard", required=True, metavar="NAME",
                        help="this shard's name on the ring (e.g. shard-0)")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default 0 = ephemeral; see --ready-file)")
    parser.add_argument("--ready-file", default=None, metavar="PATH",
                        help="write {host, port, pid, shard, domain} JSON once listening")
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="service checkpoint: restored first if it exists, "
                             "written on shutdown")
    parser.add_argument("--max-batch", type=int, default=32,
                        help="most raw units coalesced into one service batch")
    parser.add_argument("--max-delay", type=float, default=0.005,
                        help="seconds a unit may wait for batch-mates before flush")
    parser.add_argument("--max-pending", type=int, default=1024,
                        help="admitted-unit bound; beyond it requests get "
                             "an explicit `overloaded` error")
    parser.add_argument("--serial", action="store_true",
                        help="disable the ingest_batch thread fan-out")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.domain not in domain_names():
        raise SystemExit(
            f"error: unknown domain {args.domain!r}; "
            f"registered domains: {', '.join(domain_names())}"
        )
    try:
        service = MonitorService(
            args.domain, config=ServiceConfig(parallel=not args.serial)
        )
        config = ServerConfig(
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_delay=args.max_delay,
            max_pending=args.max_pending,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None

    if args.snapshot and os.path.exists(args.snapshot):
        try:
            service.restore(load_snapshot_payload(args.snapshot))
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from None

    async def _main() -> None:
        server = MonitorServer(service, config)
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        # Explicit handlers, like `repro serve`: the manager stops shards
        # with SIGTERM, which must drain the pipeline (and write the
        # shutdown snapshot) instead of killing us mid-batch.
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        print(
            f"[{args.shard}] {args.domain} shard on {server.host}:{server.port}",
            flush=True,
        )
        if args.ready_file:
            atomic_write_json(
                {
                    "host": server.host,
                    "port": server.port,
                    "pid": os.getpid(),
                    "shard": args.shard,
                    "domain": args.domain,
                },
                args.ready_file,
            )
        try:
            await stop.wait()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # signal arrived before the handlers did
        pass
    if args.snapshot:
        save_service_snapshot(service, args.snapshot)
    return 0


if __name__ == "__main__":
    sys.exit(main())
