"""Horizontal sharding: one monitored fleet across many worker processes.

One process caps how many streams a :class:`~repro.serve.MonitorService`
can hold; this package is the architectural step from "a service" to "a
fleet" (ROADMAP):

- :class:`HashRing` / :class:`RoutingTable` — deterministic consistent-
  hash ownership of ``stream_id`` s across shards (virtual nodes,
  minimal remap on resize, explicit per-stream pins for migrations);
- :mod:`repro.fleet.worker` — one shard: a
  :class:`~repro.serve.MonitorServer` + ``MonitorService`` in its own
  process (``python -m repro.fleet.worker``);
- :class:`FleetManager` — spawns and supervises the worker processes;
- :class:`FleetRouter` — an asyncio front door speaking the same
  newline-delimited-JSON protocol as a single server
  (:mod:`repro.serve.net`), so :class:`~repro.serve.ServiceClient` and
  ``repro loadtest`` drive a sharded fleet unchanged: per-stream
  forwarding with FIFO order, merged fleet reports and stats, typed
  ``shard-unavailable`` errors, and **live snapshot-based migration**
  (:meth:`FleetRouter.rebalance`) that moves a stream between shards
  mid-run bit-identically;
- :mod:`repro.fleet.snapshot` — coordinated fleet-wide snapshot files
  with an explicit schema-version header and loud mismatch errors.

``python -m repro fleet DOMAIN --shards N`` runs the whole stack; see
the README's "Sharded fleet" section for the architecture diagram and
migration semantics.
"""

from repro.fleet.manager import FleetManager, ShardSpec, shard_names
from repro.fleet.ring import HashRing, RoutingTable, stable_hash
from repro.fleet.router import FleetRouter, RouterConfig, ShardUnavailableError
from repro.fleet.snapshot import (
    FLEET_SNAPSHOT_FORMAT,
    SnapshotFormatError,
    fleet_snapshot_payload,
    load_fleet_snapshot,
    save_fleet_snapshot,
    validate_fleet_payload,
)

__all__ = [
    "FLEET_SNAPSHOT_FORMAT",
    "FleetManager",
    "FleetRouter",
    "HashRing",
    "RouterConfig",
    "RoutingTable",
    "ShardSpec",
    "ShardUnavailableError",
    "SnapshotFormatError",
    "fleet_snapshot_payload",
    "load_fleet_snapshot",
    "save_fleet_snapshot",
    "shard_names",
    "stable_hash",
    "validate_fleet_payload",
]
