"""Lightweight argument validation helpers.

These raise early, with messages that name the offending argument, instead
of letting bad values propagate into NumPy broadcasting errors deep inside
an experiment.
"""

from __future__ import annotations

import numpy as np


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative if not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_shape(array: np.ndarray, shape: tuple, name: str) -> np.ndarray:
    """Validate array dimensionality/shape; ``None`` entries are wildcards."""
    arr = np.asarray(array)
    if arr.ndim != len(shape):
        raise ValueError(f"{name} must have {len(shape)} dimensions, got shape {arr.shape}")
    for axis, (actual, expected) in enumerate(zip(arr.shape, shape)):
        if expected is not None and actual != expected:
            raise ValueError(
                f"{name} has size {actual} on axis {axis}, expected {expected} (shape {arr.shape})"
            )
    return arr


def check_finite(array: np.ndarray, name: str) -> np.ndarray:
    """Validate that all entries are finite."""
    arr = np.asarray(array)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr
