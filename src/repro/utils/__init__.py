"""Shared utilities: seeding, validation, and small numeric helpers."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    check_finite,
    check_fraction,
    check_positive,
    check_shape,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "check_finite",
    "check_fraction",
    "check_positive",
    "check_shape",
]
