"""Aligned text tables (shared by experiment reports and fleet reports).

Lives in :mod:`repro.utils` so both :mod:`repro.experiments` and the
serving layer can render tables without importing each other;
:mod:`repro.experiments.reporting` re-exports both helpers.
"""

from __future__ import annotations


def format_table(headers: list, rows: list, title: str = "") -> str:
    """Render rows as an aligned, pipe-free text table.

    ``rows`` is a list of tuples/lists; every cell is ``str()``-ed.
    """
    table = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in table) for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(table[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in table[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_float(value: float, digits: int = 1) -> str:
    """Fixed-point formatting that tolerates None/NaN."""
    if value is None or value != value:
        return "n/a"
    return f"{value:.{digits}f}"
